"""The discrete-event kernel: a run-queue scheduler over a timer heap.

Everything time-like in the reproduction — link latency, request
timeouts, advert expiry, churn — is an event scheduled here.  The
kernel is single-threaded and deterministic: events at equal timestamps
fire in scheduling order (a monotonically increasing sequence number
breaks ties), so a seeded run always produces the same trace.

Internally the kernel is split into two structures (the E13
concurrency-core refactor):

* a **timer heap** holding future events, ordered by ``(time, seq)``;
* a **run-queue** — a plain FIFO deque of events that are due *now*.

Zero-delay work (``call_soon``, ``schedule(0.0, ...)``) goes straight
onto the run-queue and never touches the heap, and when virtual time
advances, *every* event due at the new timestamp is popped off the heap
in one batch — so 10k peers' events landing at one instant pay one heap
drain, not 10k interleaved push/pop cycles.  Equal-time heap pops come
out in sequence order and run-queue appends happen in sequence order,
so the observable firing order is identical to the pre-refactor kernel.

Cancellation is real, not cosmetic: a cancelled timer decrements the
live ``pending`` counter immediately, and once cancelled timers
outnumber live ones the heap is compacted in place (the asyncio
strategy) — a workload that schedules and cancels retry timers by the
thousands keeps the heap at the size of its *live* timer set.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Optional

#: compact the timer heap when more than this many cancelled timers are
#: parked in it *and* they outnumber the live ones (see ``_note_cancel``)
_COMPACT_MIN_CANCELLED = 64


class SimTimeoutError(Exception):
    """Raised by :meth:`Kernel.pump_until` when the predicate does not
    become true within the allotted virtual time."""


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_kernel", "_fired", "_in_heap")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._kernel: Optional["Kernel"] = None
        self._fired = False
        self._in_heap = False

    def cancel(self) -> None:
        if self.cancelled or self._fired:
            return
        self.cancelled = True
        if self._kernel is not None:
            self._kernel._note_cancel(self)

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6f} #{self.seq} {state}>"


class Kernel:
    """A minimal, deterministic discrete-event simulation kernel."""

    def __init__(self) -> None:
        self._timers: list[ScheduledEvent] = []  # future events (heap)
        self._ready: deque[ScheduledEvent] = deque()  # due-now FIFO run-queue
        self._seq = itertools.count()
        self._now = 0.0
        self._events_fired = 0
        self._pending = 0  # live (scheduled, not fired, not cancelled)
        self._heap_cancelled = 0  # cancelled timers still parked in the heap

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events awaiting dispatch (O(1))."""
        return self._pending

    @property
    def heap_size(self) -> int:
        """Entries physically in the timer heap, cancelled included —
        the quantity the compaction policy keeps proportional to the
        *live* timer count."""
        return len(self._timers)

    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = ScheduledEvent(self._now + delay, next(self._seq), fn, args)
        event._kernel = self
        self._pending += 1
        if delay == 0:
            self._ready.append(event)
        else:
            event._in_heap = True
            heapq.heappush(self._timers, event)
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at absolute virtual *time*."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        event = ScheduledEvent(time, next(self._seq), fn, args)
        event._kernel = self
        self._pending += 1
        if time == self._now:
            self._ready.append(event)
        else:
            event._in_heap = True
            heapq.heappush(self._timers, event)
        return event

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule at the current instant (after already-queued same-time events)."""
        return self.schedule(0.0, fn, *args)

    # ------------------------------------------------------------------
    def _note_cancel(self, event: ScheduledEvent) -> None:
        self._pending -= 1
        # run-queue events are purged lazily at pop (the deque drains
        # every tick); heap timers are counted and compacted so a
        # cancel-heavy workload cannot grow the heap without bound
        if event._in_heap:
            self._heap_cancelled += 1
            if (
                self._heap_cancelled > _COMPACT_MIN_CANCELLED
                and self._heap_cancelled * 2 > len(self._timers)
            ):
                self._compact()

    def _compact(self) -> None:
        self._timers = [e for e in self._timers if not e.cancelled]
        heapq.heapify(self._timers)
        self._heap_cancelled = 0

    # ------------------------------------------------------------------
    def _refill_ready(self) -> bool:
        """Advance the clock to the next timer deadline and move the
        whole batch of events due at that instant onto the run-queue.
        Returns False when no live timer remains."""
        timers = self._timers
        while timers and timers[0].cancelled:
            heapq.heappop(timers)
            self._heap_cancelled -= 1
        if not timers:
            return False
        batch_time = timers[0].time
        self._now = batch_time
        ready = self._ready
        while timers and timers[0].time == batch_time:
            event = heapq.heappop(timers)
            event._in_heap = False
            if event.cancelled:
                self._heap_cancelled -= 1
            else:
                ready.append(event)
        return True

    def _next_ready(self) -> Optional[ScheduledEvent]:
        ready = self._ready
        while True:
            while ready:
                event = ready.popleft()
                if not event.cancelled:
                    return event
            if not self._refill_ready():
                return None

    def step(self) -> bool:
        """Fire the single next event.  Returns False when queue is empty."""
        event = self._next_ready()
        if event is None:
            return False
        event._fired = True
        self._pending -= 1
        self._events_fired += 1
        event.fn(*event.args)
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Run events until the queue drains or virtual time passes *until*.

        Returns the number of events fired by this call.  ``max_events``
        guards against runaway feedback loops in experiments.
        """
        fired = 0
        while fired < max_events:
            if until is not None:
                nxt = self._peek_time()
                if nxt is None or nxt > until:
                    self._now = max(self._now, until)
                    break
            if not self.step():
                break
            fired += 1
        return fired

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain."""
        return self.run(until=None, max_events=max_events)

    def pump_until(
        self,
        predicate: Callable[[], bool],
        timeout: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> float:
        """Fire events until *predicate()* is true.

        This is how "synchronous" operations are built on the
        event-driven core: an HTTP invocation pumps the kernel until its
        response slot fills.  Raises :class:`SimTimeoutError` if the
        queue drains or *timeout* virtual seconds elapse first.
        Returns the virtual time at which the predicate became true.
        """
        deadline = None if timeout is None else self._now + timeout
        fired = 0
        while not predicate():
            if fired >= max_events:
                raise SimTimeoutError(f"predicate not satisfied after {max_events} events")
            nxt = self._peek_time()
            if nxt is None:
                raise SimTimeoutError("event queue drained before predicate was satisfied")
            if deadline is not None and nxt > deadline:
                self._now = deadline
                raise SimTimeoutError(f"virtual timeout after {timeout}s")
            self.step()
            fired += 1
        return self._now

    def _peek_time(self) -> Optional[float]:
        ready = self._ready
        while ready and ready[0].cancelled:
            ready.popleft()
        if ready:
            return self._now
        timers = self._timers
        while timers and timers[0].cancelled:
            heapq.heappop(timers)
            self._heap_cancelled -= 1
        return timers[0].time if timers else None

    def advance(self, delta: float) -> None:
        """Advance the clock with no events (only valid past queue head)."""
        target = self._now + delta
        nxt = self._peek_time()
        if nxt is not None and nxt < target:
            raise ValueError("cannot advance past pending events; use run(until=...)")
        self._now = target

    def __repr__(self) -> str:
        return f"<Kernel t={self._now:.6f} pending={self.pending}>"
