"""The discrete-event kernel: a virtual clock over a priority queue.

Everything time-like in the reproduction — link latency, request
timeouts, advert expiry, churn — is an event scheduled here.  The
kernel is single-threaded and deterministic: events at equal timestamps
fire in scheduling order (a monotonically increasing sequence number
breaks ties), so a seeded run always produces the same trace.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class SimTimeoutError(Exception):
    """Raised by :meth:`Kernel.pump_until` when the predicate does not
    become true within the allotted virtual time."""


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledEvent t={self.time:.6f} #{self.seq} {state}>"


class Kernel:
    """A minimal, deterministic discrete-event simulation kernel."""

    def __init__(self) -> None:
        self._queue: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_fired = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for e in self._queue if not e.cancelled)

    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = ScheduledEvent(self._now + delay, next(self._seq), fn, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at absolute virtual *time*."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        event = ScheduledEvent(time, next(self._seq), fn, args)
        heapq.heappush(self._queue, event)
        return event

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule at the current instant (after already-queued same-time events)."""
        return self.schedule(0.0, fn, *args)

    # ------------------------------------------------------------------
    def _pop_next(self) -> Optional[ScheduledEvent]:
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                return event
        return None

    def step(self) -> bool:
        """Fire the single next event.  Returns False when queue is empty."""
        event = self._pop_next()
        if event is None:
            return False
        self._now = event.time
        self._events_fired += 1
        event.fn(*event.args)
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        """Run events until the queue drains or virtual time passes *until*.

        Returns the number of events fired by this call.  ``max_events``
        guards against runaway feedback loops in experiments.
        """
        fired = 0
        while fired < max_events:
            if until is not None:
                nxt = self._peek_time()
                if nxt is None or nxt > until:
                    self._now = max(self._now, until)
                    break
            if not self.step():
                break
            fired += 1
        return fired

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain."""
        return self.run(until=None, max_events=max_events)

    def pump_until(
        self,
        predicate: Callable[[], bool],
        timeout: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> float:
        """Fire events until *predicate()* is true.

        This is how "synchronous" operations are built on the
        event-driven core: an HTTP invocation pumps the kernel until its
        response slot fills.  Raises :class:`SimTimeoutError` if the
        queue drains or *timeout* virtual seconds elapse first.
        Returns the virtual time at which the predicate became true.
        """
        deadline = None if timeout is None else self._now + timeout
        fired = 0
        while not predicate():
            if fired >= max_events:
                raise SimTimeoutError(f"predicate not satisfied after {max_events} events")
            nxt = self._peek_time()
            if nxt is None:
                raise SimTimeoutError("event queue drained before predicate was satisfied")
            if deadline is not None and nxt > deadline:
                self._now = deadline
                raise SimTimeoutError(f"virtual timeout after {timeout}s")
            self.step()
            fired += 1
        return self._now

    def _peek_time(self) -> Optional[float]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def advance(self, delta: float) -> None:
        """Advance the clock with no events (only valid past queue head)."""
        target = self._now + delta
        nxt = self._peek_time()
        if nxt is not None and nxt < target:
            raise ValueError("cannot advance past pending events; use run(until=...)")
        self._now = target

    def __repr__(self) -> str:
        return f"<Kernel t={self._now:.6f} pending={self.pending}>"
