"""Tracing and metric collection for experiments.

Summary statistics delegate to :mod:`repro.observability.stats` — one
pure-python quantile implementation for the whole repo (this module
used to carry a numpy copy).  A :class:`TraceLog` can also feed the
observability layer live: pass ``sink=`` (any callable of
``(time, kind, detail)``, e.g. ``SpanTracer.simnet_sink()``) and every
emitted record is forwarded — even when the log itself is disabled, so
wire-level frame records can reach span trees without the memory cost
of retaining them here.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.observability.stats import summarize as _summarize

#: a trace sink receives every emitted record: fn(time, kind, detail)
TraceSink = Callable[[float, str, dict[str, Any]], None]


@dataclass
class TraceRecord:
    time: float
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """Record of network/simulation events, with query helpers.

    Unbounded by default; pass ``max_records`` to run it as a ring
    buffer that keeps only the newest records — long reliability
    benchmarks (retransmission storms emit a frame record per attempt)
    would otherwise grow the log without bound.  ``dropped`` counts
    records pushed out of the ring.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_records: Optional[int] = None,
        sink: Optional[TraceSink] = None,
    ):
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.enabled = enabled
        self.max_records = max_records
        self.records: "deque[TraceRecord]" = deque(maxlen=max_records)
        self.emitted = 0  #: total emitted, including any since dropped
        #: forwarded every record regardless of ``enabled`` (live
        #: observation is independent of retention)
        self.sink = sink

    @property
    def dropped(self) -> int:
        """Records pushed out of the ring (0 when unbounded)."""
        return self.emitted - len(self.records)

    def emit(self, time: float, kind: str, **detail: Any) -> None:
        if self.sink is not None:
            self.sink(time, kind, detail)
        if self.enabled:
            self.records.append(TraceRecord(time, kind, detail))
            self.emitted += 1

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for r in self.records if r.kind == kind)

    def clear(self) -> None:
        self.records.clear()
        self.emitted = 0

    def __len__(self) -> int:
        return len(self.records)


class Counter:
    """Per-key tallies, used e.g. for messages handled per node."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def incr(self, key: str, by: int = 1) -> None:
        self._counts[key] += by

    def get(self, key: str) -> int:
        return self._counts.get(key, 0)

    def total(self) -> int:
        return sum(self._counts.values())

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def top(self, n: int = 5) -> list[tuple[str, int]]:
        return sorted(self._counts.items(), key=lambda kv: -kv[1])[:n]

    def max(self) -> int:
        return max(self._counts.values(), default=0)

    def clear(self) -> None:
        self._counts.clear()


def summarize(samples: Iterable[float]) -> Optional[dict[str, float]]:
    """Mean / median / p95 / min / max summary used by bench tables."""
    return _summarize(samples)
