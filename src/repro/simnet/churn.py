"""Scripted churn scenarios: the E9 robustness harness.

A :class:`ChurnSchedule` turns the raw fault primitives of
:mod:`repro.simnet.faults` into *scenarios* laid out on virtual time:
peers killed and restarted mid-request, partitions that open and heal,
slow-node brownouts where a provider keeps answering but degrades.
Every scheduled action is logged at fire time, so experiments can
correlate availability dips with the exact churn that caused them.

All randomness is seeded; a schedule replays identically from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.simnet.faults import PartitionInjector
from repro.simnet.network import Network


@dataclass
class ChurnRecord:
    """One churn action that actually fired."""

    time: float
    kind: str  # 'kill' | 'restart' | 'partition' | 'heal' | 'brownout' | 'recover'
    detail: dict = field(default_factory=dict)


class ChurnSchedule:
    """Lay churn actions onto the kernel's virtual timeline.

    Methods schedule immediately (no separate apply step) and may be
    called before or during a run; actions land on the same
    deterministic event queue as the traffic they disrupt.
    """

    def __init__(self, network: Network, seed: int = 0):
        self.network = network
        self._rng = np.random.default_rng(seed)
        self.log: list[ChurnRecord] = []
        self._partitions: list[PartitionInjector] = []

    def _record(self, kind: str, **detail) -> None:
        self.log.append(ChurnRecord(self.network.kernel.now, kind, detail))

    # -- node churn --------------------------------------------------------
    def kill(self, node_id: str, at: float, restart_at: Optional[float] = None) -> None:
        """Down *node_id* at virtual time *at*; optionally restart later."""
        node = self.network.get_node(node_id)

        def do_kill() -> None:
            node.go_down()
            self._record("kill", node=node_id)

        self.network.kernel.schedule_at(at, do_kill)
        if restart_at is not None:
            if restart_at <= at:
                raise ValueError("restart_at must be after the kill time")
            self.restart(node_id, restart_at)

    def restart(self, node_id: str, at: float) -> None:
        node = self.network.get_node(node_id)

        def do_restart() -> None:
            node.go_up()
            self._record("restart", node=node_id)

        self.network.kernel.schedule_at(at, do_restart)

    def kill_restart_cycle(
        self,
        node_id: str,
        start: float,
        downtime: float,
        period: float,
        until: float,
    ) -> int:
        """Repeated kill/restart: down for *downtime* out of every
        *period*, first kill at *start*, no kills at or after *until*.
        Returns the number of cycles scheduled."""
        if downtime >= period:
            raise ValueError("downtime must be shorter than the cycle period")
        cycles = 0
        at = start
        while at < until:
            self.kill(node_id, at, restart_at=at + downtime)
            at += period
            cycles += 1
        return cycles

    def random_kills(
        self,
        candidates: Sequence[str],
        n_kills: int,
        start: float,
        until: float,
        downtime: float,
    ) -> list[tuple[str, float]]:
        """*n_kills* kill/restart pairs at seeded-uniform times in
        [start, until), each downing a seeded-uniform candidate for
        *downtime*.  Returns the (node, kill_time) plan."""
        if until <= start:
            raise ValueError("until must be after start")
        plan: list[tuple[str, float]] = []
        for _ in range(n_kills):
            node_id = str(self._rng.choice(list(candidates)))
            at = float(self._rng.uniform(start, until))
            self.kill(node_id, at, restart_at=at + downtime)
            plan.append((node_id, at))
        return sorted(plan, key=lambda item: item[1])

    # -- partitions --------------------------------------------------------
    def partition(
        self,
        groups: Sequence[Iterable[str]],
        at: float,
        heal_at: Optional[float] = None,
    ) -> None:
        """Split the network into *groups* at *at*; heal later if asked."""
        groups = [list(group) for group in groups]

        def do_partition() -> None:
            injector = PartitionInjector(self.network, groups)
            self._partitions.append(injector)
            self._record("partition", groups=[list(g) for g in groups])
            if heal_at is not None:

                def do_heal() -> None:
                    injector.heal()
                    self._record("heal", groups=[list(g) for g in groups])

                self.network.kernel.schedule_at(heal_at, do_heal)

        if heal_at is not None and heal_at <= at:
            raise ValueError("heal_at must be after the partition time")
        self.network.kernel.schedule_at(at, do_partition)

    def heal_all(self) -> None:
        """Immediately remove every partition this schedule created."""
        for injector in self._partitions:
            injector.heal()
        if self._partitions:
            self._record("heal", groups="all")
        self._partitions = []

    # -- brownouts ---------------------------------------------------------
    def brownout(
        self, node_id: str, at: float, until: float, service_time: float
    ) -> None:
        """Degrade *node_id* between *at* and *until*: every delivered
        frame takes *service_time* to process, so the node queues and
        slows instead of failing — the grey-failure mode health scoring
        has to catch without a hard error signal."""
        if until <= at:
            raise ValueError("until must be after at")
        node = self.network.get_node(node_id)

        previous = {"service_time": 0.0}

        def start() -> None:
            previous["service_time"] = node.service_time
            node.service_time = service_time
            self._record("brownout", node=node_id, service_time=service_time)

        def stop() -> None:
            # defensive restore: only put the old service time back if
            # this brownout's degradation is still in effect — another
            # injector (an overlapping brownout, an operator tuning the
            # node mid-run) may have changed service_time since, and the
            # later change must win, not be silently stomped
            if node.service_time == service_time:
                node.service_time = previous["service_time"]
                self._record("recover", node=node_id)
            else:
                self._record(
                    "recover", node=node_id, skipped=True,
                    found=node.service_time,
                )

        self.network.kernel.schedule_at(at, start)
        self.network.kernel.schedule_at(until, stop)

    # -- inspection --------------------------------------------------------
    def records(self, kind: Optional[str] = None) -> list[ChurnRecord]:
        if kind is None:
            return list(self.log)
        return [r for r in self.log if r.kind == kind]

    def __repr__(self) -> str:
        return f"<ChurnSchedule fired={len(self.log)}>"
