"""The crash-consistency harness (E15): adversarial, *surgical* kills.

:class:`~repro.simnet.churn.ChurnSchedule` kills nodes at scheduled
virtual times; that is the background weather.  Crash-consistency
testing needs something sharper — kill the primary **at a protocol
point**: the instant a request arrives (before execution), the instant
the first delta leaves (mid-ship), the instant the response goes out
(after ship), while a snapshot is being served, or in the middle of a
client's failover handoff.  Those points are only observable as
*events*, so the harness triggers on them.

The harness stays layering-clean: it never imports the core engine.
Triggers are duck-typed listener objects (anything with a
``message_received(event)`` method can be attached to any
``EventSource``), and frame surgery uses the network's delivery-hook
protocol.  Every action is recorded with its virtual time so a bench
can print exactly when and why each kill happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.simnet.network import Frame, Network


@dataclass
class CrashAction:
    """One thing the harness did, with when and why."""

    time: float
    action: str
    node: str
    detail: str = ""


#: harness action -> the event ``kind`` broadcast for it (registered in
#: :mod:`repro.observability.kinds` under the "harness" family)
KIND_BY_ACTION = {
    "kill": "node-killed",
    "restart": "node-restarted",
    "trigger": "kill-triggered",
    "arm-drop": "frame-drop-armed",
}


@dataclass
class HarnessEvent:
    """Duck-typed event the harness broadcasts for each recorded action.

    Shaped like the core tree's ``PeerEvent`` (``kind`` / ``time`` /
    ``source`` / ``detail``) without importing it — the harness stays
    below the engine in the layering.  ``detail`` values are primitives
    only, so flight recorders can store them verbatim.
    """

    kind: str
    time: float
    source: str
    detail: dict[str, Any] = field(default_factory=dict)


class EventTrigger:
    """A duck-typed listener that runs an action on a matching event.

    Attach to any event source (``source.add_listener(trigger)``); the
    first event whose ``kind`` matches *kind* (and passes the optional
    *match* predicate) runs *action(event)*.  ``once=True`` (default)
    makes the trigger self-disarming — double delivery cannot re-fire
    it — and ``armed_after`` skips the first N matches first, so "kill
    on the *second* delta ship" is expressible.
    """

    def __init__(
        self,
        kind: str,
        action: Callable[[Any], None],
        match: Optional[Callable[[Any], bool]] = None,
        once: bool = True,
        armed_after: int = 0,
    ):
        self.kind = kind
        self.action = action
        self.match = match
        self.once = once
        self.skips_left = armed_after
        self.fired = 0

    def message_received(self, event: Any) -> None:
        if self.once and self.fired:
            return
        if getattr(event, "kind", None) != self.kind:
            return
        if self.match is not None and not self.match(event):
            return
        if self.skips_left > 0:
            self.skips_left -= 1
            return
        self.fired += 1
        self.action(event)


class _OneShotDrop:
    """A delivery hook that drops matching frames, then detaches.

    ``detach`` is idempotent (the network's hook removal tolerates
    redundant calls, and the hook flags itself done) — the same
    contract :class:`~repro.simnet.faults.DropInjector` provides.
    """

    def __init__(
        self,
        network: Network,
        predicate: Callable[[Frame], bool],
        count: int = 1,
    ):
        self._network = network
        self._predicate = predicate
        self.remaining = count
        self.dropped = 0
        network.add_delivery_hook(self._hook)

    def _hook(self, frame: Frame) -> bool:
        if self.remaining <= 0:
            return True
        if not self._predicate(frame):
            return True
        self.remaining -= 1
        self.dropped += 1
        if self.remaining <= 0:
            self.detach()
        return False

    def detach(self) -> None:
        self.remaining = 0
        self._network.remove_delivery_hook(self._hook)


class CrashHarness:
    """Kills nodes at event-defined protocol points, with a full log."""

    def __init__(self, network: Network):
        self.network = network
        self.kernel = network.kernel
        self.log: list[CrashAction] = []
        self._triggers: list[EventTrigger] = []
        self._drops: list[_OneShotDrop] = []
        self._listeners: list[Any] = []

    # -- listeners -----------------------------------------------------
    def add_listener(self, listener: Any) -> None:
        """Attach a duck-typed listener (``message_received(event)``);
        it receives a :class:`HarnessEvent` per recorded action."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Any) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # ------------------------------------------------------------------
    def _record(self, action: str, node: str, detail: str = "") -> None:
        self.log.append(CrashAction(self.kernel.now, action, node, detail))
        if self._listeners:
            event = HarnessEvent(
                KIND_BY_ACTION.get(action, action), self.kernel.now, node,
                {"node": node, "action": action, "label": detail},
            )
            for listener in list(self._listeners):
                listener.message_received(event)

    def kill(self, node_id: str, restart_after: Optional[float] = None) -> None:
        """Down *node_id* right now; optionally schedule its restart."""
        node = self.network.get_node(node_id)
        if node.up:
            node.go_down()
            self._record("kill", node_id)
        if restart_after is not None:
            self.schedule_restart(node_id, restart_after)

    def schedule_restart(self, node_id: str, after: float) -> None:
        node = self.network.get_node(node_id)

        def up() -> None:
            if not node.up:
                node.go_up()
                self._record("restart", node_id)

        self.kernel.schedule(after, up)

    # ------------------------------------------------------------------
    def kill_on_event(
        self,
        source: Any,
        kind: str,
        node_id: str,
        match: Optional[Callable[[Any], bool]] = None,
        armed_after: int = 0,
        defer: bool = False,
        restart_after: Optional[float] = None,
        label: str = "",
    ) -> EventTrigger:
        """Down *node_id* the moment *source* fires a *kind* event.

        With ``defer=True`` the kill lands one zero-delay kernel step
        later — "immediately after" the observed point rather than
        inside it, so frames the handler sends in the same instant
        still leave the node (the after-ship crash points).
        """

        def act(event: Any) -> None:
            detail = label or f"on {kind}"
            if defer:
                def down() -> None:
                    node = self.network.get_node(node_id)
                    if node.up:
                        node.go_down()
                        self._record("kill", node_id, f"{detail} (deferred)")
                    if restart_after is not None:
                        self.schedule_restart(node_id, restart_after)

                self.kernel.schedule(0.0, down)
            else:
                self._record("trigger", node_id, detail)
                self.kill(node_id, restart_after=restart_after)

        trigger = EventTrigger(kind, act, match=match, armed_after=armed_after)
        source.add_listener(trigger)
        self._triggers.append(trigger)
        return trigger

    # ------------------------------------------------------------------
    def drop_next(
        self,
        predicate: Callable[[Frame], bool],
        count: int = 1,
        label: str = "",
    ) -> _OneShotDrop:
        """Silently drop the next *count* frames matching *predicate*.

        The surgical half of a crash point: e.g. drop the primary's
        reply frame (but let its delta ships through), then kill it —
        the client sees a timeout for a request the primary *did*
        execute, exactly the at-most-once-across-handoff scenario.
        """
        drop = _OneShotDrop(self.network, predicate, count=count)
        self._drops.append(drop)
        self._record("arm-drop", "*", label or "one-shot frame drop")
        return drop

    def drop_replies_from(self, node_id: str, count: int = 1) -> _OneShotDrop:
        """Drop the next *count* HTTP reply frames leaving *node_id*
        (requests and delta ships pass untouched)."""
        return self.drop_next(
            lambda f: f.src == node_id and f.port.startswith("http-conn:"),
            count=count,
            label=f"drop {count} reply frame(s) from {node_id}",
        )

    # ------------------------------------------------------------------
    def detach(self) -> None:
        """Disarm every armed drop (triggers disarm themselves).
        Idempotent."""
        for drop in self._drops:
            drop.detach()

    @property
    def kills(self) -> list[CrashAction]:
        return [a for a in self.log if a.action == "kill"]

    def describe(self) -> list[str]:
        return [
            f"t={a.time:.3f} {a.action} {a.node} {a.detail}".rstrip()
            for a in self.log
        ]
