"""Discrete-event simulated network — the testbed substrate.

The WSPeer paper planned to evaluate large peer networks with an NS2
agent driven through P2PS (§IV, reason 3).  This package is that
substrate, reproduced in Python: a deterministic discrete-event kernel
(:mod:`repro.simnet.kernel`) under a message-passing network model
(:mod:`repro.simnet.network`) with pluggable latency distributions
(:mod:`repro.simnet.latency`) and fault injection — message loss, node
churn, partitions (:mod:`repro.simnet.faults`).

All WSPeer transports (HTTP, HTTPG, P2PS pipes) send their frames
through a :class:`Network`, so every experiment in ``benchmarks/`` runs
on virtual time and is exactly reproducible from its seed.
"""

from repro.simnet.crash import CrashAction, CrashHarness, EventTrigger
from repro.simnet.kernel import Kernel, ScheduledEvent, SimTimeoutError
from repro.simnet.network import Frame, Network, NetworkError, Node, NodeDownError
from repro.simnet.latency import FixedLatency, LatencyModel, SeededLatency, UniformLatency
from repro.simnet.faults import ChurnInjector, DropInjector, PartitionInjector
from repro.simnet.churn import ChurnRecord, ChurnSchedule
from repro.simnet.trace import Counter, TraceLog, summarize

__all__ = [
    "CrashAction",
    "CrashHarness",
    "EventTrigger",
    "Kernel",
    "ScheduledEvent",
    "SimTimeoutError",
    "Frame",
    "Network",
    "NetworkError",
    "Node",
    "NodeDownError",
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "SeededLatency",
    "DropInjector",
    "ChurnInjector",
    "ChurnRecord",
    "ChurnSchedule",
    "PartitionInjector",
    "Counter",
    "TraceLog",
    "summarize",
]
