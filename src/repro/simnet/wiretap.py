"""Wiretap: capture and render the conversations on the simulated wire.

Attach a :class:`Wiretap` to a network and every frame is recorded and
*classified* — SOAP requests/responses (with operation names), HTTP
requests/responses (with method/path/status), P2PS protocol messages
(advert/query/response), pipe traffic — then rendered as a text
sequence diagram.  The debugging companion to the event model: events
show what components did, the wiretap shows what actually crossed the
wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simnet.network import Frame, Network


def payload_text(frame_or_payload) -> str:
    """A text view of a frame's payload, whatever its wire type.

    E16 frames carry ``bytes``; older flows carry ``str``.  Predicates
    that grep the wire (crash-harness triggers, frame-cost policies)
    should match through this instead of assuming text.
    """
    payload = getattr(frame_or_payload, "payload", frame_or_payload)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return bytes(payload).decode("utf-8", "replace")
    return payload


@dataclass
class TapRecord:
    time: float
    src: str
    dst: str
    port: str
    size: int
    summary: str


def classify(frame: Frame) -> str:
    """One-line, human-readable description of a frame's payload."""
    payload = frame.payload
    if isinstance(payload, (bytes, bytearray, memoryview)):
        # E16 byte wires: chunk frames are opaque slices; whole byte
        # messages get classified from a best-effort text view
        if frame.meta.get("kind") == "chunk":
            return f"chunk {frame.meta.get('idx')} ({len(payload)}B) on {frame.port}"
        payload = bytes(payload).decode("utf-8", "replace")
    if payload.startswith(("POST ", "GET ", "PUT ", "DELETE ")):
        request_line = payload.split("\r\n", 1)[0]
        parts = request_line.split(" ")
        summary = f"HTTP {parts[0]} {parts[1]}" if len(parts) >= 2 else "HTTP request"
        if "<?xml" in payload and "Envelope" in payload:
            operation = _soap_operation(payload)
            if operation:
                summary += f" [SOAP {operation}]"
        return summary
    if payload.startswith("HTTP/"):
        status_line = payload.split("\r\n", 1)[0]
        parts = status_line.split(" ")
        summary = f"HTTP {parts[1]}" if len(parts) >= 2 else "HTTP response"
        if "Envelope" in payload:
            operation = _soap_operation(payload)
            if operation:
                summary += f" [SOAP {operation}]"
        return summary
    if "Envelope" in payload and ("soap" in payload or "Envelope" in payload):
        operation = _soap_operation(payload)
        if operation:
            return f"SOAP {operation}"
        if frame.port.startswith("pipe:"):
            return "SOAP (header-only)"
    if "<p2ps:Message" in payload or "Message" in payload and "p2ps" in payload:
        for kind in ("advert", "query", "response", "hello"):
            if f'type="{kind}"' in payload:
                return f"P2PS {kind}"
        return "P2PS message"
    if frame.port.startswith("pipe:"):
        if payload.startswith("<?xml") and "definitions" in payload:
            return "WSDL document"
        return "pipe data"
    return f"{len(payload)}B on {frame.port}"


def _soap_operation(payload: str) -> Optional[str]:
    """Best-effort extraction of the RPC operation from envelope text."""
    marker = "Body>"
    at = payload.find(marker)
    if at < 0:
        return None
    rest = payload[at + len(marker):]
    start = rest.find("<")
    if start < 0:
        return None
    end_candidates = [i for i in (rest.find(" ", start), rest.find(">", start)) if i > 0]
    if not end_candidates:
        return None
    tag = rest[start + 1 : min(end_candidates)]
    if tag.startswith("/"):
        return None
    _, _, local = tag.rpartition(":")
    return local or None


class Wiretap:
    """Records (and can pretty-print) every frame the network delivers."""

    def __init__(self, network: Network, max_records: int = 10_000):
        self.network = network
        self.max_records = max_records
        self.records: list[TapRecord] = []
        network.add_delivery_hook(self._hook)

    def _hook(self, frame: Frame) -> bool:
        if len(self.records) < self.max_records:
            self.records.append(
                TapRecord(
                    self.network.kernel.now,
                    frame.src,
                    frame.dst,
                    frame.port,
                    frame.size,
                    classify(frame),
                )
            )
        return True  # observe only, never drop

    def detach(self) -> None:
        self.network.remove_delivery_hook(self._hook)

    # ------------------------------------------------------------------
    def between(self, a: str, b: str) -> list[TapRecord]:
        """Frames exchanged between nodes *a* and *b*, either direction."""
        return [
            r for r in self.records
            if (r.src == a and r.dst == b) or (r.src == b and r.dst == a)
        ]

    def involving(self, node: str) -> list[TapRecord]:
        return [r for r in self.records if node in (r.src, r.dst)]

    def render_sequence(self, limit: int = 40) -> str:
        """An ASCII sequence diagram of the captured conversation."""
        lines = []
        for record in self.records[:limit]:
            arrow = f"{record.src} -> {record.dst}"
            lines.append(
                f"{record.time * 1000:9.2f}ms  {arrow:<28s} {record.summary}"
                f"  ({record.size}B)"
            )
        if len(self.records) > limit:
            lines.append(f"... and {len(self.records) - limit} more frames")
        return "\n".join(lines)

    def summary_counts(self) -> dict[str, int]:
        """Tally of frame classifications."""
        counts: dict[str, int] = {}
        for record in self.records:
            key = record.summary.split(" [")[0]
            counts[key] = counts.get(key, 0) + 1
        return counts

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
