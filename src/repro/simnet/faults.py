"""Fault injection: message loss, node churn, partitions.

These drive experiment E2 (failure resilience) and the unreliable-node
scenarios of E3.  All randomness is seeded.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.simnet.network import Frame, Network


class DropInjector:
    """Drops each frame independently with probability *p*.

    Optionally scoped to frames whose src or dst is in *only_nodes*.
    """

    def __init__(self, network: Network, p: float, seed: int = 0, only_nodes: Optional[Iterable[str]] = None):
        if not 0.0 <= p <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")
        self.p = p
        self._rng = np.random.default_rng(seed)
        self._only = set(only_nodes) if only_nodes is not None else None
        self._network = network
        self.dropped = 0
        self.attached = True
        network.add_delivery_hook(self._hook)

    def _hook(self, frame: Frame) -> bool:
        if self._only is not None and frame.src not in self._only and frame.dst not in self._only:
            return True
        if self._rng.random() < self.p:
            self.dropped += 1
            return False
        return True

    def detach(self) -> None:
        """Stop dropping frames.  Idempotent: calling twice (or calling
        after another schedule already detached this injector) is a
        no-op — it never raises and never removes a hook it does not
        own from the chain.  Also safe to call from inside another
        delivery hook mid-iteration: the network walks a snapshot of
        its hook list per frame, so the in-flight frame still sees the
        snapshotted hooks and later frames do not."""
        if not self.attached:
            return
        self.attached = False
        self._network.remove_delivery_hook(self._hook)


class PartitionInjector:
    """Splits the network into groups; frames crossing groups are dropped."""

    def __init__(self, network: Network, groups: Sequence[Iterable[str]]):
        self._membership: dict[str, int] = {}
        for idx, group in enumerate(groups):
            for node_id in group:
                self._membership[node_id] = idx
        self._network = network
        self.blocked = 0
        self.healed = False
        network.add_delivery_hook(self._hook)

    def _hook(self, frame: Frame) -> bool:
        a = self._membership.get(frame.src)
        b = self._membership.get(frame.dst)
        if a is not None and b is not None and a != b:
            self.blocked += 1
            return False
        return True

    def heal(self) -> None:
        """Remove the partition.  Idempotent: healing twice (or healing
        a partition another schedule already removed) is a no-op that
        never raises and never corrupts the hook chain — the injector
        only ever removes its own hook, once."""
        if self.healed:
            return
        self.healed = True
        self._network.remove_delivery_hook(self._hook)


class ChurnInjector:
    """Schedules node failures (and optional recoveries) on the kernel.

    ``fail(nodes, at)`` downs the listed nodes at virtual time *at*;
    ``fail_fraction`` picks a random subset of the candidate pool.
    """

    def __init__(self, network: Network, seed: int = 0):
        self.network = network
        self._rng = np.random.default_rng(seed)
        self.failed: list[str] = []

    def fail(self, node_ids: Iterable[str], at: float) -> None:
        for node_id in node_ids:
            node = self.network.get_node(node_id)
            self.network.kernel.schedule_at(at, node.go_down)
            self.failed.append(node_id)

    def recover(self, node_ids: Iterable[str], at: float) -> None:
        for node_id in node_ids:
            node = self.network.get_node(node_id)
            self.network.kernel.schedule_at(at, node.go_up)

    def fail_fraction(
        self, candidates: Sequence[str], fraction: float, at: float
    ) -> list[str]:
        """Down a random *fraction* of *candidates* at time *at*; returns them.

        Deterministic: the victim set is drawn from this injector's own
        seeded generator, so the same seed, the same candidate order,
        and the same sequence of calls always pick the same victims —
        a churn scenario replays byte-identically across runs.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        k = int(round(len(candidates) * fraction))
        chosen = list(self._rng.choice(list(candidates), size=k, replace=False)) if k else []
        self.fail(chosen, at)
        return [str(c) for c in chosen]


class NatGate:
    """Models a NAT/firewall in front of one node.

    Inbound frames are dropped unless the sender appears in the node's
    session table; any outbound frame from the node opens a session to
    its destination (the hole-punching behaviour real NATs exhibit).
    The paper's P2PS motivates logical peer ids precisely because such
    nodes "do not have accessible network addresses" (§IV-B).
    """

    def __init__(self, network: Network, node_id: str):
        self.network = network
        self.node_id = node_id
        self.sessions: set[str] = set()
        self.blocked = 0
        network.add_delivery_hook(self._hook)

    def _hook(self, frame: Frame) -> bool:
        if frame.src == self.node_id and frame.dst != self.node_id:
            self.sessions.add(frame.dst)
            return True
        if frame.dst == self.node_id and frame.src != self.node_id:
            if frame.src not in self.sessions:
                self.blocked += 1
                return False
        return True

    def remove(self) -> None:
        self.network.remove_delivery_hook(self._hook)
