"""The simulated network: nodes, frames, delivery.

A :class:`Network` owns a :class:`~repro.simnet.kernel.Kernel` and a set
of :class:`Node`\\ s.  Frames are addressed to ``(node_id, port)``;
ports are string channel names on which transports register handlers
(e.g. ``"http:80"`` or a P2PS pipe id).  Delivery is fire-and-forget
with latency sampled from the network's :class:`LatencyModel`; loss,
partitions and churn are injected by the hooks in
:mod:`repro.simnet.faults`.

Frames carry the actual serialised wire — text for legacy XML frames,
raw ``bytes`` for the E16 byte-true HTTP wire and chunk-streamed
payload slices — so the simulated network moves genuine bytes and
``Frame.size`` is a genuine byte count for latency sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.observability import metrics as obs_metrics
from repro.simnet.kernel import Kernel
from repro.simnet.latency import FixedLatency, LatencyModel
from repro.simnet.trace import Counter, TraceLog


class NetworkError(Exception):
    """Base class for simulated-network errors."""


class NodeDownError(NetworkError):
    """An operation was attempted from/on a node that is down."""


@dataclass
class Frame:
    """A unit of transmission on the simulated wire."""

    src: str
    dst: str
    port: str
    #: serialised wire content: ``str`` for legacy text frames, raw
    #: ``bytes`` for byte-true HTTP wires and chunk slices (E16)
    payload: "str | bytes"
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.payload)


FrameHandler = Callable[[Frame], None]
DeliveryHook = Callable[[Frame], bool]  # return False to drop the frame


#: an overflow handler answers a frame the worker queue rejected:
#: fn(frame, retry_after_hint_seconds)
OverflowHandler = Callable[["Frame", float], None]


class Node:
    """A network endpoint with named ports.

    ``up`` reflects churn state: a down node neither sends nor receives,
    and its handlers stay registered so it can resume on restart (the
    paper's "highly transient connectivity").

    Processing capacity is a **worker pool modelled in virtual time**
    (E13): when a frame costs non-zero service time, it occupies the
    earliest-free of N simulated workers, so a slow request occupies one
    worker while the other N-1 keep serving.  The default pool of one
    worker with an unbounded queue reproduces the original serial-queue
    semantics exactly; :meth:`configure_workers` widens the pool and may
    bound the queue, in which case overflow frames are handed to the
    port's :class:`OverflowHandler` (bindings answer them Busy +
    retry-after) instead of queueing forever.
    """

    def __init__(self, node_id: str, network: "Network"):
        self.id = node_id
        self.network = network
        self.up = True
        self._handlers: dict[str, FrameHandler] = {}
        #: per-frame processing time; > 0 makes frames occupy a worker
        #: (frames wait while all workers are busy), which is how server
        #: saturation becomes visible in experiments
        self.service_time = 0.0
        #: optional per-frame cost override: fn(frame) -> seconds.  This
        #: is what lets one node serve a *mixed* workload where slow
        #: requests pin a worker while fast ones flow past (E13).
        self.frame_cost: Optional[Callable[[Frame], float]] = None
        self.max_queue_delay = 0.0
        #: per-worker busy-until times; len() is the pool width
        self._worker_busy: list[float] = [0.0]
        #: completed busy time per worker (utilisation accounting)
        self._busy_accum: list[float] = [0.0]
        #: max frames allowed to *wait* (None = unbounded)
        self.queue_limit: Optional[float] = None
        self._inflight = 0  # frames accepted by the pool, not yet finished
        self.frames_overflowed = 0
        self.frames_lost_in_service = 0
        self._overflow_handlers: dict[str, OverflowHandler] = {}
        self._instrumented = False  # per-node gauges on after configure_workers
        self._stats_since = 0.0

    # -- ports ----------------------------------------------------------
    def open_port(self, port: str, handler: FrameHandler) -> None:
        if port in self._handlers:
            raise NetworkError(f"port already open on {self.id}: {port}")
        self._handlers[port] = handler

    def close_port(self, port: str) -> None:
        self._handlers.pop(port, None)

    def has_port(self, port: str) -> bool:
        return port in self._handlers

    @property
    def ports(self) -> list[str]:
        return sorted(self._handlers)

    # -- worker pool (E13) -------------------------------------------------
    @property
    def workers(self) -> int:
        """Width of the simulated worker pool."""
        return len(self._worker_busy)

    @property
    def queue_depth(self) -> int:
        """Frames currently *waiting* for a worker (exact: a frame only
        waits while every worker is occupied, so accepted-minus-width is
        the backlog)."""
        return max(0, self._inflight - len(self._worker_busy))

    def configure_workers(
        self, n: int, queue_limit: Optional[float] = None
    ) -> "Node":
        """Resize the pool to *n* workers and (optionally) bound the
        request queue at *queue_limit* waiting frames.

        Resizing resets the pool's busy state (it models a fresh set of
        workers) and turns on per-node queue/utilisation gauges in the
        metrics registry.  Returns the node for chaining.
        """
        if n < 1:
            raise ValueError(f"worker pool needs at least one worker, got {n}")
        if queue_limit is not None and queue_limit < 0:
            raise ValueError(f"negative queue_limit: {queue_limit}")
        self._worker_busy = [0.0] * n
        self._busy_accum = [0.0] * n
        self.queue_limit = queue_limit
        self._instrumented = True
        self._stats_since = self.network.kernel.now
        obs_metrics.set_gauge(f"simnet.workers.{self.id}.pool_size", n)
        return self

    def set_overflow_handler(self, port: str, handler: Optional[OverflowHandler]) -> None:
        """Answer frames the bounded queue rejects on *port* (e.g. the
        HTTP server's 503 + Retry-After path).  Pass None to remove."""
        if handler is None:
            self._overflow_handlers.pop(port, None)
        else:
            self._overflow_handlers[port] = handler

    def worker_stats(self) -> dict[str, Any]:
        """Pool telemetry: width, backlog, per-worker utilisation since
        the pool was (re)configured, and loss/overflow tallies."""
        now = self.network.kernel.now
        elapsed = now - self._stats_since
        utilisation = [
            (accum / elapsed if elapsed > 0 else 0.0) for accum in self._busy_accum
        ]
        return {
            "workers": len(self._worker_busy),
            "queue_depth": self.queue_depth,
            "queue_limit": self.queue_limit,
            "utilisation": utilisation,
            "overflowed": self.frames_overflowed,
            "lost_in_service": self.frames_lost_in_service,
            "max_queue_delay": self.max_queue_delay,
        }

    def _reset_saturation(self) -> None:
        """Forget accumulated busy/backlog state — a restarted node does
        not inherit the queue it died with (E13 satellite: saturation
        used to survive a down/up cycle)."""
        self._worker_busy = [0.0] * len(self._worker_busy)
        self.max_queue_delay = 0.0

    # -- traffic ----------------------------------------------------------
    def send(self, dst: str, port: str, payload: "str | bytes", **meta: Any) -> Frame:
        """Send one frame; returns it (delivery is asynchronous)."""
        return self.network.send(Frame(self.id, dst, port, payload, meta))

    def _deliver(self, frame: Frame) -> None:
        handler = self._handlers.get(frame.port)
        if handler is None:
            self.network.trace.emit(
                self.network.kernel.now, "no-handler", node=self.id, port=frame.port
            )
            return
        cost = (
            self.frame_cost(frame) if self.frame_cost is not None else self.service_time
        )
        if cost <= 0:
            self.network.stats.incr(self.id)
            handler(frame)
            return
        # worker-pool dispatch: the frame starts on the earliest-free of
        # N simulated workers (lowest index breaks ties, so seeded runs
        # stay deterministic); with one worker this degenerates to the
        # original serial queue, arithmetic and trace included
        now = self.network.kernel.now
        busy = self._worker_busy
        worker = 0
        free_at = busy[0]
        for i in range(1, len(busy)):
            if busy[i] < free_at:
                worker = i
                free_at = busy[i]
        start = max(now, free_at)
        if (
            start > now
            and self.queue_limit is not None
            and self._inflight - len(busy) >= self.queue_limit
        ):
            self._overflow(frame, now)
            return
        finish = start + cost
        busy[worker] = finish
        self._inflight += 1
        queue_delay = start - now
        self.max_queue_delay = max(self.max_queue_delay, queue_delay)
        if queue_delay > 0:
            self.network.trace.emit(now, "queued", node=self.id, delay=queue_delay)
        if self._instrumented:
            obs_metrics.set_gauge(
                f"simnet.workers.{self.id}.queue_depth", self.queue_depth
            )
            obs_metrics.observe("simnet.worker.queue_delay", queue_delay)
        self.network.kernel.schedule(finish - now, self._process, frame, handler, worker, cost)

    def _overflow(self, frame: Frame, now: float) -> None:
        """The bounded queue rejected *frame*: count it, trace it, and
        let the port's overflow handler answer (Busy + retry-after via
        the E9 admission vocabulary) — a saturated node answers cheaply
        instead of queueing forever."""
        self.frames_overflowed += 1
        obs_metrics.inc("simnet.worker.overflow")
        retry_after = max(0.0, min(self._worker_busy) - now)
        self.network.trace.emit(
            now, "overflow", node=self.id, port=frame.port, retry_after=retry_after
        )
        handler = self._overflow_handlers.get(frame.port)
        if handler is not None:
            handler(frame, retry_after)

    def _process(
        self, frame: Frame, handler: FrameHandler, worker: int = 0, cost: float = 0.0
    ) -> None:
        self._inflight -= 1
        if worker < len(self._busy_accum):
            self._busy_accum[worker] += cost
        if self._instrumented:
            obs_metrics.set_gauge(
                f"simnet.workers.{self.id}.queue_depth", self.queue_depth
            )
        if not self.up:
            # the node died mid-service: the frame is gone, and that
            # must be visible — traced and counted, never silent
            self.frames_lost_in_service += 1
            self.network.lost_in_service.incr(self.id)
            obs_metrics.inc("simnet.lost_in_service")
            self.network.trace.emit(
                self.network.kernel.now, "lost-in-service", node=self.id, port=frame.port
            )
            return
        self.network.stats.incr(self.id)
        handler(frame)

    # -- lifecycle ----------------------------------------------------------
    def go_down(self) -> None:
        self.up = False
        self.network.trace.emit(self.network.kernel.now, "node-down", node=self.id)

    def go_up(self) -> None:
        self.up = True
        self._reset_saturation()
        self.network.trace.emit(self.network.kernel.now, "node-up", node=self.id)

    def __repr__(self) -> str:
        return f"<Node {self.id} {'up' if self.up else 'down'} ports={len(self._handlers)}>"


class Network:
    """Container of nodes plus the delivery fabric."""

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        latency: Optional[LatencyModel] = None,
        trace: Optional[TraceLog] = None,
    ):
        self.kernel = kernel if kernel is not None else Kernel()
        self.latency = latency if latency is not None else FixedLatency()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.stats = Counter()  # frames *handled* per node
        self.sent = Counter()  # frames *sent* per node
        self.lost_in_service = Counter()  # frames lost to mid-service churn
        self._nodes: dict[str, Node] = {}
        self._delivery_hooks: list[DeliveryHook] = []

    # -- node management ---------------------------------------------------
    def add_node(self, node_id: str) -> Node:
        if node_id in self._nodes:
            raise NetworkError(f"duplicate node id: {node_id}")
        node = Node(node_id, self)
        self._nodes[node_id] = node
        return node

    def get_node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node: {node_id}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def remove_node(self, node_id: str) -> None:
        self._nodes.pop(node_id, None)

    @property
    def node_ids(self) -> list[str]:
        return sorted(self._nodes)

    # -- fault hooks ---------------------------------------------------------
    def add_delivery_hook(self, hook: DeliveryHook) -> None:
        """Register a hook consulted per frame; returning False drops it."""
        self._delivery_hooks.append(hook)

    def remove_delivery_hook(self, hook: DeliveryHook) -> None:
        """Detach *hook*; a hook not (or no longer) attached is a no-op,
        so injectors may detach themselves redundantly (e.g. ``heal()``
        called twice, or a hook detaching from inside delivery)."""
        try:
            self._delivery_hooks.remove(hook)
        except ValueError:
            pass

    # -- transmission ---------------------------------------------------------
    def send(self, frame: Frame) -> Frame:
        src = self._nodes.get(frame.src)
        if src is None:
            raise NetworkError(f"unknown source node: {frame.src}")
        if not src.up:
            raise NodeDownError(f"source node is down: {frame.src}")
        self.sent.incr(frame.src)

        # connection-scoped (E11) and gossip (E12) frames tag their
        # trace records so each overlay can be filtered out of a trace
        conn = {k: frame.meta[k] for k in ("conn", "gossip") if k in frame.meta}

        # iterate a snapshot: a hook may detach itself (or another hook)
        # mid-delivery without perturbing this frame's hook sequence
        for hook in tuple(self._delivery_hooks):
            if not hook(frame):
                self.trace.emit(self.kernel.now, "dropped", src=frame.src, dst=frame.dst, port=frame.port, **conn)
                return frame

        if frame.dst not in self._nodes:
            self.trace.emit(self.kernel.now, "unroutable", src=frame.src, dst=frame.dst)
            return frame

        if frame.src == frame.dst:
            delay = self.latency.loopback()
        else:
            delay = self.latency.sample(frame.src, frame.dst, frame.size)
        self.trace.emit(
            self.kernel.now, "sent", src=frame.src, dst=frame.dst, port=frame.port, size=frame.size, **conn
        )
        self.kernel.schedule(delay, self._deliver, frame)
        return frame

    def _deliver(self, frame: Frame) -> None:
        conn = {k: frame.meta[k] for k in ("conn", "gossip") if k in frame.meta}
        node = self._nodes.get(frame.dst)
        if node is None or not node.up:
            self.trace.emit(self.kernel.now, "lost", src=frame.src, dst=frame.dst, port=frame.port, **conn)
            return
        self.trace.emit(
            self.kernel.now, "delivered", src=frame.src, dst=frame.dst, port=frame.port, **conn
        )
        node._deliver(frame)

    # -- convenience ---------------------------------------------------------
    @property
    def now(self) -> float:
        return self.kernel.now

    def run(self, until: Optional[float] = None) -> int:
        return self.kernel.run(until=until)

    def __repr__(self) -> str:
        return f"<Network nodes={len(self._nodes)} t={self.kernel.now:.4f}>"
