"""The simulated network: nodes, frames, delivery.

A :class:`Network` owns a :class:`~repro.simnet.kernel.Kernel` and a set
of :class:`Node`\\ s.  Frames are addressed to ``(node_id, port)``;
ports are string channel names on which transports register handlers
(e.g. ``"http:80"`` or a P2PS pipe id).  Delivery is fire-and-forget
with latency sampled from the network's :class:`LatencyModel`; loss,
partitions and churn are injected by the hooks in
:mod:`repro.simnet.faults`.

Frames carry *text* payloads — the actual serialised XML documents of
the protocol stack — so the simulated wire carries genuine bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.simnet.kernel import Kernel
from repro.simnet.latency import FixedLatency, LatencyModel
from repro.simnet.trace import Counter, TraceLog


class NetworkError(Exception):
    """Base class for simulated-network errors."""


class NodeDownError(NetworkError):
    """An operation was attempted from/on a node that is down."""


@dataclass
class Frame:
    """A unit of transmission on the simulated wire."""

    src: str
    dst: str
    port: str
    payload: str
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.payload)


FrameHandler = Callable[[Frame], None]
DeliveryHook = Callable[[Frame], bool]  # return False to drop the frame


class Node:
    """A network endpoint with named ports.

    ``up`` reflects churn state: a down node neither sends nor receives,
    and its handlers stay registered so it can resume on restart (the
    paper's "highly transient connectivity").
    """

    def __init__(self, node_id: str, network: "Network"):
        self.id = node_id
        self.network = network
        self.up = True
        self._handlers: dict[str, FrameHandler] = {}
        #: per-frame processing time; > 0 turns the node into a serial
        #: queue (frames wait while earlier ones are being processed),
        #: which is how server saturation becomes visible in experiments
        self.service_time = 0.0
        self._busy_until = 0.0
        self.max_queue_delay = 0.0

    # -- ports ----------------------------------------------------------
    def open_port(self, port: str, handler: FrameHandler) -> None:
        if port in self._handlers:
            raise NetworkError(f"port already open on {self.id}: {port}")
        self._handlers[port] = handler

    def close_port(self, port: str) -> None:
        self._handlers.pop(port, None)

    def has_port(self, port: str) -> bool:
        return port in self._handlers

    @property
    def ports(self) -> list[str]:
        return sorted(self._handlers)

    # -- traffic ----------------------------------------------------------
    def send(self, dst: str, port: str, payload: str, **meta: Any) -> Frame:
        """Send one frame; returns it (delivery is asynchronous)."""
        return self.network.send(Frame(self.id, dst, port, payload, meta))

    def _deliver(self, frame: Frame) -> None:
        handler = self._handlers.get(frame.port)
        if handler is None:
            self.network.trace.emit(
                self.network.kernel.now, "no-handler", node=self.id, port=frame.port
            )
            return
        if self.service_time <= 0:
            self.network.stats.incr(self.id)
            handler(frame)
            return
        # serial processing queue: this frame starts once the node is free
        now = self.network.kernel.now
        start = max(now, self._busy_until)
        finish = start + self.service_time
        self._busy_until = finish
        queue_delay = start - now
        self.max_queue_delay = max(self.max_queue_delay, queue_delay)
        if queue_delay > 0:
            self.network.trace.emit(now, "queued", node=self.id, delay=queue_delay)
        self.network.kernel.schedule(finish - now, self._process, frame, handler)

    def _process(self, frame: Frame, handler: FrameHandler) -> None:
        if not self.up:
            return
        self.network.stats.incr(self.id)
        handler(frame)

    # -- lifecycle ----------------------------------------------------------
    def go_down(self) -> None:
        self.up = False
        self.network.trace.emit(self.network.kernel.now, "node-down", node=self.id)

    def go_up(self) -> None:
        self.up = True
        self.network.trace.emit(self.network.kernel.now, "node-up", node=self.id)

    def __repr__(self) -> str:
        return f"<Node {self.id} {'up' if self.up else 'down'} ports={len(self._handlers)}>"


class Network:
    """Container of nodes plus the delivery fabric."""

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        latency: Optional[LatencyModel] = None,
        trace: Optional[TraceLog] = None,
    ):
        self.kernel = kernel if kernel is not None else Kernel()
        self.latency = latency if latency is not None else FixedLatency()
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        self.stats = Counter()  # frames *handled* per node
        self.sent = Counter()  # frames *sent* per node
        self._nodes: dict[str, Node] = {}
        self._delivery_hooks: list[DeliveryHook] = []

    # -- node management ---------------------------------------------------
    def add_node(self, node_id: str) -> Node:
        if node_id in self._nodes:
            raise NetworkError(f"duplicate node id: {node_id}")
        node = Node(node_id, self)
        self._nodes[node_id] = node
        return node

    def get_node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node: {node_id}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def remove_node(self, node_id: str) -> None:
        self._nodes.pop(node_id, None)

    @property
    def node_ids(self) -> list[str]:
        return sorted(self._nodes)

    # -- fault hooks ---------------------------------------------------------
    def add_delivery_hook(self, hook: DeliveryHook) -> None:
        """Register a hook consulted per frame; returning False drops it."""
        self._delivery_hooks.append(hook)

    def remove_delivery_hook(self, hook: DeliveryHook) -> None:
        """Detach *hook*; a hook not (or no longer) attached is a no-op,
        so injectors may detach themselves redundantly (e.g. ``heal()``
        called twice, or a hook detaching from inside delivery)."""
        try:
            self._delivery_hooks.remove(hook)
        except ValueError:
            pass

    # -- transmission ---------------------------------------------------------
    def send(self, frame: Frame) -> Frame:
        src = self._nodes.get(frame.src)
        if src is None:
            raise NetworkError(f"unknown source node: {frame.src}")
        if not src.up:
            raise NodeDownError(f"source node is down: {frame.src}")
        self.sent.incr(frame.src)

        # connection-scoped (E11) and gossip (E12) frames tag their
        # trace records so each overlay can be filtered out of a trace
        conn = {k: frame.meta[k] for k in ("conn", "gossip") if k in frame.meta}

        # iterate a snapshot: a hook may detach itself (or another hook)
        # mid-delivery without perturbing this frame's hook sequence
        for hook in tuple(self._delivery_hooks):
            if not hook(frame):
                self.trace.emit(self.kernel.now, "dropped", src=frame.src, dst=frame.dst, port=frame.port, **conn)
                return frame

        if frame.dst not in self._nodes:
            self.trace.emit(self.kernel.now, "unroutable", src=frame.src, dst=frame.dst)
            return frame

        if frame.src == frame.dst:
            delay = self.latency.loopback()
        else:
            delay = self.latency.sample(frame.src, frame.dst, frame.size)
        self.trace.emit(
            self.kernel.now, "sent", src=frame.src, dst=frame.dst, port=frame.port, size=frame.size, **conn
        )
        self.kernel.schedule(delay, self._deliver, frame)
        return frame

    def _deliver(self, frame: Frame) -> None:
        conn = {k: frame.meta[k] for k in ("conn", "gossip") if k in frame.meta}
        node = self._nodes.get(frame.dst)
        if node is None or not node.up:
            self.trace.emit(self.kernel.now, "lost", src=frame.src, dst=frame.dst, port=frame.port, **conn)
            return
        self.trace.emit(
            self.kernel.now, "delivered", src=frame.src, dst=frame.dst, port=frame.port, **conn
        )
        node._deliver(frame)

    # -- convenience ---------------------------------------------------------
    @property
    def now(self) -> float:
        return self.kernel.now

    def run(self, until: Optional[float] = None) -> int:
        return self.kernel.run(until=until)

    def __repr__(self) -> str:
        return f"<Network nodes={len(self._nodes)} t={self.kernel.now:.4f}>"
