"""Client proxy for a remote UDDI registry node."""

from __future__ import annotations

from typing import Any, Optional

from repro.simnet.network import Node
from repro.soap.rpc import build_rpc_request, extract_rpc_result
from repro.transport.http import HttpClient, HttpRequest
from repro.transport.uri import Uri
from repro.uddi.model import BindingTemplate, BusinessService, TModel
from repro.uddi.service import UDDI_NAMESPACE, UDDI_PATH


class UddiClient:
    """Invokes a :class:`UddiRegistryNode` over SOAP/HTTP.

    ``registry_uri`` is the inquiry endpoint, e.g.
    ``http://registry:80/uddi/inquiry`` (what the paper calls a
    "user defined UDDI registry").
    """

    def __init__(self, node: Node, registry_uri: str, timeout: Optional[float] = 30.0):
        self.node = node
        self.uri = Uri.parse(registry_uri)
        self.http = HttpClient(node, timeout)

    def _build_http_request(self, operation: str, args: dict[str, Any]) -> HttpRequest:
        request = build_rpc_request(UDDI_NAMESPACE, operation, args)
        return HttpRequest(
            "POST",
            "/" + self.uri.path if not self.uri.path.startswith("/") else self.uri.path,
            request.to_wire(),
            {"Content-Type": "text/xml; charset=utf-8", "SOAPAction": operation},
        )

    def call(self, operation: str, **args: Any) -> Any:
        response = self.http.request(
            self.uri.host, self.uri.port or 80, self._build_http_request(operation, args)
        )
        from repro.soap import SoapEnvelope

        return extract_rpc_result(SoapEnvelope.from_wire(response.body))

    def call_async(self, operation: str, callback, **args: Any) -> None:
        """Asynchronous inquiry: *callback(result, error)* fires later.

        The event-driven path of the paper's §III — nothing blocks while
        the registry answers.
        """
        from repro.soap import SoapEnvelope

        def on_response(response, error) -> None:
            if error is not None:
                callback(None, error)
                return
            try:
                result = extract_rpc_result(SoapEnvelope.from_wire(response.body))
            except Exception as exc:  # includes SoapFault
                callback(None, exc)
                return
            callback(result, None)

        self.http.request_async(
            self.uri.host,
            self.uri.port or 80,
            self._build_http_request(operation, args),
            on_response,
        )

    # -- publish conveniences ------------------------------------------------
    def publish_service(
        self,
        business_name: str,
        service_name: str,
        access_point: str,
        wsdl_url: str = "",
        description: str = "",
        categories: Optional[list[dict]] = None,
        ttl: Optional[float] = None,
    ) -> dict[str, Any]:
        """One-shot publication of a WSDL-described service.

        Creates (or reuses) the business, registers the service with its
        category bag, attaches a bindingTemplate for *access_point*, and
        records the WSDL location as a wsdlSpec tModel.  A positive
        *ttl* puts the registration on a lease: unless re-published
        within that many seconds it drops out of inquiries.  Returns the
        serviceDetail dict.
        """
        businesses = self.call("find_business", name_pattern=business_name)
        if businesses:
            business_key = businesses[0]["businessKey"]
        else:
            business_key = self.call("save_business", name=business_name)["businessKey"]
        tmodel_keys = []
        if wsdl_url:
            tmodel = self.call(
                "save_tmodel",
                name=f"{service_name}-wsdlSpec",
                overview_url=wsdl_url,
                description="wsdlSpec",
            )
            tmodel_keys.append(tmodel["tModelKey"])
        save_args: dict[str, Any] = dict(
            business_key=business_key,
            name=service_name,
            description=description,
            category_bag=categories or [],
        )
        if ttl is not None:
            save_args["ttl"] = ttl
        service = self.call("save_service", **save_args)
        self.call(
            "save_binding",
            service_key=service["serviceKey"],
            access_point=access_point,
            tmodel_keys=tmodel_keys,
        )
        return self.call("get_service_detail", service_key=service["serviceKey"])

    # -- replication conveniences (E12) --------------------------------------
    def find_service_records(
        self,
        name_pattern: str = "%",
        categories: Optional[list[dict]] = None,
        max_rows: int = 0,
    ) -> list[dict[str, Any]]:
        """Inquiry returning full replication records in one round trip
        (service + business + tModels + revision + remaining lease)."""
        return self.call(
            "find_service_records",
            name_pattern=name_pattern,
            category_bag=categories or [],
            max_rows=max_rows,
        )

    def export_service(self, service_key: str) -> dict[str, Any]:
        return self.call("export_service", service_key=service_key)

    def import_service(self, record: dict[str, Any]) -> bool:
        return bool(self.call("import_service", record=record))

    # -- inquiry conveniences ------------------------------------------------
    def find_services(
        self,
        name_pattern: str = "%",
        categories: Optional[list[dict]] = None,
    ) -> list[BusinessService]:
        found = self.call(
            "find_service", name_pattern=name_pattern, category_bag=categories or []
        )
        return [BusinessService.from_dict(s) for s in found]

    def access_points(self, service: BusinessService) -> list[BindingTemplate]:
        detail = self.call("get_service_detail", service_key=service.key)
        return BusinessService.from_dict(detail).binding_templates

    def wsdl_url_for(self, service: BusinessService) -> str:
        """The overviewURL of the service's wsdlSpec tModel ('' if none)."""
        for binding in self.access_points(service):
            for tmodel_key in binding.tmodel_keys:
                detail = TModel.from_dict(
                    self.call("get_tmodel_detail", tmodel_key=tmodel_key)
                )
                if detail.overview_url:
                    return detail.overview_url
        return ""
