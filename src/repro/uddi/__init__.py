"""UDDI v2 — the standard binding's discovery substrate.

The paper's standard implementation "searches user defined UDDI
registries for services" and its ServicePublisher "publishes services
to UDDI registries" (§IV-A).  This package supplies that registry:

``model``
    The UDDI data structures: businessEntity, businessService,
    bindingTemplate, tModel, keyed references (category bags).
``registry``
    The in-memory registry core with UDDI's publish and inquiry
    operations (``find_service`` name patterns with ``%`` wildcards,
    category matching, detail fetches).
``service`` / ``client``
    The registry exposed as a SOAP service on a network node, and the
    client proxy WSPeer's UDDI-conversant locator/publisher use.

Simplification vs. the UDDI v2 XML API (documented in DESIGN.md): the
inquiry/publish messages ride this stack's own SOAP RPC conventions
rather than the ``urn:uddi-org:api_v2`` message schemas; the data
model, key discipline and query semantics follow UDDI.
"""

from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    KeyedReference,
    TModel,
    UddiError,
)
from repro.uddi.registry import UddiRegistry
from repro.uddi.service import UDDI_SERVICE_NAME, UddiRegistryNode
from repro.uddi.client import UddiClient

__all__ = [
    "UddiError",
    "KeyedReference",
    "TModel",
    "BusinessEntity",
    "BusinessService",
    "BindingTemplate",
    "UddiRegistry",
    "UddiRegistryNode",
    "UddiClient",
    "UDDI_SERVICE_NAME",
]
