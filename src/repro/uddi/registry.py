"""The registry core: UDDI publish + inquiry over in-memory stores.

This is the server brain; :mod:`repro.uddi.service` wraps it in SOAP.
All operations take/return plain dicts so they cross the SOAP struct
encoding unchanged.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    KeyedReference,
    TModel,
    UddiError,
    match_name,
)


class UddiRegistry:
    """An in-memory UDDI registry."""

    def __init__(self, operator: str = "repro-registry"):
        self.operator = operator
        self._businesses: dict[str, BusinessEntity] = {}
        self._services: dict[str, BusinessService] = {}
        self._tmodels: dict[str, TModel] = {}
        self._key_counter = itertools.count(1)
        self.inquiries = 0
        self.publishes = 0

    def _new_key(self, kind: str) -> str:
        return f"uuid:{kind}-{next(self._key_counter):06d}"

    # ------------------------------------------------------------------
    # publish API
    # ------------------------------------------------------------------
    def save_business(self, name: str, description: str = "") -> dict[str, Any]:
        self.publishes += 1
        business = BusinessEntity(self._new_key("biz"), name, description)
        self._businesses[business.key] = business
        return business.to_dict()

    def save_service(
        self,
        business_key: str,
        name: str,
        description: str = "",
        category_bag: Optional[list[dict]] = None,
    ) -> dict[str, Any]:
        self.publishes += 1
        business = self._businesses.get(business_key)
        if business is None:
            raise UddiError(f"unknown businessKey {business_key!r}")
        service = BusinessService(
            self._new_key("svc"),
            business_key,
            name,
            description,
            category_bag=[KeyedReference.from_dict(k) for k in (category_bag or [])],
        )
        self._services[service.key] = service
        business.service_keys.append(service.key)
        return service.to_dict()

    def save_binding(
        self,
        service_key: str,
        access_point: str,
        tmodel_keys: Optional[list[str]] = None,
    ) -> dict[str, Any]:
        self.publishes += 1
        service = self._services.get(service_key)
        if service is None:
            raise UddiError(f"unknown serviceKey {service_key!r}")
        binding = BindingTemplate(
            self._new_key("bind"), service_key, access_point, list(tmodel_keys or [])
        )
        service.binding_templates.append(binding)
        return binding.to_dict()

    def save_tmodel(
        self, name: str, overview_url: str = "", description: str = ""
    ) -> dict[str, Any]:
        self.publishes += 1
        tmodel = TModel(self._new_key("tm"), name, overview_url, description)
        self._tmodels[tmodel.key] = tmodel
        return tmodel.to_dict()

    def delete_service(self, service_key: str) -> bool:
        service = self._services.pop(service_key, None)
        if service is None:
            return False
        business = self._businesses.get(service.business_key)
        if business is not None and service_key in business.service_keys:
            business.service_keys.remove(service_key)
        return True

    def delete_business(self, business_key: str) -> bool:
        business = self._businesses.pop(business_key, None)
        if business is None:
            return False
        for service_key in business.service_keys:
            self._services.pop(service_key, None)
        return True

    # ------------------------------------------------------------------
    # inquiry API
    # ------------------------------------------------------------------
    def find_business(
        self, name_pattern: str, max_rows: int = 0
    ) -> list[dict[str, Any]]:
        self.inquiries += 1
        out = [
            b.to_dict()
            for b in self._businesses.values()
            if match_name(name_pattern, b.name)
        ]
        return out[:max_rows] if max_rows > 0 else out

    def find_service(
        self,
        name_pattern: str = "%",
        category_bag: Optional[list[dict]] = None,
        business_key: str = "",
        max_rows: int = 0,
    ) -> list[dict[str, Any]]:
        """Find services by name pattern and (all-of) category matches.

        ``max_rows`` > 0 truncates the result set, per the UDDI v2
        inquiry API's ``maxRows`` attribute.
        """
        self.inquiries += 1
        wanted = [KeyedReference.from_dict(k) for k in (category_bag or [])]
        out = []
        for service in self._services.values():
            if business_key and service.business_key != business_key:
                continue
            if not match_name(name_pattern, service.name):
                continue
            if wanted and not all(ref in service.category_bag for ref in wanted):
                continue
            out.append(service.to_dict())
            if max_rows > 0 and len(out) >= max_rows:
                break
        return out

    def get_service_detail(self, service_key: str) -> dict[str, Any]:
        self.inquiries += 1
        service = self._services.get(service_key)
        if service is None:
            raise UddiError(f"unknown serviceKey {service_key!r}")
        return service.to_dict()

    def get_business_detail(self, business_key: str) -> dict[str, Any]:
        self.inquiries += 1
        business = self._businesses.get(business_key)
        if business is None:
            raise UddiError(f"unknown businessKey {business_key!r}")
        return business.to_dict()

    def get_tmodel_detail(self, tmodel_key: str) -> dict[str, Any]:
        self.inquiries += 1
        tmodel = self._tmodels.get(tmodel_key)
        if tmodel is None:
            raise UddiError(f"unknown tModelKey {tmodel_key!r}")
        return tmodel.to_dict()

    def find_tmodel(self, name_pattern: str, max_rows: int = 0) -> list[dict[str, Any]]:
        self.inquiries += 1
        out = [
            t.to_dict() for t in self._tmodels.values() if match_name(name_pattern, t.name)
        ]
        return out[:max_rows] if max_rows > 0 else out

    # ------------------------------------------------------------------
    @property
    def service_count(self) -> int:
        return len(self._services)

    @property
    def business_count(self) -> int:
        return len(self._businesses)
