"""The registry core: UDDI publish + inquiry over in-memory stores.

This is the server brain; :mod:`repro.uddi.service` wraps it in SOAP.
All operations take/return plain dicts so they cross the SOAP struct
encoding unchanged.

E12 turns one registry into a *shard* of the distributed discovery
plane, which needs four things of this core:

- **Collision-free keys.**  Keys are namespaced by the registry's
  ``operator`` id, so two shards never mint the same
  ``uuid:<operator>:svc-...`` key and replicated entries keep their
  identity when copied between registries.
- **Registration leases.**  ``save_service`` accepts an optional *ttl*;
  expired entries drop out of every inquiry (the soft-state model of
  :class:`~repro.p2ps.cache.AdvertCache` applied to UDDI), and a
  re-publish refreshes the lease in place.
- **Revisions.**  Every mutation of a service bumps a monotonic
  per-entry revision counter; replication and read-repair compare
  revisions instead of clocks to decide which copy is fresher.
- **Export / import.**  :meth:`export_service` emits one self-contained
  *record* (service + business + tModels + revision + remaining lease)
  that :meth:`import_service` upserts verbatim on another shard.

Exact-name inquiries are O(1) through a name index, so a shard holding
tens of thousands of services answers a keyed lookup without scanning.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.observability import metrics as obs_metrics
from repro.uddi.model import (
    BindingTemplate,
    BusinessEntity,
    BusinessService,
    KeyedReference,
    TModel,
    UddiError,
    match_name,
)


class UddiRegistry:
    """An in-memory UDDI registry (one shard of the discovery plane).

    *operator* namespaces every minted key; *clock* (a zero-argument
    callable returning seconds) drives registration leases.  Without a
    clock the registry is timeless and leases never expire.
    """

    def __init__(self, operator: str = "repro-registry", clock=None):
        self.operator = operator
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._businesses: dict[str, BusinessEntity] = {}
        self._services: dict[str, BusinessService] = {}
        self._tmodels: dict[str, TModel] = {}
        self._tmodel_by_name: dict[str, str] = {}
        self._by_name: dict[str, set[str]] = {}  # lower name -> service keys
        self._revisions: dict[str, int] = {}  # service key -> revision
        self._leases: dict[str, float] = {}  # service key -> absolute expiry
        self._key_counter = itertools.count(1)
        self.inquiries = 0
        self.publishes = 0
        self.leases_expired = 0

    def _new_key(self, kind: str) -> str:
        return f"uuid:{self.operator}:{kind}-{next(self._key_counter):06d}"

    def _now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _count_publish(self) -> None:
        self.publishes += 1
        obs_metrics.inc("uddi.publishes")

    def _count_inquiry(self) -> None:
        self.inquiries += 1
        obs_metrics.inc("uddi.inquiries")

    def _update_size_gauge(self) -> None:
        obs_metrics.set_gauge("uddi.services", len(self._services))

    def _index_service(self, service: BusinessService) -> None:
        self._by_name.setdefault(service.name.lower(), set()).add(service.key)

    def _drop_service(self, service_key: str) -> Optional[BusinessService]:
        """Remove a service and every index/lease/revision entry for it."""
        service = self._services.pop(service_key, None)
        if service is None:
            return None
        keys = self._by_name.get(service.name.lower())
        if keys is not None:
            keys.discard(service_key)
            if not keys:
                del self._by_name[service.name.lower()]
        self._revisions.pop(service_key, None)
        self._leases.pop(service_key, None)
        business = self._businesses.get(service.business_key)
        if business is not None and service_key in business.service_keys:
            business.service_keys.remove(service_key)
        self._update_size_gauge()
        return service

    def _purge_expired(self) -> int:
        """Drop services whose lease lapsed; returns how many dropped."""
        if not self._leases:
            return 0
        now = self._now()
        stale = [key for key, expires in self._leases.items() if expires <= now]
        for key in stale:
            self._drop_service(key)
            self.leases_expired += 1
            obs_metrics.inc("uddi.leases_expired")
        return len(stale)

    def _set_lease(self, service_key: str, ttl: Optional[float]) -> None:
        if ttl is not None and ttl > 0:
            self._leases[service_key] = self._now() + ttl
        else:
            self._leases.pop(service_key, None)

    def _bump_revision(self, service_key: str) -> int:
        revision = self._revisions.get(service_key, 0) + 1
        self._revisions[service_key] = revision
        return revision

    def revision_of(self, service_key: str) -> int:
        return self._revisions.get(service_key, 0)

    # ------------------------------------------------------------------
    # publish API
    # ------------------------------------------------------------------
    def save_business(self, name: str, description: str = "") -> dict[str, Any]:
        self._count_publish()
        business = BusinessEntity(self._new_key("biz"), name, description)
        self._businesses[business.key] = business
        return business.to_dict()

    def save_service(
        self,
        business_key: str,
        name: str,
        description: str = "",
        category_bag: Optional[list[dict]] = None,
        ttl: Optional[float] = None,
    ) -> dict[str, Any]:
        """Create — or refresh — the service *name* of *business_key*.

        A second save of the same (business, name) updates the existing
        entry in place: the key is stable, the revision bumps, and the
        lease (when *ttl* is given) restarts from now.  That is the
        re-publish idiom periodic announcers rely on.
        """
        self._count_publish()
        self._purge_expired()
        business = self._businesses.get(business_key)
        if business is None:
            raise UddiError(f"unknown businessKey {business_key!r}")
        categories = [KeyedReference.from_dict(k) for k in (category_bag or [])]
        for key in self._by_name.get(name.lower(), ()):
            existing = self._services[key]
            if existing.business_key == business_key:
                if description:
                    existing.description = description
                if category_bag is not None:
                    existing.category_bag = categories
                self._bump_revision(key)
                self._set_lease(key, ttl)
                return existing.to_dict()
        service = BusinessService(
            self._new_key("svc"), business_key, name, description,
            category_bag=categories,
        )
        self._services[service.key] = service
        self._index_service(service)
        business.service_keys.append(service.key)
        self._bump_revision(service.key)
        self._set_lease(service.key, ttl)
        self._update_size_gauge()
        return service.to_dict()

    def save_binding(
        self,
        service_key: str,
        access_point: str,
        tmodel_keys: Optional[list[str]] = None,
    ) -> dict[str, Any]:
        """Attach (or refresh) the binding at *access_point*.

        Re-publishing the same access point replaces its tModel list
        instead of accumulating duplicate bindingTemplates.
        """
        self._count_publish()
        service = self._services.get(service_key)
        if service is None:
            raise UddiError(f"unknown serviceKey {service_key!r}")
        for binding in service.binding_templates:
            if binding.access_point == access_point:
                binding.tmodel_keys = list(tmodel_keys or [])
                self._bump_revision(service_key)
                return binding.to_dict()
        binding = BindingTemplate(
            self._new_key("bind"), service_key, access_point, list(tmodel_keys or [])
        )
        service.binding_templates.append(binding)
        self._bump_revision(service_key)
        return binding.to_dict()

    def save_tmodel(
        self, name: str, overview_url: str = "", description: str = ""
    ) -> dict[str, Any]:
        """Create — or update in place — the tModel called *name*."""
        self._count_publish()
        existing_key = self._tmodel_by_name.get(name)
        if existing_key is not None:
            tmodel = self._tmodels[existing_key]
            if overview_url:
                tmodel.overview_url = overview_url
            if description:
                tmodel.description = description
            return tmodel.to_dict()
        tmodel = TModel(self._new_key("tm"), name, overview_url, description)
        self._tmodels[tmodel.key] = tmodel
        self._tmodel_by_name[name] = tmodel.key
        return tmodel.to_dict()

    def delete_service(self, service_key: str) -> bool:
        return self._drop_service(service_key) is not None

    def delete_business(self, business_key: str) -> bool:
        business = self._businesses.pop(business_key, None)
        if business is None:
            return False
        for service_key in list(business.service_keys):
            self._drop_service(service_key)
        return True

    # ------------------------------------------------------------------
    # replication API (E12)
    # ------------------------------------------------------------------
    def export_service(self, service_key: str) -> dict[str, Any]:
        """One self-contained replication record for *service_key*."""
        self._count_inquiry()
        self._purge_expired()
        service = self._services.get(service_key)
        if service is None:
            raise UddiError(f"unknown serviceKey {service_key!r}")
        return self._record_for(service)

    def _record_for(self, service: BusinessService) -> dict[str, Any]:
        business = self._businesses.get(service.business_key)
        tmodels: list[dict[str, Any]] = []
        seen: set[str] = set()
        for binding in service.binding_templates:
            for tmodel_key in binding.tmodel_keys:
                tmodel = self._tmodels.get(tmodel_key)
                if tmodel is not None and tmodel_key not in seen:
                    seen.add(tmodel_key)
                    tmodels.append(tmodel.to_dict())
        expires = self._leases.get(service.key)
        return {
            "service": service.to_dict(),
            "business": (
                {
                    "businessKey": business.key,
                    "name": business.name,
                    "description": business.description,
                }
                if business is not None
                else {}
            ),
            "tModels": tmodels,
            "revision": self._revisions.get(service.key, 1),
            "lease": max(0.0, expires - self._now()) if expires is not None else 0.0,
        }

    def import_service(self, record: dict[str, Any]) -> bool:
        """Upsert a replication *record* verbatim (keys included).

        Freshness is decided by the record's revision counter: stale
        imports (revision lower than what this shard already holds) are
        ignored; an equal revision only refreshes the lease.  Returns
        True when the record was applied.
        """
        self._count_publish()
        self._purge_expired()
        service = BusinessService.from_dict(record["service"])
        incoming = int(record.get("revision", 1))
        lease = float(record.get("lease", 0.0) or 0.0)
        current = self._revisions.get(service.key)
        if current is not None and service.key in self._services:
            if incoming < current:
                return False
            if incoming == current:
                self._set_lease(service.key, lease if lease > 0 else None)
                return False
        business_info = record.get("business") or {}
        business_key = business_info.get("businessKey") or service.business_key
        if business_key and business_key not in self._businesses:
            self._businesses[business_key] = BusinessEntity(
                business_key,
                business_info.get("name", ""),
                business_info.get("description", ""),
            )
        old = self._services.get(service.key)
        if old is not None:
            keys = self._by_name.get(old.name.lower())
            if keys is not None:
                keys.discard(service.key)
                if not keys:
                    del self._by_name[old.name.lower()]
        self._services[service.key] = service
        self._index_service(service)
        business = self._businesses.get(business_key)
        if business is not None and service.key not in business.service_keys:
            business.service_keys.append(service.key)
        for tmodel_dict in record.get("tModels", []):
            tmodel = TModel.from_dict(tmodel_dict)
            self._tmodels[tmodel.key] = tmodel
            self._tmodel_by_name.setdefault(tmodel.name, tmodel.key)
        self._revisions[service.key] = incoming
        self._set_lease(service.key, lease if lease > 0 else None)
        self._update_size_gauge()
        return True

    # ------------------------------------------------------------------
    # inquiry API
    # ------------------------------------------------------------------
    def find_business(
        self, name_pattern: str, max_rows: int = 0
    ) -> list[dict[str, Any]]:
        self._count_inquiry()
        self._purge_expired()
        out = [
            b.to_dict()
            for b in self._businesses.values()
            if match_name(name_pattern, b.name)
        ]
        return out[:max_rows] if max_rows > 0 else out

    def _service_candidates(self, name_pattern: str) -> list[BusinessService]:
        """Services that can match *name_pattern* (indexed when exact)."""
        if "%" not in name_pattern:
            keys = sorted(self._by_name.get(name_pattern.lower(), ()))
            return [self._services[k] for k in keys]
        return list(self._services.values())

    def find_service(
        self,
        name_pattern: str = "%",
        category_bag: Optional[list[dict]] = None,
        business_key: str = "",
        max_rows: int = 0,
    ) -> list[dict[str, Any]]:
        """Find services by name pattern and (all-of) category matches.

        ``max_rows`` > 0 truncates the result set, per the UDDI v2
        inquiry API's ``maxRows`` attribute.
        """
        return [
            service.to_dict()
            for service in self._find(name_pattern, category_bag, business_key, max_rows)
        ]

    def find_service_records(
        self,
        name_pattern: str = "%",
        category_bag: Optional[list[dict]] = None,
        business_key: str = "",
        max_rows: int = 0,
    ) -> list[dict[str, Any]]:
        """Like :meth:`find_service`, but each hit is a full replication
        record (service + business + tModels + revision + lease), so one
        round trip resolves what the classic chain needed three for."""
        return [
            self._record_for(service)
            for service in self._find(name_pattern, category_bag, business_key, max_rows)
        ]

    def _find(
        self,
        name_pattern: str,
        category_bag: Optional[list[dict]],
        business_key: str,
        max_rows: int,
    ) -> list[BusinessService]:
        self._count_inquiry()
        self._purge_expired()
        exact = "%" not in name_pattern
        wanted = [KeyedReference.from_dict(k) for k in (category_bag or [])]
        out: list[BusinessService] = []
        for service in self._service_candidates(name_pattern):
            if business_key and service.business_key != business_key:
                continue
            if not exact and not match_name(name_pattern, service.name):
                continue
            if wanted and not all(ref in service.category_bag for ref in wanted):
                continue
            out.append(service)
            if max_rows > 0 and len(out) >= max_rows:
                break
        return out

    def get_service_detail(self, service_key: str) -> dict[str, Any]:
        self._count_inquiry()
        self._purge_expired()
        service = self._services.get(service_key)
        if service is None:
            raise UddiError(f"unknown serviceKey {service_key!r}")
        return service.to_dict()

    def get_business_detail(self, business_key: str) -> dict[str, Any]:
        self._count_inquiry()
        business = self._businesses.get(business_key)
        if business is None:
            raise UddiError(f"unknown businessKey {business_key!r}")
        return business.to_dict()

    def get_tmodel_detail(self, tmodel_key: str) -> dict[str, Any]:
        self._count_inquiry()
        tmodel = self._tmodels.get(tmodel_key)
        if tmodel is None:
            raise UddiError(f"unknown tModelKey {tmodel_key!r}")
        return tmodel.to_dict()

    def find_tmodel(self, name_pattern: str, max_rows: int = 0) -> list[dict[str, Any]]:
        self._count_inquiry()
        out = [
            t.to_dict() for t in self._tmodels.values() if match_name(name_pattern, t.name)
        ]
        return out[:max_rows] if max_rows > 0 else out

    # ------------------------------------------------------------------
    @property
    def service_count(self) -> int:
        self._purge_expired()
        return len(self._services)

    @property
    def business_count(self) -> int:
        return len(self._businesses)
