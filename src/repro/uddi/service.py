"""The UDDI registry exposed as a SOAP service on a network node.

The registry node is exactly the kind of centralised server the paper's
§II warns about: every inquiry and publish in a standard-binding
network lands here, which is what experiments E1/E2 measure.
"""

from __future__ import annotations

from typing import Optional

from repro.simnet.network import Network, Node
from repro.soap import HandlerChain, MessageContext, RpcDispatcher, ServiceObject, SoapEnvelope
from repro.transport.http import DEFAULT_HTTP_PORT, HttpRequest, HttpResponse, HttpServer
from repro.uddi.registry import UddiRegistry

UDDI_SERVICE_NAME = "UddiRegistry"
UDDI_NAMESPACE = "urn:uddi-org:api_v2"
UDDI_PATH = "/uddi/inquiry"


class UddiRegistryNode:
    """Hosts a :class:`UddiRegistry` behind SOAP-over-HTTP on *node*."""

    def __init__(
        self,
        node: Node,
        registry: Optional[UddiRegistry] = None,
        port: int = DEFAULT_HTTP_PORT,
    ):
        self.node = node
        if registry is None:
            # Namespacing keys by the hosting node id keeps independent
            # shards collision-free; the kernel clock drives leases.
            registry = UddiRegistry(
                operator=node.id, clock=lambda: node.network.kernel.now
            )
        self.registry = registry
        self.port = port
        service = ServiceObject.from_instance(
            UDDI_SERVICE_NAME,
            self.registry,
            UDDI_NAMESPACE,
            include=[
                "save_business",
                "save_service",
                "save_binding",
                "save_tmodel",
                "delete_service",
                "delete_business",
                "find_business",
                "find_service",
                "find_service_records",
                "find_tmodel",
                "export_service",
                "import_service",
                "get_service_detail",
                "get_business_detail",
                "get_tmodel_detail",
            ],
        )
        self.dispatcher = RpcDispatcher(service)
        self.chain = HandlerChain()
        self.server = HttpServer(node, port)
        self.server.add_route(UDDI_PATH, self._handle)
        self.server.start()

    @property
    def endpoint(self) -> str:
        return f"http://{self.node.id}:{self.port}{UDDI_PATH}"

    def _handle(self, request: HttpRequest) -> HttpResponse:
        envelope = SoapEnvelope.from_wire(request.body)
        context = MessageContext(envelope, UDDI_SERVICE_NAME)
        response = self.chain.run(context, lambda ctx: self.dispatcher.dispatch(ctx.request))
        status = 500 if response.is_fault else 200
        return HttpResponse(status, response.to_wire())

    def stop(self) -> None:
        self.server.stop()

    @property
    def network(self) -> Network:
        return self.node.network
