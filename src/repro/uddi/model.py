"""UDDI v2 data structures.

Each structure mirrors its UDDI namesake closely enough that the
registry's publish/inquiry semantics (keys, ownership, category bags)
behave like the real thing.  Structures (de)serialise to plain dicts,
which is how they ride the SOAP layer's struct encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class UddiError(Exception):
    """Registry-level error (unknown key, bad query, ...)."""


@dataclass(frozen=True)
class KeyedReference:
    """A categorisation entry: (tModel, name, value)."""

    tmodel_key: str
    key_name: str
    key_value: str

    def to_dict(self) -> dict[str, str]:
        return {
            "tModelKey": self.tmodel_key,
            "keyName": self.key_name,
            "keyValue": self.key_value,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "KeyedReference":
        return cls(data["tModelKey"], data.get("keyName", ""), data["keyValue"])


@dataclass
class TModel:
    """A technical model: a named concept, often pointing at a spec.

    For WSDL-described services the ``overview_url`` points at the
    service's WSDL document (the wsdlSpec convention).
    """

    key: str
    name: str
    overview_url: str = ""
    description: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "tModelKey": self.key,
            "name": self.name,
            "overviewURL": self.overview_url,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TModel":
        return cls(
            data["tModelKey"],
            data["name"],
            data.get("overviewURL", ""),
            data.get("description", ""),
        )


@dataclass
class BindingTemplate:
    """An endpoint of a service: access point + implemented tModels."""

    key: str
    service_key: str
    access_point: str
    tmodel_keys: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "bindingKey": self.key,
            "serviceKey": self.service_key,
            "accessPoint": self.access_point,
            "tModelKeys": list(self.tmodel_keys),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BindingTemplate":
        return cls(
            data["bindingKey"],
            data["serviceKey"],
            data.get("accessPoint", ""),
            list(data.get("tModelKeys", [])),
        )


@dataclass
class BusinessService:
    """A published service of a business."""

    key: str
    business_key: str
    name: str
    description: str = ""
    binding_templates: list[BindingTemplate] = field(default_factory=list)
    category_bag: list[KeyedReference] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "serviceKey": self.key,
            "businessKey": self.business_key,
            "name": self.name,
            "description": self.description,
            "bindingTemplates": [b.to_dict() for b in self.binding_templates],
            "categoryBag": [k.to_dict() for k in self.category_bag],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BusinessService":
        return cls(
            data["serviceKey"],
            data.get("businessKey", ""),
            data["name"],
            data.get("description", ""),
            [BindingTemplate.from_dict(b) for b in data.get("bindingTemplates", [])],
            [KeyedReference.from_dict(k) for k in data.get("categoryBag", [])],
        )


@dataclass
class BusinessEntity:
    """A publishing organisation."""

    key: str
    name: str
    description: str = ""
    service_keys: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "businessKey": self.key,
            "name": self.name,
            "description": self.description,
            "serviceKeys": list(self.service_keys),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BusinessEntity":
        return cls(
            data["businessKey"],
            data["name"],
            data.get("description", ""),
            list(data.get("serviceKeys", [])),
        )


def match_name(pattern: str, name: str) -> bool:
    """UDDI name matching: case-insensitive, ``%`` is a wildcard.

    A trailing ``%`` gives prefix match (the common UDDI idiom);
    interior ``%`` splits into ordered fragments.
    """
    pattern_lower = pattern.lower()
    name_lower = name.lower()
    if "%" not in pattern_lower:
        return pattern_lower == name_lower
    fragments = pattern_lower.split("%")
    position = 0
    for i, fragment in enumerate(fragments):
        if not fragment:
            continue
        found = name_lower.find(fragment, position)
        if found < 0:
            return False
        if i == 0 and found != 0:
            return False  # pattern did not start with %
        position = found + len(fragment)
    if fragments[-1] and position != len(name_lower):
        return False  # pattern did not end with %
    return True
