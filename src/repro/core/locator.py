"""ServiceLocators: find services and fetch their descriptions.

"On the client side, locating a service involves retrieving the
endpoint of the service and possibly its interface description as well"
(§III).  Two implementations:

:class:`UddiServiceLocator`
    Queries a UDDI registry (the "UDDI conversant component"), then
    fetches the WSDL over HTTP from the provider's ``.wsdl`` route.
:class:`P2psServiceLocator`
    Floods an attribute-based query into the peer group, converts the
    returned ServiceAdvertisements into handles with per-operation pipe
    EPRs, and retrieves the WSDL through the *definition pipe*.

Both produce :class:`~repro.core.handle.ServiceHandle` objects, so the
application never touches wire formats.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.deployer import DEFINITION_PIPE_NAME
from repro.core.errors import DiscoveryError
from repro.core.events import EventSource
from repro.core.handle import ServiceHandle
from repro.core.p2psmap import epr_from_pipe
from repro.core.query import P2PSServiceQuery, ServiceQuery, UDDIServiceQuery
from repro.p2ps.advertisements import ServiceAdvertisement
from repro.p2ps.peer import Peer
from repro.p2ps.query import AdvertQuery
from repro.simnet.kernel import SimTimeoutError
from repro.simnet.network import Node
from repro.soap.envelope import SoapEnvelope
from repro.transport.base import TransportError
from repro.transport.http import HttpClient, HttpRequest
from repro.transport.uri import Uri
from repro.uddi.client import UddiClient
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageAddressingProperties, new_message_id
from repro.wsdl.parser import parse_wsdl_cached


class ServiceLocator(EventSource):
    """Base locator node of the interface tree."""

    def __init__(self, clock, parent: Optional[EventSource] = None):
        super().__init__("locator", parent)
        self._clock = clock
        #: endpoint addresses known to be dead — dropped from every
        #: handle this locator returns until a later alive verdict.
        #: Discovery caches go stale the moment a provider leaves (the
        #: paper's transient peers); supervision verdicts are the
        #: freshness signal.
        self._quarantine: set[str] = set()

    def _now(self) -> float:
        return self._clock()

    # -- endpoint staleness ------------------------------------------------
    @property
    def quarantined(self) -> frozenset[str]:
        return frozenset(self._quarantine)

    def mark_endpoint_dead(self, address: str) -> None:
        if address not in self._quarantine:
            self._quarantine.add(address)
            self.fire_discovery("endpoint-quarantined", endpoint=address)

    def mark_endpoint_alive(self, address: str) -> None:
        if address in self._quarantine:
            self._quarantine.discard(address)
            self.fire_discovery("endpoint-restored", endpoint=address)

    def watch_health(self, monitor) -> None:
        """Feed a :class:`~repro.supervision.health.HealthMonitor`'s
        dead/alive verdicts into this locator's quarantine."""
        from repro.supervision.health import DEAD

        def on_verdict(address: str, verdict: str) -> None:
            if verdict == DEAD:
                self.mark_endpoint_dead(address)
            else:
                self.mark_endpoint_alive(address)

        monitor.add_verdict_listener(on_verdict)

    def _filter_quarantined(
        self, handle: Optional[ServiceHandle]
    ) -> Optional[ServiceHandle]:
        """Strip quarantined EPRs from *handle*; None when none remain."""
        if handle is None or not self._quarantine:
            return handle
        for endpoint in list(handle.endpoints):
            if endpoint.address in self._quarantine:
                handle.drop_endpoint(endpoint.address)
        if not handle.endpoints:
            self.fire_discovery(
                "service-skipped", service=handle.name,
                reason="all endpoints quarantined",
            )
            return None
        return handle

    def locate(
        self, query: ServiceQuery, timeout: float = 10.0, expect: int = 1
    ) -> list[ServiceHandle]:  # pragma: no cover - abstract
        raise NotImplementedError


class UddiServiceLocator(ServiceLocator):
    """Searches a UDDI registry, then pulls WSDL from the provider."""

    def __init__(
        self,
        node: Node,
        registry_uri: str,
        parent: Optional[EventSource] = None,
        timeout: float = 30.0,
    ):
        super().__init__(lambda: node.network.kernel.now, parent)
        self.node = node
        self.uddi = UddiClient(node, registry_uri, timeout)
        self.http = HttpClient(node, timeout)

    def locate(
        self, query: ServiceQuery, timeout: float = 10.0, expect: int = 1
    ) -> list[ServiceHandle]:
        categories = query.categories if isinstance(query, UDDIServiceQuery) else []
        self.fire_discovery("query-issued", query=query.describe(), via="uddi")
        try:
            services = self.uddi.find_services(query.name_pattern, categories)
        except TransportError as exc:
            self.fire_discovery("query-failed", reason=str(exc))
            raise DiscoveryError(f"UDDI registry unreachable: {exc}") from exc
        handles: list[ServiceHandle] = []
        for service in services:
            bindings = self.uddi.access_points(service)
            if not bindings:
                continue
            endpoints = [EndpointReference(b.access_point) for b in bindings]
            wsdl_url = self.uddi.wsdl_url_for(service)
            if not wsdl_url:
                self.fire_discovery("service-skipped", service=service.name,
                                    reason="no wsdlSpec tModel")
                continue
            try:
                wsdl_text = self._fetch(wsdl_url)
            except TransportError as exc:
                self.fire_discovery("service-skipped", service=service.name,
                                    reason=f"wsdl fetch failed: {exc}")
                continue
            handle = self._filter_quarantined(
                ServiceHandle(
                    service.name, parse_wsdl_cached(wsdl_text), endpoints, source="uddi"
                )
            )
            if handle is None:
                continue
            handles.append(handle)
            self.fire_discovery(
                "service-found", service=service.name, via="uddi",
                endpoints=[e.address for e in handle.endpoints],
            )
        if not handles:
            self.fire_discovery("query-empty", query=query.describe())
        return handles

    def _fetch(self, url: str) -> str:
        uri = Uri.parse(url)
        response = self.http.request(
            uri.host, uri.port or 80, HttpRequest("GET", "/" + uri.path)
        )
        if not response.ok:
            raise TransportError(f"GET {url} -> {response.status}")
        return response.body

    # ------------------------------------------------------------------
    def locate_async(
        self,
        query: ServiceQuery,
        on_found: Callable[[ServiceHandle], None],
        on_complete: Optional[Callable[[int, Optional[Exception]], None]] = None,
    ) -> None:
        """Event-driven UDDI discovery: no call in the chain blocks.

        Chains find_service → get_service_detail → get_tmodel_detail →
        WSDL GET entirely through callbacks; *on_found* fires per usable
        service as its WSDL lands, *on_complete(count, error)* once the
        whole sweep settles.
        """
        categories = query.categories if isinstance(query, UDDIServiceQuery) else []
        self.fire_discovery("query-issued", query=query.describe(), via="uddi-async")
        state = {"outstanding": 0, "found": 0, "finished_listing": False}

        def maybe_complete(error: Optional[Exception] = None) -> None:
            if error is not None:
                self.fire_discovery("query-failed", reason=str(error))
                if on_complete is not None:
                    on_complete(state["found"], error)
                return
            if state["finished_listing"] and state["outstanding"] == 0:
                if state["found"] == 0:
                    self.fire_discovery("query-empty", query=query.describe())
                if on_complete is not None:
                    on_complete(state["found"], None)

        def on_services(services, error) -> None:
            if error is not None:
                maybe_complete(error)
                return
            from repro.uddi.model import BusinessService

            parsed = [BusinessService.from_dict(s) for s in services]
            state["outstanding"] = len(parsed)
            state["finished_listing"] = True
            if not parsed:
                maybe_complete()
            for service in parsed:
                self._resolve_service_async(service, on_found, state, maybe_complete)

        self.uddi.call_async(
            "find_service", on_services,
            name_pattern=query.name_pattern, category_bag=categories,
        )

    def _resolve_service_async(self, service, on_found, state, maybe_complete) -> None:
        def finish_one() -> None:
            state["outstanding"] -= 1
            maybe_complete()

        def on_detail(detail, error) -> None:
            if error is not None or not detail:
                finish_one()
                return
            from repro.uddi.model import BusinessService

            full = BusinessService.from_dict(detail)
            if not full.binding_templates:
                finish_one()
                return
            endpoints = [EndpointReference(b.access_point) for b in full.binding_templates]
            tmodel_keys = [
                key for b in full.binding_templates for key in b.tmodel_keys
            ]
            if not tmodel_keys:
                self.fire_discovery("service-skipped", service=full.name,
                                    reason="no wsdlSpec tModel")
                finish_one()
                return

            def on_tmodel(tmodel, error) -> None:
                if error is not None or not tmodel or not tmodel.get("overviewURL"):
                    self.fire_discovery("service-skipped", service=full.name,
                                        reason="no wsdl url")
                    finish_one()
                    return
                uri = Uri.parse(tmodel["overviewURL"])

                def on_wsdl(response, error) -> None:
                    if error is not None or not response.ok:
                        self.fire_discovery("service-skipped", service=full.name,
                                            reason="wsdl fetch failed")
                        finish_one()
                        return
                    handle = self._filter_quarantined(
                        ServiceHandle(
                            full.name, parse_wsdl_cached(response.body), endpoints,
                            source="uddi",
                        )
                    )
                    if handle is None:
                        finish_one()
                        return
                    state["found"] += 1
                    self.fire_discovery(
                        "service-found", service=full.name, via="uddi-async",
                        endpoints=[e.address for e in handle.endpoints],
                    )
                    on_found(handle)
                    finish_one()

                self.http.request_async(
                    uri.host, uri.port or 80,
                    HttpRequest("GET", "/" + uri.path), on_wsdl,
                )

            self.uddi.call_async("get_tmodel_detail", on_tmodel, tmodel_key=tmodel_keys[0])

        self.uddi.call_async("get_service_detail", on_detail, service_key=service.key)


class P2psServiceLocator(ServiceLocator):
    """Discovers ServiceAdvertisements in the peer group."""

    def __init__(self, peer: Peer, parent: Optional[EventSource] = None):
        super().__init__(lambda: peer.network.kernel.now, parent)
        self.peer = peer

    def locate(
        self, query: ServiceQuery, timeout: float = 10.0, expect: int = 1
    ) -> list[ServiceHandle]:
        attributes = query.attributes if isinstance(query, P2PSServiceQuery) else {}
        ttl = query.ttl if isinstance(query, P2PSServiceQuery) else None
        advert_query = AdvertQuery("service", query.name_pattern, attributes)
        self.fire_discovery("query-issued", query=query.describe(), via="p2ps")
        handle = self.peer.discover(advert_query, ttl=ttl)
        adverts = handle.wait_for(expect, timeout=timeout)
        handles = []
        for advert in adverts:
            if isinstance(advert, ServiceAdvertisement):
                service_handle = self._handle_from_advert(advert, timeout)
                if service_handle is not None:
                    handles.append(service_handle)
                    self.fire_discovery(
                        "service-found", service=advert.name, via="p2ps",
                        provider=advert.peer_id,
                    )
        if not handles:
            self.fire_discovery("query-empty", query=query.describe())
        return handles

    def locate_async(
        self,
        query: ServiceQuery,
        on_found: Callable[[ServiceHandle], None],
        timeout: float = 10.0,
    ) -> None:
        """Event-driven variant: *on_found* fires per discovered service."""
        attributes = query.attributes if isinstance(query, P2PSServiceQuery) else {}
        advert_query = AdvertQuery("service", query.name_pattern, attributes)
        self.fire_discovery("query-issued", query=query.describe(), via="p2ps")
        handle = self.peer.discover(advert_query)

        def on_advert(advert):  # type: ignore[no-untyped-def]
            if isinstance(advert, ServiceAdvertisement):
                service_handle = self._handle_from_advert(advert, timeout)
                if service_handle is not None:
                    self.fire_discovery(
                        "service-found", service=advert.name, via="p2ps",
                        provider=advert.peer_id,
                    )
                    on_found(service_handle)

        handle.on_result(on_advert)

    # ------------------------------------------------------------------
    def _handle_from_advert(
        self, advert: ServiceAdvertisement, timeout: float
    ) -> Optional[ServiceHandle]:
        endpoints = [
            epr_from_pipe(pipe)
            for pipe in advert.pipes
            if pipe.name != advert.definition_pipe
        ]
        try:
            wsdl_text = self._fetch_definition(advert, timeout)
        except (DiscoveryError, Exception) as exc:  # noqa: BLE001
            self.fire_discovery(
                "service-skipped", service=advert.name,
                reason=f"definition fetch failed: {exc}",
            )
            return None
        return self._filter_quarantined(
            ServiceHandle(
                advert.name,
                parse_wsdl_cached(wsdl_text),
                endpoints,
                source="p2ps",
                attributes=dict(advert.attributes),
            )
        )

    def _fetch_definition(self, advert: ServiceAdvertisement, timeout: float) -> str:
        """Pull the WSDL through the definition pipe (§IV-B).

        Sends a header-only SOAP request with our reply pipe as ReplyTo
        and pumps until the WSDL text arrives back down it.
        """
        definition = advert.pipe_named(advert.definition_pipe or DEFINITION_PIPE_NAME)
        if definition is None:
            raise DiscoveryError(f"advert {advert.name!r} has no definition pipe")
        out_pipe = self.peer.open_output_pipe(definition)
        reply_pipe, reply_advert = self.peer.create_input_pipe("reply-definition")
        box: dict[str, str] = {}
        reply_pipe.add_listener(lambda payload, meta: box.setdefault("wsdl", payload))
        request = SoapEnvelope()
        maps = MessageAddressingProperties(
            to=epr_from_pipe(definition).address,
            action=f"{epr_from_pipe(definition).address}#{DEFINITION_PIPE_NAME}",
            reply_to=epr_from_pipe(reply_advert),
            message_id=new_message_id(),
        )
        maps.apply_to(request)
        try:
            self.peer.send_down_pipe(out_pipe, request.to_wire())
            self.peer.network.kernel.pump_until(lambda: "wsdl" in box, timeout=timeout)
        except SimTimeoutError as exc:
            raise DiscoveryError(
                f"definition pipe of {advert.name!r} did not answer"
            ) from exc
        finally:
            self.peer.close_input_pipe(reply_advert.pipe_id)
        return box["wsdl"]
