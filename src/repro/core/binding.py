"""Bindings: pluggable bundles of locator / publisher / deployer / invoker.

"By plugging in different components, WSPeer can communicate with
different entities without the application changing" (§III).  A
:class:`Binding` is a factory for the four leaf nodes of the interface
tree.  Two ship — :class:`StandardBinding` (Fig. 3) and
:class:`P2psBinding` (Fig. 4) — and because each leaf is created
independently, a peer can mix them: "a P2PS Client could use the UDDI
enabled ServiceLocator defined in the standard implementation" (§IV).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional

from repro.core.deployer import HttpServiceDeployer, P2psServiceDeployer, ServiceDeployer
from repro.core.invocation import HttpInvocation, Invocation, P2psInvocation
from repro.core.locator import P2psServiceLocator, ServiceLocator, UddiServiceLocator
from repro.core.publisher import (
    P2psServicePublisher,
    ServicePublisher,
    UddiServicePublisher,
)
from repro.p2ps.group import PeerGroup
from repro.p2ps.peer import Peer
from repro.reliability import ReliabilityPolicy
from repro.transport.httpg import CertificateAuthority, Credential, HttpgTransport

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.wspeer import WSPeer


class Binding(abc.ABC):
    """Factory for the four pluggable components of one WSPeer."""

    name = "binding"

    @abc.abstractmethod
    def make_deployer(self, wspeer: "WSPeer") -> ServiceDeployer: ...

    @abc.abstractmethod
    def make_publisher(self, wspeer: "WSPeer", deployer: ServiceDeployer) -> ServicePublisher: ...

    @abc.abstractmethod
    def make_locator(self, wspeer: "WSPeer") -> ServiceLocator: ...

    @abc.abstractmethod
    def make_invocation(self, wspeer: "WSPeer") -> Invocation: ...


class StandardBinding(Binding):
    """SOAP over HTTP (optionally HTTPG) with UDDI discovery (§IV-A)."""

    name = "standard"

    def __init__(
        self,
        registry_uri: str,
        http_port: int = 80,
        business_name: str = "WSPeer",
        ca: Optional[CertificateAuthority] = None,
        credential: Optional[Credential] = None,
        reliability: Optional[ReliabilityPolicy] = None,
    ):
        self.registry_uri = registry_uri
        self.http_port = http_port
        self.business_name = business_name
        self.ca = ca
        self.credential = credential
        #: binding-wide reliability default: HTTP retries connection-level
        #: errors only (a timed-out exchange may have executed server-side).
        #: Pass ``ReliabilityPolicy.naive()`` to disable retries entirely.
        self.reliability = (
            reliability if reliability is not None
            else ReliabilityPolicy.standard_default()
        )

    def make_deployer(self, wspeer: "WSPeer") -> ServiceDeployer:
        return HttpServiceDeployer(
            wspeer.node, wspeer.server.container, self.http_port, parent=wspeer.server
        )

    def make_publisher(self, wspeer: "WSPeer", deployer: ServiceDeployer) -> ServicePublisher:
        return UddiServicePublisher(
            wspeer.node, self.registry_uri, self.business_name, parent=wspeer.server
        )

    def make_locator(self, wspeer: "WSPeer") -> ServiceLocator:
        return UddiServiceLocator(wspeer.node, self.registry_uri, parent=wspeer.client)

    def make_invocation(self, wspeer: "WSPeer") -> Invocation:
        extra = []
        if self.ca is not None and self.credential is not None:
            extra.append(HttpgTransport(wspeer.node, self.ca, self.credential))
        return HttpInvocation(
            wspeer.node, parent=wspeer.client, extra_transports=extra,
            default_policy=self.reliability,
        )


class P2psBinding(Binding):
    """SOAP over P2PS pipes with group/rendezvous discovery (§IV-B).

    All four components share one :class:`~repro.p2ps.peer.Peer`, which
    the binding creates lazily and joins to *group*.
    """

    name = "p2ps"

    def __init__(
        self,
        group: PeerGroup,
        rendezvous: bool = False,
        peer_name: str = "",
        default_ttl: int = 4,
        reliability: Optional[ReliabilityPolicy] = None,
    ):
        self.group = group
        self.rendezvous = rendezvous
        self.peer_name = peer_name
        self.default_ttl = default_ttl
        #: binding-wide reliability default: pipes are fire-and-forget, so
        #: lapsed attempt timers retransmit the same MessageID (provider
        #: dedup makes that safe).  Acks stay opt-in — use
        #: ``ReliabilityPolicy.assured()`` for the full WS-RM-lite bundle.
        self.reliability = (
            reliability if reliability is not None
            else ReliabilityPolicy.p2ps_default()
        )

    def ensure_peer(self, wspeer: "WSPeer") -> Peer:
        if wspeer.peer is None:
            peer = Peer(
                wspeer.node,
                name=self.peer_name or wspeer.name,
                rendezvous=self.rendezvous,
                default_ttl=self.default_ttl,
            )
            peer.join(self.group)
            wspeer.peer = peer
        return wspeer.peer

    def make_deployer(self, wspeer: "WSPeer") -> ServiceDeployer:
        return P2psServiceDeployer(
            self.ensure_peer(wspeer), wspeer.server.container, parent=wspeer.server
        )

    def make_publisher(self, wspeer: "WSPeer", deployer: ServiceDeployer) -> ServicePublisher:
        if not isinstance(deployer, P2psServiceDeployer):
            raise TypeError("P2PS publisher requires a P2PS deployer for its adverts")
        return P2psServicePublisher(
            self.ensure_peer(wspeer), deployer, parent=wspeer.server
        )

    def make_locator(self, wspeer: "WSPeer") -> ServiceLocator:
        return P2psServiceLocator(self.ensure_peer(wspeer), parent=wspeer.client)

    def make_invocation(self, wspeer: "WSPeer") -> Invocation:
        return P2psInvocation(
            self.ensure_peer(wspeer), parent=wspeer.client,
            default_policy=self.reliability,
        )
