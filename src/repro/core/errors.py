"""WSPeer-level error types."""


class WsPeerError(Exception):
    """Base class for WSPeer errors."""


class DeploymentError(WsPeerError):
    """A service could not be deployed or undeployed."""


class DiscoveryError(WsPeerError):
    """A locate operation failed (registry unreachable, no match, ...)."""


class InvocationError(WsPeerError):
    """An invocation failed at the WSPeer level (transport errors and
    SOAP faults surface as their own types)."""
