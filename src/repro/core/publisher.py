"""ServicePublishers: make deployed services findable.

"Publishing the service involves making the service endpoint and/or its
interface description available to the network in some way" (§III).

:class:`UddiServicePublisher`
    Registers the service, its access point, and the WSDL location in a
    UDDI registry — mirroring the client-side UDDI locator (§IV-A).
:class:`P2psServicePublisher`
    Broadcasts the ServiceAdvertisement assembled at deployment into
    the peer group (§IV-B).
"""

from __future__ import annotations

from typing import Optional

from repro.core.deployer import P2psServiceDeployer
from repro.core.errors import DeploymentError
from repro.core.events import EventSource
from repro.core.hosting import DeployedService
from repro.p2ps.peer import Peer
from repro.simnet.network import Node
from repro.transport.base import TransportError
from repro.uddi.client import UddiClient


class ServicePublisher(EventSource):
    """Base publisher node of the interface tree."""

    def __init__(self, clock, parent: Optional[EventSource] = None):
        super().__init__("publisher", parent)
        self._clock = clock

    def _now(self) -> float:
        return self._clock()

    def publish(self, deployed: DeployedService, **kwargs) -> None:  # pragma: no cover
        raise NotImplementedError


class UddiServicePublisher(ServicePublisher):
    """Publishes endpoint + WSDL URL to a UDDI registry."""

    def __init__(
        self,
        node: Node,
        registry_uri: str,
        business_name: str = "WSPeer",
        parent: Optional[EventSource] = None,
        timeout: float = 30.0,
    ):
        super().__init__(lambda: node.network.kernel.now, parent)
        self.node = node
        self.business_name = business_name
        self.uddi = UddiClient(node, registry_uri, timeout)

    def publish(
        self,
        deployed: DeployedService,
        categories: Optional[list[dict]] = None,
        description: str = "",
        **kwargs,
    ) -> None:
        http_endpoint = next(
            (e for e in deployed.endpoints if e.address.startswith(("http://", "httpg://"))),
            None,
        )
        if http_endpoint is None:
            raise DeploymentError(
                f"service {deployed.name!r} has no HTTP endpoint to publish to UDDI"
            )
        wsdl_url = http_endpoint.address + ".wsdl"
        try:
            self.uddi.publish_service(
                self.business_name,
                deployed.name,
                http_endpoint.address,
                wsdl_url=wsdl_url,
                description=description,
                categories=categories,
            )
        except TransportError as exc:
            self.fire_publish("publish-failed", service=deployed.name, reason=str(exc))
            raise DeploymentError(f"UDDI publication failed: {exc}") from exc
        self.fire_publish(
            "published", service=deployed.name, via="uddi",
            access_point=http_endpoint.address, wsdl=wsdl_url,
        )

    def withdraw(self, deployed: DeployedService) -> None:
        for service in self.uddi.find_services(deployed.name):
            self.uddi.call("delete_service", service_key=service.key)
        self.fire_publish("withdrawn", service=deployed.name, via="uddi")


class P2psServicePublisher(ServicePublisher):
    """Broadcasts the service advertisement into the peer group."""

    def __init__(
        self,
        peer: Peer,
        deployer: P2psServiceDeployer,
        parent: Optional[EventSource] = None,
    ):
        super().__init__(lambda: peer.network.kernel.now, parent)
        self.peer = peer
        self.deployer = deployer

    def publish(self, deployed: DeployedService, **kwargs) -> None:
        advert = self.deployer.advert_for(deployed.name)
        self.peer.publish(advert)
        self.fire_publish(
            "published", service=deployed.name, via="p2ps",
            advert=advert.key(), pipes=len(advert.pipes),
        )

    def withdraw(self, deployed: DeployedService) -> None:
        advert = self.deployer.adverts.get(deployed.name)
        if advert is not None:
            self.peer.cache.remove(advert.key())
        self.fire_publish("withdrawn", service=deployed.name, via="p2ps")
