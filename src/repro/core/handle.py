"""ServiceHandle — the WSPeer-side view of a located service.

"The application code deals with WSPeer data structures, not those that
are transmitted over the wire, so the application does not have to care
where or how the service has been located, or what its definition looks
like" (§III).  A handle bundles everything the client side needs to
invoke: the parsed WSDL, one or more addressable endpoints, and where
it came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.wsa.epr import EndpointReference
from repro.wsdl.model import WsdlDefinition


@dataclass
class ServiceHandle:
    """A located (or locally deployed) service, ready to invoke."""

    name: str
    wsdl: WsdlDefinition
    endpoints: list[EndpointReference] = field(default_factory=list)
    source: str = "local"  # 'uddi' | 'p2ps' | 'local'
    attributes: dict[str, str] = field(default_factory=dict)

    @property
    def namespace(self) -> str:
        return self.wsdl.target_namespace

    def endpoint_for_scheme(self, scheme: str) -> Optional[EndpointReference]:
        """First endpoint whose address uses *scheme* (e.g. 'http', 'p2ps')."""
        prefix = scheme + "://"
        for epr in self.endpoints:
            if epr.address.startswith(prefix):
                return epr
        return None

    @property
    def schemes(self) -> list[str]:
        out = []
        for epr in self.endpoints:
            scheme = epr.address.split("://", 1)[0]
            if scheme not in out:
                out.append(scheme)
        return out

    def operation_names(self) -> list[str]:
        names: list[str] = []
        for port_type in self.wsdl.port_types.values():
            names.extend(op.name for op in port_type.operations)
        return sorted(set(names))

    def __repr__(self) -> str:
        return (
            f"<ServiceHandle {self.name} via {self.source} "
            f"endpoints={[e.address for e in self.endpoints]}>"
        )
