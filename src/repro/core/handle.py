"""ServiceHandle — the WSPeer-side view of a located service.

"The application code deals with WSPeer data structures, not those that
are transmitted over the wire, so the application does not have to care
where or how the service has been located, or what its definition looks
like" (§III).  A handle bundles everything the client side needs to
invoke: the parsed WSDL, one or more addressable endpoints, and where
it came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.wsa.epr import EndpointReference
from repro.wsdl.model import WsdlDefinition


@dataclass
class ServiceHandle:
    """A located (or locally deployed) service, ready to invoke."""

    name: str
    wsdl: WsdlDefinition
    endpoints: list[EndpointReference] = field(default_factory=list)
    source: str = "local"  # 'uddi' | 'p2ps' | 'local'
    attributes: dict[str, str] = field(default_factory=dict)

    @property
    def namespace(self) -> str:
        return self.wsdl.target_namespace

    def endpoints_for_scheme(self, scheme: str) -> list[EndpointReference]:
        """Every endpoint whose address uses *scheme*, in a deterministic
        order (sorted by address).

        Failover ranking iterates this, so the iteration order must be
        stable across runs and across peers that assembled the same
        handle from differently-ordered discovery responses.
        """
        prefix = scheme + "://"
        return sorted(
            (epr for epr in self.endpoints if epr.address.startswith(prefix)),
            key=lambda epr: epr.address,
        )

    def endpoint_for_scheme(self, scheme: str) -> Optional[EndpointReference]:
        """Deterministically-first endpoint of *scheme* (e.g. 'http')."""
        eprs = self.endpoints_for_scheme(scheme)
        return eprs[0] if eprs else None

    def drop_endpoint(self, address: str) -> bool:
        """Remove the endpoint at *address*; True if one was dropped.

        Supervision calls this when an endpoint is declared dead, so a
        shared handle stops steering new invocations at a poisoned EPR.
        """
        before = len(self.endpoints)
        self.endpoints = [e for e in self.endpoints if e.address != address]
        return len(self.endpoints) != before

    @property
    def schemes(self) -> list[str]:
        out = []
        for epr in self.endpoints:
            scheme = epr.address.split("://", 1)[0]
            if scheme not in out:
                out.append(scheme)
        return out

    def operation_names(self) -> list[str]:
        names: list[str] = []
        for port_type in self.wsdl.port_types.values():
            names.extend(op.name for op in port_type.operations)
        return sorted(set(names))

    def __repr__(self) -> str:
        return (
            f"<ServiceHandle {self.name} via {self.source} "
            f"endpoints={[e.address for e in self.endpoints]}>"
        )
