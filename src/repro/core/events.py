"""The WSPeer event model.

The paper's interface listing (§III)::

    public interface PeerMessageListener {
        messageReceived(DiscoveryMessageEvent evt);
        messageReceived(PublishMessageEvent evt);
        messageReceived(ClientMessageEvent evt);
        messageReceived(ServerMessageEvent evt);
        messageReceived(DeploymentMessageEvent evt);
    }

Python has no overloads, so :class:`PeerMessageListener` exposes one
``message_received`` dispatcher plus five overridable per-family
methods.  "Nodes in the tree create implementations of their child
nodes, register themselves as listeners to them, and receive
notification of events fired by them ... All events are propagated
upwards to the root of the interface tree."  :class:`EventSource`
implements exactly that: fire locally, then forward to the parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class PeerEvent:
    """Base event: what happened, where, when (virtual time)."""

    kind: str
    time: float
    source: str  # name of the tree node that fired it
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass
class DiscoveryMessageEvent(PeerEvent):
    """Fired by ServiceLocators: query issued / service found / failed."""


@dataclass
class PublishMessageEvent(PeerEvent):
    """Fired by ServicePublishers: service published / withdrawn."""


@dataclass
class ClientMessageEvent(PeerEvent):
    """Fired by Invocations: request sent / response received / fault."""


@dataclass
class ServerMessageEvent(PeerEvent):
    """Fired server-side: request received / response sent — either side
    of the messaging engine, which is the hook that lets the application
    act as its own container."""


@dataclass
class DeploymentMessageEvent(PeerEvent):
    """Fired by ServiceDeployers: service deployed / undeployed."""


class PeerMessageListener:
    """Application-facing listener; override the families you care about."""

    def message_received(self, event: PeerEvent) -> None:
        """Dispatches to the per-family methods; usually not overridden."""
        if isinstance(event, DiscoveryMessageEvent):
            self.on_discovery_message(event)
        elif isinstance(event, PublishMessageEvent):
            self.on_publish_message(event)
        elif isinstance(event, ClientMessageEvent):
            self.on_client_message(event)
        elif isinstance(event, ServerMessageEvent):
            self.on_server_message(event)
        elif isinstance(event, DeploymentMessageEvent):
            self.on_deployment_message(event)

    def on_discovery_message(self, event: DiscoveryMessageEvent) -> None: ...

    def on_publish_message(self, event: PublishMessageEvent) -> None: ...

    def on_client_message(self, event: ClientMessageEvent) -> None: ...

    def on_server_message(self, event: ServerMessageEvent) -> None: ...

    def on_deployment_message(self, event: DeploymentMessageEvent) -> None: ...


class RecordingListener(PeerMessageListener):
    """Test/diagnostic helper: keeps every event it hears."""

    def __init__(self) -> None:
        self.events: list[PeerEvent] = []

    def message_received(self, event: PeerEvent) -> None:
        self.events.append(event)
        super().message_received(event)

    def of_kind(self, kind: str) -> list[PeerEvent]:
        return [e for e in self.events if e.kind == kind]

    def kinds(self) -> list[str]:
        return [e.kind for e in self.events]


class EventSource:
    """A node of the interface tree: fires events, propagates upward."""

    def __init__(self, node_name: str, parent: Optional["EventSource"] = None):
        self.node_name = node_name
        self.parent = parent
        self._listeners: list[PeerMessageListener] = []

    def add_listener(self, listener: PeerMessageListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: PeerMessageListener) -> None:
        self._listeners.remove(listener)

    def fire(self, event: PeerEvent) -> None:
        """Notify local listeners then propagate to the parent."""
        for listener in list(self._listeners):
            listener.message_received(event)
        if self.parent is not None:
            self.parent.fire(event)

    # -- event construction helpers -------------------------------------------
    def _now(self) -> float:
        return 0.0  # overridden by nodes that know the kernel

    def fire_discovery(self, kind: str, **detail: Any) -> None:
        self.fire(DiscoveryMessageEvent(kind, self._now(), self.node_name, detail))

    def fire_publish(self, kind: str, **detail: Any) -> None:
        self.fire(PublishMessageEvent(kind, self._now(), self.node_name, detail))

    def fire_client(self, kind: str, **detail: Any) -> None:
        self.fire(ClientMessageEvent(kind, self._now(), self.node_name, detail))

    def fire_server(self, kind: str, **detail: Any) -> None:
        self.fire(ServerMessageEvent(kind, self._now(), self.node_name, detail))

    def fire_deployment(self, kind: str, **detail: Any) -> None:
        self.fire(DeploymentMessageEvent(kind, self._now(), self.node_name, detail))
