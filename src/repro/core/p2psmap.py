"""The PipeAdvertisement ⇄ EndpointReference mapping (§IV-B).

The paper's serialisation rules, implemented verbatim:

1. The EPR ``Address`` is ``p2ps://<peer-id>/<service-name>`` — peer id
   plus the name of the ServiceAdvertisement the pipe belongs to; for a
   pipe with no service (a reply channel) just ``p2ps://<peer-id>``.
2. The EPR ``ReferenceProperties`` carry the other advert fields,
   including the pipe name (and id/type, which the advert needs to be
   reconstructible).
3. On a SOAP invocation, ``To`` ← the Address URI and ``Action`` ← the
   Address URI plus a fragment naming the pipe; the
   ReferenceProperties are copied directly into the SOAP header.
"""

from __future__ import annotations

from repro.p2ps.advertisements import AdvertError, PipeAdvertisement
from repro.wsa.epr import EndpointReference, WsaError
from repro.wsa.p2psuri import make_p2ps_uri, parse_p2ps_uri
from repro.xmlkit import Element, QName, ns


def _q(local: str) -> QName:
    return QName(ns.P2PS, local, "p2ps")


def epr_from_pipe(advert: PipeAdvertisement) -> EndpointReference:
    """Serialise a pipe advertisement to an EndpointReference."""
    address = make_p2ps_uri(advert.peer_id, advert.service_name)
    properties = [
        Element(_q("PipeId"), text=advert.pipe_id, nsdecls={"p2ps": ns.P2PS}),
        Element(_q("PipeName"), text=advert.name, nsdecls={"p2ps": ns.P2PS}),
        Element(_q("PipeType"), text=advert.pipe_type, nsdecls={"p2ps": ns.P2PS}),
    ]
    return EndpointReference(address, properties)


def pipe_from_epr(epr: EndpointReference) -> PipeAdvertisement:
    """Reconstruct the pipe advertisement from an EndpointReference."""
    address = parse_p2ps_uri(epr.address)
    pipe_id = epr.property_text("PipeId")
    pipe_name = epr.property_text("PipeName")
    pipe_type = epr.property_text("PipeType", "input")
    if not pipe_id:
        raise WsaError(f"EPR {epr.address} carries no PipeId reference property")
    try:
        return PipeAdvertisement(
            pipe_id, pipe_name, address.peer_id, pipe_type, address.service_name
        )
    except AdvertError as exc:
        raise WsaError(f"EPR does not map to a pipe: {exc}") from exc


def action_for_pipe(advert: PipeAdvertisement) -> str:
    """The wsa:Action for invoking down *advert*: address + #pipe-name."""
    return make_p2ps_uri(advert.peer_id, advert.service_name, advert.name)
