"""ServiceDeployers: make a deployed service addressable on a network.

"On the server side, deploying a service involves taking a code source,
generating a service interface description from it ..., and creating an
addressable endpoint which can be used to connect to the source" (§III).
The container does the first two; deployers do the third:

:class:`HttpServiceDeployer`
    Launches an HTTP server *on first deploy* ("the HTTP server is only
    launched once the application has deployed a service", §IV-A),
    routes ``/services/<Name>`` for SOAP POSTs and
    ``/services/<Name>.wsdl`` for interface retrieval, and supports the
    application-interception option through the container.
:class:`P2psServiceDeployer`
    Creates one input pipe per operation plus the *definition pipe*
    (§IV-B), wires the provider-side request/response flow of Fig. 6,
    and assembles the ServiceAdvertisement for publication.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import DeploymentError
from repro.core.events import EventSource
from repro.core.hosting import DeployedService, LightweightContainer
from repro.core.p2psmap import epr_from_pipe, pipe_from_epr
from repro.observability import metrics as obs_metrics
from repro.p2ps.advertisements import ServiceAdvertisement
from repro.p2ps.peer import Peer
from repro.p2ps.pipes import PipeError, ResolutionError
from repro.reliability import DedupWindow, ack_requested, build_ack
from repro.simnet.network import NetworkError, Node
from repro.soap.attachments import MULTIPART_CONTENT_TYPE
from repro.soap.envelope import SoapEnvelope
from repro.soap.faults import is_transient_fault_element
from repro.transport.http import DEFAULT_HTTP_PORT, HttpRequest, HttpResponse, HttpServer
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageAddressingProperties
from repro.wsa.p2psuri import make_p2ps_uri
from repro.wsdl.model import SOAP_P2PS_TRANSPORT

DEFINITION_PIPE_NAME = "definition"


class ServiceDeployer(EventSource):
    """Base deployer: subclasses open endpoints for deployed services."""

    def __init__(self, container: LightweightContainer, parent: Optional[EventSource] = None):
        super().__init__("deployer", parent)
        self.container = container

    def _now(self) -> float:
        return self.container._now()

    def deploy(self, deployed: DeployedService) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def undeploy(self, deployed: DeployedService) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class HttpServiceDeployer(ServiceDeployer):
    """SOAP-over-HTTP endpoints under ``/services/``."""

    def __init__(
        self,
        node: Node,
        container: LightweightContainer,
        port: int = DEFAULT_HTTP_PORT,
        parent: Optional[EventSource] = None,
    ):
        super().__init__(container, parent)
        self.node = node
        self.port = port
        self.server = HttpServer(node, port)

    def service_path(self, name: str) -> str:
        return f"/services/{name}"

    def endpoint_uri(self, name: str) -> str:
        return f"http://{self.node.id}:{self.port}{self.service_path(name)}"

    def wsdl_uri(self, name: str) -> str:
        return self.endpoint_uri(name) + ".wsdl"

    def deploy(self, deployed: DeployedService) -> None:
        name = deployed.name
        if not self.server.started:
            self.server.start()  # launched only now — no standing container
            self.fire_deployment("http-server-launched", node=self.node.id, port=self.port)

        def soap_route(request: HttpRequest) -> HttpResponse:
            envelope = SoapEnvelope.from_wire_message(request.body)
            response = self.container.process_request(name, envelope)
            status = 500 if response.is_fault else 200
            wire = response.to_wire_message()
            if isinstance(wire, bytes):
                return HttpResponse(status, wire, {"Content-Type": MULTIPART_CONTENT_TYPE})
            return HttpResponse(status, wire)

        def wsdl_route(request: HttpRequest) -> HttpResponse:
            return HttpResponse(
                200, deployed.wsdl().to_wire(), {"Content-Type": "text/xml"}
            )

        self.server.add_route(self.service_path(name), soap_route)
        self.server.add_route(self.service_path(name) + ".wsdl", wsdl_route)
        deployed.add_endpoint(
            EndpointReference(self.endpoint_uri(name)), port_name=f"{name}HttpPort"
        )
        self.fire_deployment("endpoint-opened", service=name, address=self.endpoint_uri(name))

    def undeploy(self, deployed: DeployedService) -> None:
        name = deployed.name
        self.server.remove_route(self.service_path(name))
        self.server.remove_route(self.service_path(name) + ".wsdl")
        self.fire_deployment("endpoint-closed", service=name)
        if not self.server.routes:
            self.server.stop()
            self.fire_deployment("http-server-stopped", node=self.node.id)


class P2psServiceDeployer(ServiceDeployer):
    """SOAP-over-pipes endpoints: one pipe per operation + definition pipe."""

    #: retained responses for duplicate suppression (per deployer)
    RESPONSE_CACHE_LIMIT = 256

    def __init__(
        self,
        peer: Peer,
        container: LightweightContainer,
        parent: Optional[EventSource] = None,
    ):
        super().__init__(container, parent)
        self.peer = peer
        self.adverts: dict[str, ServiceAdvertisement] = {}
        self._pipe_ids: dict[str, list[str]] = {}
        # message-id -> response wire text: retransmitted requests are
        # answered from here instead of re-executing the operation
        self._response_cache = DedupWindow(
            max_entries=self.RESPONSE_CACHE_LIMIT,
            clock=lambda: peer.network.kernel.now,
        )
        self.duplicates_suppressed = 0

    def deploy(self, deployed: DeployedService) -> None:
        name = deployed.name
        deployed.transport = SOAP_P2PS_TRANSPORT
        pipe_ids: list[str] = []

        for op_name in deployed.service.operation_names:
            _, advert = self.peer.create_input_pipe(
                op_name,
                service_name=name,
                listener=self._make_invoke_listener(deployed),
            )
            pipe_ids.append(advert.pipe_id)
            deployed.add_endpoint(epr_from_pipe(advert), port_name=f"{name}-{op_name}")

        _, def_advert = self.peer.create_input_pipe(
            DEFINITION_PIPE_NAME,
            service_name=name,
            listener=self._make_definition_listener(deployed),
        )
        pipe_ids.append(def_advert.pipe_id)

        advert = ServiceAdvertisement(
            name,
            self.peer.id,
            pipes=[
                self.peer.cache.get(f"pipe:{pid}")  # type: ignore[misc]
                for pid in pipe_ids
            ],
            definition_pipe=DEFINITION_PIPE_NAME,
            attributes={"namespace": deployed.namespace},
        )
        self.adverts[name] = advert
        self._pipe_ids[name] = pipe_ids
        self.fire_deployment(
            "pipes-opened", service=name, pipes=len(pipe_ids),
            address=make_p2ps_uri(self.peer.id, name),
        )

    def undeploy(self, deployed: DeployedService) -> None:
        name = deployed.name
        for pipe_id in self._pipe_ids.pop(name, []):
            self.peer.close_input_pipe(pipe_id)
        self.adverts.pop(name, None)
        self.fire_deployment("pipes-closed", service=name)

    def advert_for(self, name: str) -> ServiceAdvertisement:
        advert = self.adverts.get(name)
        if advert is None:
            raise DeploymentError(f"service {name!r} is not deployed over P2PS")
        return advert

    # ------------------------------------------------------------------
    # provider-side flows (Fig. 6)
    # ------------------------------------------------------------------
    def _remember(self, message_id: str, wire) -> None:
        """Retain *wire* for duplicate suppression, honouring the
        (test-adjustable) ``RESPONSE_CACHE_LIMIT``."""
        self._response_cache.max_entries = self.RESPONSE_CACHE_LIMIT
        self._response_cache.remember(message_id, wire)

    def _send_ack(
        self, deployed: DeployedService, maps: MessageAddressingProperties
    ) -> None:
        """Answer receipt of *maps.message_id* down the sender's ack pipe."""
        ack = build_ack(maps.message_id, maps.reply_to.address)
        try:
            reply_advert = pipe_from_epr(maps.reply_to)
            out_pipe = self.peer.open_output_pipe(reply_advert)
            self.peer.send_down_pipe(out_pipe, ack.to_wire())
        except Exception as exc:  # noqa: BLE001 - ack delivery best-effort
            self.fire_server(
                "ack-undeliverable", service=deployed.name, reason=str(exc)
            )
            return
        self.fire_server(
            "ack-sent", service=deployed.name, message_id=maps.message_id
        )

    def _make_invoke_listener(self, deployed: DeployedService):
        def on_request(payload, meta: dict) -> None:
            # 1. Retrieve SOAP request from pipe.  Garbage from hostile
            # or broken peers must never crash the provider: it is
            # dropped with a server event.  The payload may be text or
            # a multipart byte wire carrying attachments (E16).
            try:
                request = SoapEnvelope.from_wire_message(payload)
            except Exception as exc:  # noqa: BLE001 - wire boundary
                self.fire_server(
                    "malformed-request", service=deployed.name, reason=str(exc)
                )
                return
            try:
                maps = MessageAddressingProperties.extract_from(request)
            except Exception:
                maps = None
            wants_ack = (
                maps is not None
                and maps.message_id is not None
                and maps.reply_to is not None
                and ack_requested(request)
            )
            # retransmission handling: a MessageID seen before is not
            # re-executed; the retained response (or, for ack-requested
            # one-ways, a fresh ack) is re-sent instead — at-most-once
            # execution under client retries
            if maps is not None and maps.message_id in self._response_cache:
                self.duplicates_suppressed += 1
                obs_metrics.inc("server.duplicates_suppressed")
                self.fire_server(
                    "duplicate-suppressed",
                    service=deployed.name,
                    message_id=maps.message_id,
                )
                if wants_ack:
                    self._send_ack(deployed, maps)
                elif maps.reply_to is not None:
                    retained = self._response_cache.get(maps.message_id)
                    if retained is not None:
                        try:
                            reply_advert = pipe_from_epr(maps.reply_to)
                            out_pipe = self.peer.open_output_pipe(reply_advert)
                            self.peer.send_down_pipe(out_pipe, retained)
                        except Exception:  # noqa: BLE001
                            pass
                return
            # WS-RM-lite: acknowledge *receipt* before execution, then
            # treat the request as one-way (the ack is the only return
            # traffic; results are not streamed back)
            if wants_ack:
                self._send_ack(deployed, maps)
                self._remember(maps.message_id, None)
                self.container.process_request(deployed.name, request)
                return
            # 3. Process request
            response = self.container.process_request(deployed.name, request)
            # 2/4. Retrieve the ReplyTo endpoint reference and convert it
            #      to a pipe advertisement; request the return pipe
            if maps is None or maps.reply_to is None:
                return  # one-way invocation: nothing to return
            try:
                reply_advert = pipe_from_epr(maps.reply_to)
                out_pipe = self.peer.open_output_pipe(reply_advert)
            except Exception as exc:  # noqa: BLE001 - engine boundary
                self.fire_server(
                    "reply-undeliverable", service=deployed.name, reason=str(exc)
                )
                return
            # correlate and send the response down the return pipe (5/6)
            reply_maps = MessageAddressingProperties(
                to=maps.reply_to.address,
                action=f"{maps.action}Response" if maps.action else maps.reply_to.address,
                relates_to=maps.message_id,
            )
            reply_maps.apply_to(response)
            # responses with attachments ride the same dedup cache as
            # text: the retained multipart bytes replay byte-identically
            wire = response.to_wire_message()
            if maps.message_id and not (
                response.body_content is not None
                and is_transient_fault_element(response.body_content)
            ):
                # busy/lag answers are provider-state, not results: a
                # retransmission must get a fresh admission (or
                # catch-up) decision, not a cached fault
                self._remember(maps.message_id, wire)
            try:
                self.peer.send_down_pipe(out_pipe, wire)
            except (PipeError, NetworkError) as exc:
                # NetworkError covers the node dying mid-dispatch (a
                # crash injected while processing): the reply is lost
                # on the wire, visibly
                self.fire_server(
                    "reply-undeliverable", service=deployed.name, reason=str(exc)
                )

        return on_request

    def _make_definition_listener(self, deployed: DeployedService):
        def on_definition_request(payload, meta: dict) -> None:
            # definition pipe protocol: a SOAP request whose ReplyTo names
            # the pipe to stream the WSDL text back down
            try:
                request = SoapEnvelope.from_wire_message(payload)
                maps = MessageAddressingProperties.extract_from(request)
            except Exception:
                return
            if maps.reply_to is None:
                return
            try:
                reply_advert = pipe_from_epr(maps.reply_to)
                out_pipe = self.peer.open_output_pipe(reply_advert)
                self.peer.send_down_pipe(out_pipe, deployed.wsdl().to_wire())
            except (ResolutionError, PipeError):
                pass

        return on_definition_request


class HttpgServiceDeployer(ServiceDeployer):
    """Authenticated SOAP endpoints (the Globus HTTPG transport, §IV-A).

    Identical shape to :class:`HttpServiceDeployer` but every request
    must present a CA-verified credential before the container sees it;
    the WSDL route is protected the same way.
    """

    def __init__(
        self,
        node: Node,
        container: LightweightContainer,
        transport,  # HttpgTransport, typed loosely to avoid import cycle
        port: int = 8443,
        parent: Optional[EventSource] = None,
    ):
        super().__init__(container, parent)
        self.node = node
        self.port = port
        self.transport = transport

    def endpoint_uri(self, name: str) -> str:
        return f"httpg://{self.node.id}:{self.port}/services/{name}"

    def deploy(self, deployed: DeployedService) -> None:
        from repro.transport.uri import Uri
        from repro.wsdl.model import SOAP_HTTPG_TRANSPORT

        name = deployed.name
        deployed.transport = SOAP_HTTPG_TRANSPORT

        def soap_handler(body, headers: dict) -> tuple:
            envelope = SoapEnvelope.from_wire_message(body)
            response = self.container.process_request(name, envelope)
            out_headers = {"X-Status": "500"} if response.is_fault else {}
            wire = response.to_wire_message()
            if isinstance(wire, bytes):
                out_headers["Content-Type"] = MULTIPART_CONTENT_TYPE
            return wire, out_headers

        def wsdl_handler(body: str, headers: dict) -> tuple[str, dict]:
            return deployed.wsdl().to_wire(), {"Content-Type": "text/xml"}

        self.transport.listen(Uri.parse(self.endpoint_uri(name)), soap_handler)
        self.transport.listen(Uri.parse(self.endpoint_uri(name) + ".wsdl"), wsdl_handler)
        deployed.add_endpoint(
            EndpointReference(self.endpoint_uri(name)), port_name=f"{name}HttpgPort"
        )
        self.fire_deployment(
            "endpoint-opened", service=name, address=self.endpoint_uri(name),
            authenticated=True,
        )

    def undeploy(self, deployed: DeployedService) -> None:
        from repro.transport.uri import Uri

        name = deployed.name
        self.transport.stop_listening(Uri.parse(self.endpoint_uri(name)))
        self.transport.stop_listening(Uri.parse(self.endpoint_uri(name) + ".wsdl"))
        self.fire_deployment("endpoint-closed", service=name)
