"""Invocations: the client side of the exchange.

"Although WSPeer allows synchronous discovery and invocation, it is
essentially an asynchronous, event driven system in which components
subscribe to events and are notified when and if responses are returned
from remote services" (§III).  Both invocation classes are async at the
core — ``invoke_async`` with a completion callback — and synchronous
``invoke`` pumps the simulation kernel until the callback fires, exactly
how HTTP's held-open connection behaves.

:class:`HttpInvocation`
    SOAP POST to an ``http://`` (or, with an :class:`HttpgTransport`
    supplied, ``httpg://``) endpoint.
:class:`P2psInvocation`
    The consumer flow of Fig. 5: create a reply pipe, serialise its
    advert into a WS-Addressing ``ReplyTo``, listen, send the request
    down the provider's operation pipe, and complete when the response
    frame lands on the reply pipe.

Both consult the :mod:`repro.reliability` subsystem: every entry point
accepts a :class:`~repro.reliability.ReliabilityPolicy` (or inherits
the node's ``default_policy``, installed by the binding) that turns one
attempt into a retry schedule with deadline budgets, feeds per-endpoint
circuit breakers, and — for one-way pipe sends — requests explicit
acknowledgement frames.  Retries reuse the original ``wsa:MessageID``
so provider-side dedup windows keep execution at-most-once.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.errors import InvocationError
from repro.core.events import EventSource
from repro.observability import metrics as obs_metrics
from repro.core.handle import ServiceHandle
from repro.core.p2psmap import action_for_pipe, epr_from_pipe, pipe_from_epr
from repro.p2ps.peer import Peer
from repro.p2ps.pipes import PipeError
from repro.reliability import (
    CircuitBreakerRegistry,
    CircuitOpenError,
    DeadlineExceededError,
    OnewayStatus,
    ReliabilityPolicy,
    ReliableCall,
    ack_relates_to,
    is_ack,
    mark_ack_requested,
)
from repro.observability.tracecontext import (
    begin_send as trace_begin_send,
    event_fields as trace_event_fields,
)
from repro.simnet.kernel import SimTimeoutError
from repro.simnet.network import Node
from repro.soap.attachments import MULTIPART_CONTENT_TYPE
from repro.soap.encoding import StructRegistry
from repro.soap.envelope import SoapEnvelope
from repro.soap.rpc import build_rpc_request, extract_rpc_result
from repro.soap.stubs import DynamicStubBuilder
from repro.transport.base import Transport
from repro.transport.http import HttpTransport
from repro.transport.uri import parse_uri_cached
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import (
    MessageAddressingProperties,
    new_message_id,
    request_templates,
)
from repro.wsdl.stubspec import stub_spec_cached

#: Completion callback: (result, error) — exactly one is non-None,
#: except for void results where both may be None.
InvokeCallback = Callable[[Any, Optional[Exception]], None]


class Invocation(EventSource):
    """Base invocation node of the interface tree."""

    def __init__(
        self,
        clock,
        parent: Optional[EventSource] = None,
        default_policy: Optional[ReliabilityPolicy] = None,
    ):
        super().__init__("invocation", parent)
        self._clock = clock
        self.registry = StructRegistry()
        #: binding-supplied reliability defaults; an explicit ``policy=``
        #: argument on any call overrides this.
        self.default_policy = default_policy
        self._breakers: Optional[CircuitBreakerRegistry] = None

    def _now(self) -> float:
        return self._clock()

    # -- reliability -------------------------------------------------------
    @property
    def breakers(self) -> CircuitBreakerRegistry:
        """Per-endpoint circuit breakers shared by this node's calls."""
        if self._breakers is None:
            self._breakers = CircuitBreakerRegistry(
                clock=self._clock, on_transition=self._on_breaker_transition
            )
        return self._breakers

    def _on_breaker_transition(self, endpoint: str, old: str, new: str) -> None:
        obs_metrics.inc("breaker.transitions." + new)
        self.fire_client(f"circuit-{new}", endpoint=endpoint, previous=old)

    def _effective_policy(
        self, policy: Optional[ReliabilityPolicy]
    ) -> Optional[ReliabilityPolicy]:
        return policy if policy is not None else self.default_policy

    def _breaker_for(self, policy: Optional[ReliabilityPolicy], endpoint: str):
        if policy is None or policy.breaker is None:
            return None
        return self.breakers.for_endpoint(endpoint, policy.breaker)

    # -- abstract -------------------------------------------------------------
    def invoke_async(
        self,
        handle: ServiceHandle,
        operation: str,
        args: dict[str, Any],
        callback: InvokeCallback,
        timeout: Optional[float] = None,
        policy: Optional[ReliabilityPolicy] = None,
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- shared ------------------------------------------------------------
    def _kernel(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def invoke(
        self,
        handle: ServiceHandle,
        operation: str,
        args: Optional[dict[str, Any]] = None,
        timeout: Optional[float] = 30.0,
        policy: Optional[ReliabilityPolicy] = None,
        **kwargs: Any,
    ) -> Any:
        """Synchronous invocation: pump virtual time until completion."""
        all_args = dict(args or {})
        all_args.update(kwargs)
        box: dict[str, Any] = {}

        def callback(result: Any, error: Optional[Exception]) -> None:
            box["result"] = result
            box["error"] = error

        self.invoke_async(handle, operation, all_args, callback, timeout, policy=policy)
        try:
            self._kernel().pump_until(lambda: "result" in box or "error" in box)
        except SimTimeoutError as exc:
            raise InvocationError(f"invocation of {operation!r} never completed") from exc
        if box.get("error") is not None:
            raise box["error"]
        return box.get("result")

    def invoke_oneway(
        self,
        handle: ServiceHandle,
        operation: str,
        args: Optional[dict[str, Any]] = None,
        policy: Optional[ReliabilityPolicy] = None,
        timeout: Optional[float] = None,
        **kwargs: Any,
    ) -> Optional[OnewayStatus]:
        """Notification-style invocation: send and do not wait.

        Default implementation dispatches asynchronously and discards
        the completion; transports with genuinely one-way wires (P2PS
        pipes) override this to skip creating a reply channel at all —
        unless the reliability policy requests acknowledgements, in
        which case an ack pipe is opened and an :class:`OnewayStatus`
        is returned for callers who care whether delivery happened.
        """
        all_args = dict(args or {})
        all_args.update(kwargs)
        self.invoke_async(
            handle, operation, all_args, lambda result, error: None,
            timeout, policy=policy,
        )
        return None

    def create_stub(
        self,
        handle: ServiceHandle,
        timeout: Optional[float] = 30.0,
        policy: Optional[ReliabilityPolicy] = None,
    ) -> Any:
        """Build a dynamic proxy whose methods invoke through this node.

        The WSPeer way: "generating stubs directly to bytes, bypassing
        source generation and compilation" (§IV-A).
        """
        spec = stub_spec_cached(handle.wsdl)

        def invoke_fn(op: str, args: dict[str, Any]) -> Any:
            return self.invoke(handle, op, args, timeout=timeout, policy=policy)

        return DynamicStubBuilder().build(spec, invoke_fn)


class HttpInvocation(Invocation):
    """SOAP over request/response transports (HTTP and HTTPG)."""

    def __init__(
        self,
        node: Node,
        parent: Optional[EventSource] = None,
        extra_transports: Optional[list[Transport]] = None,
        default_policy: Optional[ReliabilityPolicy] = None,
    ):
        super().__init__(
            lambda: node.network.kernel.now, parent, default_policy=default_policy
        )
        self.node = node
        self._transports: dict[str, Transport] = {"http": HttpTransport(node)}
        for transport in extra_transports or []:
            self._transports[transport.scheme] = transport

    def _kernel(self):
        return self.node.network.kernel

    def add_transport(self, transport: Transport) -> None:
        self._transports[transport.scheme] = transport

    def enable_http_keepalive(self, config=None):
        """Switch every poolable transport to persistent pooled
        connections (E11), sharing one pool across schemes.

        One connection cache per *node* — retries and failover hops
        issued through this invocation reuse the same warm connections
        instead of re-handshaking per attempt.  *config* may be a
        :class:`~repro.transport.connection.PoolConfig`, an existing
        pool, or None.  Returns the shared
        :class:`~repro.transport.connection.ConnectionPool`.
        """
        from repro.transport.connection import ConnectionPool

        pool = config if isinstance(config, ConnectionPool) else None
        for transport in self._transports.values():
            if not hasattr(transport, "enable_pooling"):
                continue
            pool = transport.enable_pooling(pool if pool is not None else config)
        if pool is None:
            raise InvocationError(
                f"no poolable transport among {sorted(self._transports)}"
            )
        return pool

    def invoke_async(
        self,
        handle: ServiceHandle,
        operation: str,
        args: dict[str, Any],
        callback: InvokeCallback,
        timeout: Optional[float] = None,
        policy: Optional[ReliabilityPolicy] = None,
        endpoint: Optional[EndpointReference] = None,
        message_id: Optional[str] = None,
    ) -> None:
        policy = self._effective_policy(policy)
        if endpoint is None:
            endpoint = self._pick_endpoint(handle)
        if endpoint is None:
            callback(
                None,
                InvocationError(
                    f"service {handle.name!r} has no endpoint for schemes "
                    f"{sorted(self._transports)}"
                ),
            )
            return
        uri = parse_uri_cached(endpoint.address)
        transport = self._transports.get(uri.scheme)
        if transport is None:
            callback(
                None,
                InvocationError(
                    f"no transport for scheme {uri.scheme!r} (endpoint "
                    f"{endpoint.address})"
                ),
            )
            return

        # One envelope for every attempt: retries reuse the MessageID so
        # the provider's dedup window suppresses duplicate execution.
        # A caller-supplied message_id extends the same guarantee across
        # endpoints — the failover executor keeps one identity per
        # logical call no matter where each attempt lands.
        maps = MessageAddressingProperties.for_request(endpoint, operation)
        if message_id is not None:
            maps.message_id = message_id
        # The trace context is captured when the wire is built, so every
        # retransmit of this attempt carries the same span identity; a
        # fresh request-sent (failover hop) mints a sibling span.
        trace_ctx = trace_begin_send()
        if trace_ctx is not None:
            maps.trace_context = trace_ctx.encoded()
        wire = request_templates.render(
            maps, handle.namespace, operation, args, target=endpoint
        )
        if wire is None:
            envelope = build_rpc_request(handle.namespace, operation, args, self.registry)
            maps.apply_to(envelope, target=endpoint)
            # attachments (E16) make this a multipart byte wire
            wire = envelope.to_wire_message()
        headers = {"SOAPAction": maps.action}
        if isinstance(wire, bytes):
            headers["Content-Type"] = MULTIPART_CONTENT_TYPE
        obs_metrics.inc("client.requests")
        started = self._now()
        self.fire_client(
            "request-sent",
            service=handle.name,
            operation=operation,
            endpoint=endpoint.address,
            message_id=maps.message_id,
            **trace_event_fields(trace_ctx),
        )

        def finish(result: Any, error: Optional[Exception]) -> None:
            if error is not None:
                obs_metrics.inc("client.failures")
                self.fire_client(
                    "invoke-failed", service=handle.name, operation=operation,
                    reason=str(error), message_id=maps.message_id,
                )
                callback(None, error)
                return
            obs_metrics.inc("client.responses")
            obs_metrics.observe("client.latency", self._now() - started)
            self.fire_client(
                "response-received", service=handle.name, operation=operation,
                message_id=maps.message_id,
            )
            callback(result, None)

        def decode(body) -> Any:
            response = SoapEnvelope.from_wire_message(body or "")
            return extract_rpc_result(response, self.registry)

        if policy is None:
            def on_response(body: Optional[str], error: Optional[Exception]) -> None:
                if error is not None:
                    finish(None, error)
                    return
                try:
                    result = decode(body)
                except Exception as exc:  # includes SoapFault
                    finish(None, exc)
                    return
                finish(result, None)

            transport.send(uri, wire, headers, on_response, timeout=timeout)
            return

        breaker = self._breaker_for(policy, endpoint.address)

        def attempt(on_done, attempt_no: int, budget: Optional[float]) -> None:
            attempt_timeout = timeout
            if budget is not None:
                attempt_timeout = (
                    budget if attempt_timeout is None else min(attempt_timeout, budget)
                )

            def on_response(body: Optional[str], error: Optional[Exception]) -> None:
                if error is not None:
                    on_done(None, error)
                    return
                try:
                    result = decode(body)
                except Exception as exc:  # includes SoapFault
                    on_done(None, exc)
                    return
                on_done(result, None)

            transport.send(uri, wire, headers, on_response, timeout=attempt_timeout)

        def on_retry(next_attempt: int, delay: float, error: Exception) -> None:
            obs_metrics.inc("client.retransmits")
            self.fire_client(
                "retransmit", service=handle.name, operation=operation,
                attempt=next_attempt, message_id=maps.message_id,
                delay=delay, reason=str(error),
            )

        ReliableCall(
            self._kernel(), policy, attempt, finish,
            breaker=breaker, on_retry=on_retry,
            describe=f"{endpoint.address}#{operation}",
        ).start()

    def _pick_endpoint(self, handle: ServiceHandle) -> Optional[EndpointReference]:
        for scheme in self._transports:
            endpoint = handle.endpoint_for_scheme(scheme)
            if endpoint is not None:
                return endpoint
        return None


class P2psInvocation(Invocation):
    """SOAP over P2PS pipes — the consumer flow of Fig. 5.

    Pipes are one-way and give no delivery signal, so reliability here
    is retransmission: when an attempt's timeout lapses the same
    request (same MessageID) is re-sent after the policy's backoff; the
    provider suppresses duplicate execution and replays its retained
    response, so retries are safe even for non-idempotent operations.
    ``default_retries`` is the legacy knob for the same machinery
    (*n* extra attempts, no backoff) and wins over the binding default
    when set.
    """

    def __init__(
        self,
        peer: Peer,
        parent: Optional[EventSource] = None,
        default_retries: int = 0,
        default_policy: Optional[ReliabilityPolicy] = None,
    ):
        super().__init__(
            lambda: peer.network.kernel.now, parent, default_policy=default_policy
        )
        self.peer = peer
        self.default_retries = default_retries

    def _kernel(self):
        return self.peer.network.kernel

    def _effective_policy(
        self, policy: Optional[ReliabilityPolicy]
    ) -> Optional[ReliabilityPolicy]:
        if policy is not None:
            return policy
        if self.default_retries:
            from repro.reliability import RetryPolicy

            return ReliabilityPolicy(
                retry=RetryPolicy(
                    max_attempts=1 + self.default_retries, base_delay=0.0, jitter=0.0
                )
            )
        return self.default_policy

    def invoke_async(
        self,
        handle: ServiceHandle,
        operation: str,
        args: dict[str, Any],
        callback: InvokeCallback,
        timeout: Optional[float] = None,
        policy: Optional[ReliabilityPolicy] = None,
        endpoint: Optional[EndpointReference] = None,
        message_id: Optional[str] = None,
    ) -> None:
        policy = self._effective_policy(policy)
        if endpoint is None:
            endpoint = self._endpoint_for_operation(handle, operation)
        if endpoint is None:
            callback(
                None,
                InvocationError(
                    f"service {handle.name!r} has no p2ps pipe for operation {operation!r}"
                ),
            )
            return
        breaker = self._breaker_for(policy, endpoint.address)
        if breaker is not None and not breaker.allow():
            callback(
                None,
                CircuitOpenError(
                    f"circuit open for {endpoint.address}: shedding call "
                    f"(recent failure rate {breaker.failure_rate:.0%})"
                ),
            )
            return
        try:
            target_advert = pipe_from_epr(endpoint)
            out_pipe = self.peer.open_output_pipe(target_advert)
        except Exception as exc:  # noqa: BLE001 - resolution/mapping boundary
            if breaker is not None:
                breaker.record_failure()
            callback(None, InvocationError(f"cannot reach provider: {exc}"))
            return

        # Fig. 5 step 1: request input pipe + advertisement from P2PS
        done: dict[str, Any] = {"fired": False, "timeout_event": None, "resend_event": None}
        reply_pipe, reply_advert = self.peer.create_input_pipe(
            f"reply-{operation}"
        )
        # step 2/3: serialise the pipe advert to WS-Addressing and add
        # to the SOAP request header
        reply_epr = epr_from_pipe(reply_advert)
        maps = MessageAddressingProperties(
            to=endpoint.address,
            action=action_for_pipe(target_advert),
            reply_to=reply_epr,
            message_id=message_id if message_id is not None else new_message_id(),
        )
        trace_ctx = trace_begin_send()
        if trace_ctx is not None:
            maps.trace_context = trace_ctx.encoded()
        wire = request_templates.render(
            maps, handle.namespace, operation, args, target=endpoint
        )
        if wire is None:
            envelope = build_rpc_request(handle.namespace, operation, args, self.registry)
            maps.apply_to(envelope, target=endpoint)
            wire = envelope.to_wire_message()

        max_attempts = policy.retry.max_attempts if policy is not None else 1
        deadline = policy.new_deadline() if policy is not None else None
        if deadline is not None:
            deadline.start(self._now())

        def finish(result: Any, error: Optional[Exception]) -> None:
            if done["fired"]:
                return
            done["fired"] = True
            for key in ("timeout_event", "resend_event"):
                if done[key] is not None:
                    done[key].cancel()
            self.peer.close_input_pipe(reply_advert.pipe_id)
            if breaker is not None:
                if error is None:
                    breaker.record_success()
                else:
                    breaker.record_failure()
            if error is not None:
                obs_metrics.inc("client.failures")
                self.fire_client(
                    "invoke-failed", service=handle.name, operation=operation,
                    reason=str(error), message_id=maps.message_id,
                )
            else:
                obs_metrics.inc("client.responses")
                obs_metrics.observe("client.latency", self._now() - started)
                self.fire_client(
                    "response-received", service=handle.name, operation=operation,
                    message_id=maps.message_id,
                )
            callback(result, error)

        # step 4: add myself as a listener to the pipe
        def on_reply(payload, meta: dict) -> None:
            try:
                response = SoapEnvelope.from_wire_message(payload)
                result = extract_rpc_result(response, self.registry)
            except Exception as exc:
                finish(None, exc)
                return
            finish(result, None)

        reply_pipe.add_listener(on_reply)

        attempts = {"sent": 1}

        def send_attempt() -> None:
            if done["fired"]:
                return
            try:
                self.peer.send_down_pipe(out_pipe, wire)
            except PipeError as exc:
                finish(None, InvocationError(str(exc)))
                return
            if timeout is not None:
                done["timeout_event"] = self.peer.network.kernel.schedule(
                    timeout, on_attempt_timeout
                )

        def on_attempt_timeout() -> None:
            if done["fired"]:
                return
            exhausted = attempts["sent"] >= max_attempts
            if not exhausted and deadline is not None and deadline.expired(self._now()):
                finish(
                    None,
                    DeadlineExceededError(
                        f"deadline of {deadline.budget}s exhausted for "
                        f"{operation!r} after {attempts['sent']} attempt(s)"
                    ),
                )
                return
            if not exhausted:
                backoff = (
                    policy.retry.delay(attempts["sent"] - 1)
                    if policy is not None
                    else 0.0
                )
                attempts["sent"] += 1
                obs_metrics.inc("client.retransmits")
                self.fire_client(
                    "retransmit", service=handle.name, operation=operation,
                    attempt=attempts["sent"], message_id=maps.message_id,
                    delay=backoff,
                )
                if backoff > 0:
                    done["resend_event"] = self.peer.network.kernel.schedule(
                        backoff, send_attempt
                    )
                else:
                    send_attempt()
            else:
                finish(
                    None,
                    InvocationError(
                        f"no response from {endpoint.address} for {operation!r} "
                        f"after {attempts['sent']} attempt(s) of {timeout}s"
                    ),
                )

        obs_metrics.inc("client.requests")
        started = self._now()
        self.fire_client(
            "request-sent",
            service=handle.name,
            operation=operation,
            endpoint=endpoint.address,
            message_id=maps.message_id,
            **trace_event_fields(trace_ctx),
        )
        # step 5: send SOAP down the remote pipe
        send_attempt()

    def invoke_oneway(
        self,
        handle: ServiceHandle,
        operation: str,
        args: Optional[dict[str, Any]] = None,
        policy: Optional[ReliabilityPolicy] = None,
        timeout: Optional[float] = None,
        **kwargs: Any,
    ) -> Optional[OnewayStatus]:
        """True one-way: no reply pipe is created and no ReplyTo header
        is sent, so the provider does not answer (Fig. 6 short-circuits
        after step 3).

        With an acknowledgement-requesting policy (``policy.ack``), the
        WS-RM-lite handshake runs instead: an ack pipe is opened, the
        request carries ``rm:AckRequested`` and is retransmitted (same
        MessageID) until the provider's ack frame arrives or attempts
        run out; the returned :class:`OnewayStatus` tracks the outcome.
        Acks are opt-in per call or per policy — a bare oneway stays a
        single fire-and-forget frame.
        """
        all_args = dict(args or {})
        all_args.update(kwargs)
        policy = policy if policy is not None else self.default_policy
        if policy is not None and policy.ack:
            return self._invoke_oneway_acked(
                handle, operation, all_args, policy, timeout
            )
        endpoint = self._endpoint_for_operation(handle, operation)
        if endpoint is None:
            raise InvocationError(
                f"service {handle.name!r} has no p2ps pipe for operation {operation!r}"
            )
        target_advert = pipe_from_epr(endpoint)
        out_pipe = self.peer.open_output_pipe(target_advert)
        maps = MessageAddressingProperties(
            to=endpoint.address,
            action=action_for_pipe(target_advert),
            message_id=new_message_id(),
        )
        trace_ctx = trace_begin_send()
        if trace_ctx is not None:
            maps.trace_context = trace_ctx.encoded()
        wire = request_templates.render(
            maps, handle.namespace, operation, all_args, target=endpoint
        )
        if wire is None:
            envelope = build_rpc_request(
                handle.namespace, operation, all_args, self.registry
            )
            maps.apply_to(envelope, target=endpoint)
            wire = envelope.to_wire_message()
        obs_metrics.inc("client.oneway_sent")
        self.fire_client(
            "oneway-sent", service=handle.name, operation=operation,
            endpoint=endpoint.address, message_id=maps.message_id,
            **trace_event_fields(trace_ctx),
        )
        self.peer.send_down_pipe(out_pipe, wire)
        return None

    def _invoke_oneway_acked(
        self,
        handle: ServiceHandle,
        operation: str,
        args: dict[str, Any],
        policy: ReliabilityPolicy,
        timeout: Optional[float],
    ) -> OnewayStatus:
        """The reliable one-way flow: AckRequested + retransmit-until-acked."""
        endpoint = self._endpoint_for_operation(handle, operation)
        if endpoint is None:
            raise InvocationError(
                f"service {handle.name!r} has no p2ps pipe for operation {operation!r}"
            )
        message_id = new_message_id()
        status = OnewayStatus(message_id=message_id)
        breaker = self._breaker_for(policy, endpoint.address)
        if breaker is not None and not breaker.allow():
            status.error = CircuitOpenError(
                f"circuit open for {endpoint.address}: shedding oneway send"
            )
            status._conclude()
            self.fire_client(
                "oneway-failed", service=handle.name, operation=operation,
                message_id=message_id, reason=str(status.error),
            )
            return status
        target_advert = pipe_from_epr(endpoint)
        out_pipe = self.peer.open_output_pipe(target_advert)
        ack_pipe, ack_advert = self.peer.create_input_pipe(f"ack-{operation}")
        envelope = build_rpc_request(handle.namespace, operation, args, self.registry)
        maps = MessageAddressingProperties(
            to=endpoint.address,
            action=action_for_pipe(target_advert),
            reply_to=epr_from_pipe(ack_advert),
            message_id=message_id,
        )
        trace_ctx = trace_begin_send()
        if trace_ctx is not None:
            maps.trace_context = trace_ctx.encoded()
        maps.apply_to(envelope, target=endpoint)
        mark_ack_requested(envelope)
        wire = envelope.to_wire_message()

        attempt_timeout = timeout if timeout is not None else 1.0
        deadline = policy.new_deadline()
        if deadline is not None:
            deadline.start(self._now())
        done: dict[str, Any] = {"timer": None, "resend": None}

        def conclude(error: Optional[Exception]) -> None:
            if status.done:
                return
            for key in ("timer", "resend"):
                if done[key] is not None:
                    done[key].cancel()
            self.peer.close_input_pipe(ack_advert.pipe_id)
            if error is None:
                status.acked = True
                status.acked_at = self._now()
                if breaker is not None:
                    breaker.record_success()
                obs_metrics.inc("client.oneway_acked")
                obs_metrics.observe("client.ack_latency", status.acked_at - sent_at)
                self.fire_client(
                    "oneway-acked", service=handle.name, operation=operation,
                    message_id=message_id, attempts=status.attempts,
                )
            else:
                status.error = error
                if breaker is not None:
                    breaker.record_failure()
                obs_metrics.inc("client.oneway_failed")
                self.fire_client(
                    "oneway-failed", service=handle.name, operation=operation,
                    message_id=message_id, reason=str(error),
                )
            status._conclude()

        def on_ack(payload, meta: dict) -> None:
            try:
                frame = SoapEnvelope.from_wire_message(payload)
            except Exception:  # noqa: BLE001 - wire boundary
                return
            if is_ack(frame) and ack_relates_to(frame) == message_id:
                conclude(None)

        ack_pipe.add_listener(on_ack)

        def send_attempt() -> None:
            if status.done:
                return
            status.attempts += 1
            try:
                self.peer.send_down_pipe(out_pipe, wire)
            except PipeError as exc:
                conclude(InvocationError(str(exc)))
                return
            done["timer"] = self.peer.network.kernel.schedule(
                attempt_timeout, on_timeout
            )

        def on_timeout() -> None:
            if status.done:
                return
            if status.attempts >= policy.retry.max_attempts:
                conclude(
                    InvocationError(
                        f"no ack from {endpoint.address} for {operation!r} "
                        f"after {status.attempts} attempt(s) of {attempt_timeout}s"
                    )
                )
                return
            if deadline is not None and deadline.expired(self._now()):
                conclude(
                    DeadlineExceededError(
                        f"deadline of {deadline.budget}s exhausted for oneway "
                        f"{operation!r} after {status.attempts} attempt(s)"
                    )
                )
                return
            backoff = policy.retry.delay(status.attempts - 1)
            self.fire_client(
                "retransmit", service=handle.name, operation=operation,
                attempt=status.attempts + 1, message_id=message_id, delay=backoff,
            )
            if backoff > 0:
                done["resend"] = self.peer.network.kernel.schedule(
                    backoff, send_attempt
                )
            else:
                send_attempt()

        obs_metrics.inc("client.oneway_sent")
        sent_at = self._now()
        self.fire_client(
            "oneway-sent", service=handle.name, operation=operation,
            endpoint=endpoint.address, message_id=message_id, ack_requested=True,
            **trace_event_fields(trace_ctx),
        )
        send_attempt()
        return status

    def _endpoint_for_operation(
        self, handle: ServiceHandle, operation: str
    ) -> Optional[EndpointReference]:
        for endpoint in handle.endpoints:
            if not endpoint.address.startswith("p2ps://"):
                continue
            if endpoint.property_text("PipeName") == operation:
                return endpoint
        return None
