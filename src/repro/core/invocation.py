"""Invocations: the client side of the exchange.

"Although WSPeer allows synchronous discovery and invocation, it is
essentially an asynchronous, event driven system in which components
subscribe to events and are notified when and if responses are returned
from remote services" (§III).  Both invocation classes are async at the
core — ``invoke_async`` with a completion callback — and synchronous
``invoke`` pumps the simulation kernel until the callback fires, exactly
how HTTP's held-open connection behaves.

:class:`HttpInvocation`
    SOAP POST to an ``http://`` (or, with an :class:`HttpgTransport`
    supplied, ``httpg://``) endpoint.
:class:`P2psInvocation`
    The consumer flow of Fig. 5: create a reply pipe, serialise its
    advert into a WS-Addressing ``ReplyTo``, listen, send the request
    down the provider's operation pipe, and complete when the response
    frame lands on the reply pipe.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.errors import InvocationError
from repro.core.events import EventSource
from repro.core.handle import ServiceHandle
from repro.core.p2psmap import action_for_pipe, epr_from_pipe, pipe_from_epr
from repro.p2ps.peer import Peer
from repro.p2ps.pipes import PipeError, ResolutionError
from repro.simnet.kernel import SimTimeoutError
from repro.simnet.network import Node
from repro.soap.encoding import StructRegistry
from repro.soap.envelope import SoapEnvelope
from repro.soap.rpc import build_rpc_request, extract_rpc_result
from repro.soap.stubs import DynamicStubBuilder
from repro.transport.base import Transport, TransportError
from repro.transport.http import HttpTransport
from repro.transport.uri import Uri
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageAddressingProperties, new_message_id
from repro.wsdl.stubspec import to_stub_spec

#: Completion callback: (result, error) — exactly one is non-None,
#: except for void results where both may be None.
InvokeCallback = Callable[[Any, Optional[Exception]], None]


class Invocation(EventSource):
    """Base invocation node of the interface tree."""

    def __init__(self, clock, parent: Optional[EventSource] = None):
        super().__init__("invocation", parent)
        self._clock = clock
        self.registry = StructRegistry()

    def _now(self) -> float:
        return self._clock()

    # -- abstract -------------------------------------------------------------
    def invoke_async(
        self,
        handle: ServiceHandle,
        operation: str,
        args: dict[str, Any],
        callback: InvokeCallback,
        timeout: Optional[float] = None,
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- shared ------------------------------------------------------------
    def _kernel(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def invoke(
        self,
        handle: ServiceHandle,
        operation: str,
        args: Optional[dict[str, Any]] = None,
        timeout: Optional[float] = 30.0,
        **kwargs: Any,
    ) -> Any:
        """Synchronous invocation: pump virtual time until completion."""
        all_args = dict(args or {})
        all_args.update(kwargs)
        box: dict[str, Any] = {}

        def callback(result: Any, error: Optional[Exception]) -> None:
            box["result"] = result
            box["error"] = error

        self.invoke_async(handle, operation, all_args, callback, timeout)
        try:
            self._kernel().pump_until(lambda: "result" in box or "error" in box)
        except SimTimeoutError as exc:
            raise InvocationError(f"invocation of {operation!r} never completed") from exc
        if box.get("error") is not None:
            raise box["error"]
        return box.get("result")

    def invoke_oneway(
        self,
        handle: ServiceHandle,
        operation: str,
        args: Optional[dict[str, Any]] = None,
        **kwargs: Any,
    ) -> None:
        """Notification-style invocation: send and do not wait.

        Default implementation dispatches asynchronously and discards
        the completion; transports with genuinely one-way wires (P2PS
        pipes) override this to skip creating a reply channel at all.
        """
        all_args = dict(args or {})
        all_args.update(kwargs)
        self.invoke_async(handle, operation, all_args, lambda result, error: None)

    def create_stub(self, handle: ServiceHandle, timeout: Optional[float] = 30.0) -> Any:
        """Build a dynamic proxy whose methods invoke through this node.

        The WSPeer way: "generating stubs directly to bytes, bypassing
        source generation and compilation" (§IV-A).
        """
        spec = to_stub_spec(handle.wsdl)

        def invoke_fn(op: str, args: dict[str, Any]) -> Any:
            return self.invoke(handle, op, args, timeout=timeout)

        return DynamicStubBuilder().build(spec, invoke_fn)


class HttpInvocation(Invocation):
    """SOAP over request/response transports (HTTP and HTTPG)."""

    def __init__(
        self,
        node: Node,
        parent: Optional[EventSource] = None,
        extra_transports: Optional[list[Transport]] = None,
    ):
        super().__init__(lambda: node.network.kernel.now, parent)
        self.node = node
        self._transports: dict[str, Transport] = {"http": HttpTransport(node)}
        for transport in extra_transports or []:
            self._transports[transport.scheme] = transport

    def _kernel(self):
        return self.node.network.kernel

    def add_transport(self, transport: Transport) -> None:
        self._transports[transport.scheme] = transport

    def invoke_async(
        self,
        handle: ServiceHandle,
        operation: str,
        args: dict[str, Any],
        callback: InvokeCallback,
        timeout: Optional[float] = None,
    ) -> None:
        endpoint = self._pick_endpoint(handle)
        if endpoint is None:
            callback(
                None,
                InvocationError(
                    f"service {handle.name!r} has no endpoint for schemes "
                    f"{sorted(self._transports)}"
                ),
            )
            return
        uri = Uri.parse(endpoint.address)
        transport = self._transports[uri.scheme]

        envelope = build_rpc_request(handle.namespace, operation, args, self.registry)
        maps = MessageAddressingProperties.for_request(endpoint, operation)
        maps.apply_to(envelope, target=endpoint)
        self.fire_client(
            "request-sent",
            service=handle.name,
            operation=operation,
            endpoint=endpoint.address,
            message_id=maps.message_id,
        )

        def on_response(body: Optional[str], error: Optional[Exception]) -> None:
            if error is not None:
                self.fire_client(
                    "invoke-failed", service=handle.name, operation=operation,
                    reason=str(error),
                )
                callback(None, error)
                return
            try:
                response = SoapEnvelope.from_wire(body or "")
                result = extract_rpc_result(response, self.registry)
            except Exception as exc:  # includes SoapFault
                self.fire_client(
                    "invoke-failed", service=handle.name, operation=operation,
                    reason=str(exc),
                )
                callback(None, exc)
                return
            self.fire_client(
                "response-received", service=handle.name, operation=operation,
                message_id=maps.message_id,
            )
            callback(result, None)

        headers = {"SOAPAction": maps.action}
        if timeout is not None and hasattr(transport, "client"):
            transport.client.default_timeout = timeout  # type: ignore[attr-defined]
        transport.send(uri, envelope.to_wire(), headers, on_response)

    def _pick_endpoint(self, handle: ServiceHandle) -> Optional[EndpointReference]:
        for scheme in self._transports:
            endpoint = handle.endpoint_for_scheme(scheme)
            if endpoint is not None:
                return endpoint
        return None


class P2psInvocation(Invocation):
    """SOAP over P2PS pipes — the consumer flow of Fig. 5.

    ``default_retries`` adds retransmission over the lossy one-way
    pipes: when an attempt's timeout lapses the same request (same
    MessageID) is re-sent; the provider suppresses duplicate execution
    and replays its retained response, so retries are safe even for
    non-idempotent operations.
    """

    def __init__(
        self,
        peer: Peer,
        parent: Optional[EventSource] = None,
        default_retries: int = 0,
    ):
        super().__init__(lambda: peer.network.kernel.now, parent)
        self.peer = peer
        self.default_retries = default_retries

    def _kernel(self):
        return self.peer.network.kernel

    def invoke_async(
        self,
        handle: ServiceHandle,
        operation: str,
        args: dict[str, Any],
        callback: InvokeCallback,
        timeout: Optional[float] = None,
    ) -> None:
        endpoint = self._endpoint_for_operation(handle, operation)
        if endpoint is None:
            callback(
                None,
                InvocationError(
                    f"service {handle.name!r} has no p2ps pipe for operation {operation!r}"
                ),
            )
            return
        try:
            target_advert = pipe_from_epr(endpoint)
            out_pipe = self.peer.open_output_pipe(target_advert)
        except Exception as exc:  # noqa: BLE001 - resolution/mapping boundary
            callback(None, InvocationError(f"cannot reach provider: {exc}"))
            return

        # Fig. 5 step 1: request input pipe + advertisement from P2PS
        done: dict[str, Any] = {"fired": False, "timeout_event": None}
        reply_pipe, reply_advert = self.peer.create_input_pipe(
            f"reply-{operation}"
        )
        # step 2/3: serialise the pipe advert to WS-Addressing and add
        # to the SOAP request header
        reply_epr = epr_from_pipe(reply_advert)
        envelope = build_rpc_request(handle.namespace, operation, args, self.registry)
        maps = MessageAddressingProperties(
            to=endpoint.address,
            action=action_for_pipe(target_advert),
            reply_to=reply_epr,
            message_id=new_message_id(),
        )
        maps.apply_to(envelope, target=endpoint)

        def finish(result: Any, error: Optional[Exception]) -> None:
            if done["fired"]:
                return
            done["fired"] = True
            if done["timeout_event"] is not None:
                done["timeout_event"].cancel()
            self.peer.close_input_pipe(reply_advert.pipe_id)
            if error is not None:
                self.fire_client(
                    "invoke-failed", service=handle.name, operation=operation,
                    reason=str(error),
                )
            else:
                self.fire_client(
                    "response-received", service=handle.name, operation=operation,
                    message_id=maps.message_id,
                )
            callback(result, error)

        # step 4: add myself as a listener to the pipe
        def on_reply(payload: str, meta: dict) -> None:
            try:
                response = SoapEnvelope.from_wire(payload)
                result = extract_rpc_result(response, self.registry)
            except Exception as exc:
                finish(None, exc)
                return
            finish(result, None)

        reply_pipe.add_listener(on_reply)

        attempts = {"sent": 1}
        max_attempts = 1 + self.default_retries

        def on_attempt_timeout() -> None:
            if done["fired"]:
                return
            if attempts["sent"] < max_attempts:
                attempts["sent"] += 1
                self.fire_client(
                    "retransmit", service=handle.name, operation=operation,
                    attempt=attempts["sent"], message_id=maps.message_id,
                )
                try:
                    self.peer.send_down_pipe(out_pipe, envelope.to_wire())
                except PipeError as exc:
                    finish(None, InvocationError(str(exc)))
                    return
                done["timeout_event"] = self.peer.network.kernel.schedule(
                    timeout, on_attempt_timeout
                )
            else:
                finish(
                    None,
                    InvocationError(
                        f"no response from {endpoint.address} for {operation!r} "
                        f"after {attempts['sent']} attempt(s) of {timeout}s"
                    ),
                )

        if timeout is not None:
            done["timeout_event"] = self.peer.network.kernel.schedule(
                timeout, on_attempt_timeout
            )

        self.fire_client(
            "request-sent",
            service=handle.name,
            operation=operation,
            endpoint=endpoint.address,
            message_id=maps.message_id,
        )
        # step 5: send SOAP down the remote pipe
        try:
            self.peer.send_down_pipe(out_pipe, envelope.to_wire())
        except PipeError as exc:
            finish(None, InvocationError(str(exc)))

    def invoke_oneway(
        self,
        handle: ServiceHandle,
        operation: str,
        args: Optional[dict[str, Any]] = None,
        **kwargs: Any,
    ) -> None:
        """True one-way: no reply pipe is created and no ReplyTo header
        is sent, so the provider does not answer (Fig. 6 short-circuits
        after step 3)."""
        all_args = dict(args or {})
        all_args.update(kwargs)
        endpoint = self._endpoint_for_operation(handle, operation)
        if endpoint is None:
            raise InvocationError(
                f"service {handle.name!r} has no p2ps pipe for operation {operation!r}"
            )
        target_advert = pipe_from_epr(endpoint)
        out_pipe = self.peer.open_output_pipe(target_advert)
        envelope = build_rpc_request(handle.namespace, operation, all_args, self.registry)
        maps = MessageAddressingProperties(
            to=endpoint.address,
            action=action_for_pipe(target_advert),
            message_id=new_message_id(),
        )
        maps.apply_to(envelope, target=endpoint)
        self.fire_client(
            "oneway-sent", service=handle.name, operation=operation,
            endpoint=endpoint.address, message_id=maps.message_id,
        )
        self.peer.send_down_pipe(out_pipe, envelope.to_wire())

    def _endpoint_for_operation(
        self, handle: ServiceHandle, operation: str
    ) -> Optional[EndpointReference]:
        for endpoint in handle.endpoints:
            if not endpoint.address.startswith("p2ps://"):
                continue
            if endpoint.property_text("PipeName") == operation:
                return endpoint
        return None
