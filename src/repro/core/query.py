"""ServiceQuery — WSPeer's query abstraction.

"A ServiceQuery is an abstraction used by WSPeer to allow for varying
kinds of query.  The simplest ServiceQuery queries on the name of a
service.  More complex queries could be constructed from languages such
as DAML" (§III).  Each locator implementation understands the query
subtypes relevant to its network: the UDDI locator consumes
:class:`UDDIServiceQuery` categories, the P2PS locator consumes
:class:`P2PSServiceQuery` attributes; both accept a plain
:class:`ServiceQuery` by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class ServiceQuery:
    """The simplest query: a service-name pattern (``%`` wildcard)."""

    name_pattern: str = "%"

    def describe(self) -> str:
        return f"name~{self.name_pattern!r}"


@dataclass
class UDDIServiceQuery(ServiceQuery):
    """A query that "understands UDDI specific categories to search
    within" (§IV-A): keyedReference dicts ANDed together."""

    categories: list[dict] = field(default_factory=list)
    business_name: str = ""

    def describe(self) -> str:
        return f"uddi name~{self.name_pattern!r} categories={len(self.categories)}"


@dataclass
class P2PSServiceQuery(ServiceQuery):
    """An attribute-based P2PS query (the capability §IV contrasts with
    DHT key lookup)."""

    attributes: dict[str, str] = field(default_factory=dict)
    ttl: Optional[int] = None

    def describe(self) -> str:
        return f"p2ps name~{self.name_pattern!r} attrs={self.attributes}"
