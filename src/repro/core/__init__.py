"""WSPeer — the paper's primary contribution.

"WSPeer acts as an interface to hosting and invoking Web services"
(§III) between an application and whatever network it is deployed into.
The package mirrors the paper's interface tree (Fig. 2):

::

                        Peer
                   /            \\
              Client            Server
             /      \\          /      \\
    ServiceLocator Invocation ServiceDeployer ServicePublisher

- parents create (or accept registration of) their children and listen
  to them; every event propagates up to the :class:`WSPeer` root, where
  application code implementing :class:`PeerMessageListener` hears all
  five event families (discovery, publish, client, server, deployment);
- WSPeer is **asynchronous and event-driven** at the core, with
  synchronous calls built on top by pumping the simulation kernel;
- hosting needs **no container**: deploying generates WSDL from a live
  object and opens an endpoint, and the application may intercept
  requests before the engine sees them;
- a deployed service fronts **stateful objects** — per-operation target
  objects included;
- bindings are **pluggable**: the ``standard`` binding speaks
  SOAP/HTTP(+HTTPG) with UDDI discovery (Fig. 3), the ``p2ps`` binding
  speaks SOAP over P2PS pipes with WS-Addressing reply routing
  (Figs. 4–6), and their components can be mixed (§IV).
"""

from repro.core.events import (
    ClientMessageEvent,
    DeploymentMessageEvent,
    DiscoveryMessageEvent,
    EventSource,
    PeerMessageListener,
    PublishMessageEvent,
    ServerMessageEvent,
)
from repro.core.query import P2PSServiceQuery, ServiceQuery, UDDIServiceQuery
from repro.core.handle import ServiceHandle
from repro.core.hosting import DeployedService, LightweightContainer
from repro.core.errors import WsPeerError, DeploymentError, DiscoveryError, InvocationError
from repro.core.wspeer import WSPeer

__all__ = [
    "WSPeer",
    "PeerMessageListener",
    "EventSource",
    "DiscoveryMessageEvent",
    "PublishMessageEvent",
    "ClientMessageEvent",
    "ServerMessageEvent",
    "DeploymentMessageEvent",
    "ServiceQuery",
    "UDDIServiceQuery",
    "P2PSServiceQuery",
    "ServiceHandle",
    "DeployedService",
    "LightweightContainer",
    "WsPeerError",
    "DeploymentError",
    "DiscoveryError",
    "InvocationError",
]
