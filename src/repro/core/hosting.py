"""The lightweight hosting container.

"WSPeer reverses the power relationship between the deployed component
and the environment used for deploying and exposing it, in effect
allowing the component to become its own container" (§III).  Concretely:

- :meth:`LightweightContainer.deploy` takes a *live object* (or a
  prepared :class:`ServiceObject` with per-operation targets), generates
  its WSDL, and wires a dispatcher — at runtime, no restart, no archive;
- the owning application can set an ``interceptor`` that sees every
  request *before* the messaging engine and may answer it directly; when
  it declines (returns None) the engine dispatches as usual;
- every request and response fires a ServerMessageEvent, so a listener
  on the tree root observes traffic "either side of being processed by
  the underlying messaging system".
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.errors import DeploymentError
from repro.core.events import EventSource
from repro.observability import metrics as obs_metrics
from repro.observability.tracecontext import (
    activate as trace_activate,
    event_fields as trace_event_fields,
    extract as trace_extract,
    propagation_enabled as trace_propagation_enabled,
)
from repro.reliability import DedupWindow
from repro.soap.encoding import StructRegistry
from repro.soap.envelope import SoapEnvelope
from repro.soap.handlers import HandlerChain, MessageContext, MustUnderstandHandler
from repro.soap.rpc import RpcDispatcher, ServiceObject
from repro.wsa.epr import EndpointReference
from repro.wsdl.generator import generate_wsdl
from repro.wsdl.model import WsdlDefinition
from repro.xmlkit import ns

#: An interceptor sees (service name, request envelope) and may return a
#: complete response envelope to bypass the engine, or None to decline.
Interceptor = Callable[[str, SoapEnvelope], Optional[SoapEnvelope]]


class DeployedService:
    """One deployed service: live object(s) + description + dispatcher."""

    def __init__(
        self,
        service: ServiceObject,
        registry: Optional[StructRegistry] = None,
        transport: Optional[str] = None,
    ):
        self.service = service
        self.registry = registry or StructRegistry()
        self.dispatcher = RpcDispatcher(service, self.registry)
        self.chain = HandlerChain([MustUnderstandHandler({ns.WSA})])
        self.endpoints: list[EndpointReference] = []
        self.transport = transport
        self.requests_processed = 0
        #: at-most-once execution: retransmitted requests (same
        #: ``wsa:MessageID``) replay the retained response instead of
        #: re-running the operation — essential for non-idempotent
        #: stateful services under client-side retry policies.
        self.dedup = DedupWindow(max_entries=256)
        self.duplicates_suppressed = 0
        #: set by :class:`~repro.replication.group.ReplicationGroup`
        #: when this deployment joins a replication group (E15); the
        #: container then guards dispatch (lag/divergence) and ships a
        #: versioned delta after every state-changing execution
        self.replication = None
        self._wsdl_locations: dict[str, str] = {}

    @property
    def name(self) -> str:
        return self.service.name

    @property
    def namespace(self) -> str:
        return self.service.namespace

    def add_endpoint(self, epr: EndpointReference, port_name: str = "") -> None:
        self.endpoints.append(epr)
        self._wsdl_locations[port_name or f"{self.name}Port{len(self.endpoints)}"] = (
            epr.address
        )

    def wsdl(self) -> WsdlDefinition:
        """The current interface description (reflects live endpoints
        and declares any registered struct types in <wsdl:types>)."""
        kwargs = {}
        if self.transport:
            kwargs["transport"] = self.transport
        return generate_wsdl(
            self.service,
            locations=self._wsdl_locations,
            registry=self.registry,
            **kwargs,
        )

    # -- session-state API (E15) ---------------------------------------
    def _member(self):
        if self.replication is None:
            raise DeploymentError(
                f"service {self.name!r} is not replicated; call "
                "WSPeer.enable_replication first"
            )
        return self.replication

    def get_state(self, session: Optional[str] = None) -> dict:
        """The replicated state of one session (default session when
        *session* is omitted)."""
        from repro.replication.state import DEFAULT_SESSION

        return self._member().store.get_state(session or DEFAULT_SESSION)

    def apply_delta(self, delta) -> str:
        """Apply a :class:`~repro.replication.state.StateDelta` to this
        member in-process; returns the store verdict (``applied`` /
        ``duplicate`` / ``buffered`` / ``diverged``)."""
        return self._member().apply_delta_local(delta)

    def snapshot(self, session: Optional[str] = None):
        """A :class:`~repro.replication.state.StateSnapshot` of one
        session at this member's high-water mark."""
        from repro.replication.state import DEFAULT_SESSION

        return self._member().store.snapshot(session or DEFAULT_SESSION)

    def __repr__(self) -> str:
        return f"<DeployedService {self.name} endpoints={len(self.endpoints)}>"


class LightweightContainer(EventSource):
    """Holds the deployed services of one WSPeer server side."""

    def __init__(self, parent: Optional[EventSource] = None, clock=None):
        super().__init__("container", parent)
        self._clock = clock or (lambda: 0.0)
        self._services: dict[str, DeployedService] = {}
        self.interceptor: Optional[Interceptor] = None
        #: optional load shedding; see :meth:`set_admission_control`
        self.admission = None
        self.requests_shed = 0
        #: declarative record of the hosting node's worker pool (E13);
        #: set via :meth:`set_worker_policy` (WSPeer.configure_workers)
        self.worker_policy: Optional[dict] = None

    def _now(self) -> float:
        return self._clock()

    def set_admission_control(
        self,
        capacity: Optional[float] = 8.0,
        drain_rate: float = 50.0,
        controller=None,
    ):
        """Bound this container's pending-request queue.

        Once set, requests arriving with the queue at capacity are
        answered with a ``Server.Busy`` fault carrying a retry-after
        hint instead of being dispatched — the overloaded provider
        stays responsive and steers clients to other endpoints.  Pass
        ``controller=None, capacity=None`` to disable shedding again.
        """
        if controller is None and capacity is not None:
            from repro.supervision.admission import AdmissionController

            controller = AdmissionController(
                capacity=capacity, drain_rate=drain_rate, clock=self._clock
            )
        self.admission = controller
        return controller

    def set_worker_policy(
        self, workers: int, queue_limit: Optional[float] = None
    ) -> dict:
        """Record the worker-pool dispatch policy this container's node
        runs under (E13): *workers* simulated workers draining a queue
        bounded at *queue_limit*.  The pool itself lives on the hosting
        node (:meth:`repro.simnet.network.Node.configure_workers`); the
        container keeps the declarative policy so introspection and
        metrics can report how wide its dispatch is."""
        self.worker_policy = {"workers": workers, "queue_limit": queue_limit}
        obs_metrics.set_gauge("server.workers", workers)
        return self.worker_policy

    # ------------------------------------------------------------------
    def deploy(
        self,
        source: Any,
        name: Optional[str] = None,
        namespace: Optional[str] = None,
        include: Optional[list[str]] = None,
        registry: Optional[StructRegistry] = None,
        transport: Optional[str] = None,
    ) -> DeployedService:
        """Deploy *source* — a live object or a :class:`ServiceObject`.

        For a plain object, its public methods become the operations;
        pass a prepared :class:`ServiceObject` to map operations onto
        several stateful objects.
        """
        if isinstance(source, ServiceObject):
            service = source
        else:
            if name is None:
                name = type(source).__name__
            service = ServiceObject.from_instance(
                name, source, namespace or f"urn:wspeer:{name}", include=include
            )
        if service.name in self._services:
            raise DeploymentError(f"service {service.name!r} already deployed")
        if not service.operations:
            raise DeploymentError(f"service {service.name!r} has no operations")
        deployed = DeployedService(service, registry, transport=transport)
        self._services[service.name] = deployed
        self.fire_deployment(
            "deployed", service=service.name, operations=service.operation_names
        )
        return deployed

    def undeploy(self, name: str) -> DeployedService:
        deployed = self._services.pop(name, None)
        if deployed is None:
            raise DeploymentError(f"no deployed service named {name!r}")
        self.fire_deployment("undeployed", service=name)
        return deployed

    def get(self, name: str) -> Optional[DeployedService]:
        return self._services.get(name)

    def require(self, name: str) -> DeployedService:
        deployed = self._services.get(name)
        if deployed is None:
            raise DeploymentError(f"no deployed service named {name!r}")
        return deployed

    @property
    def service_names(self) -> list[str]:
        return sorted(self._services)

    # ------------------------------------------------------------------
    @staticmethod
    def _request_message_id(request: SoapEnvelope) -> Optional[str]:
        from repro.wsa.headers import message_id_of

        return message_id_of(request)

    def process_request(self, service_name: str, request: SoapEnvelope) -> SoapEnvelope:
        """The server-side message path shared by every transport.

        1. ServerMessageEvent("request-received") — the app sees the raw
           request;
        2. the interceptor may answer directly (the app as container);
        3. otherwise the handler chain + RPC dispatcher run;
        4. ServerMessageEvent("response-sent") — the app sees the
           response on its way out.
        """
        operation = (
            request.body_content.name.local if request.body_content is not None else ""
        )
        message_id = self._request_message_id(request)
        # E17: continue the caller's trace.  The server span becomes the
        # ambient context for the whole (synchronous) processing window,
        # so anything the handler sends from inside it — replication
        # delta ships above all — is stamped as a child of this span and
        # the client's tree links up across nodes.
        server_trace = None
        if trace_propagation_enabled():
            incoming_trace = trace_extract(request)
            if incoming_trace is not None:
                server_trace = incoming_trace.child()
        trace_fields = trace_event_fields(server_trace)
        obs_metrics.inc("server.requests")
        self.fire_server(
            "request-received",
            service=service_name,
            operation=operation,
            envelope=request,
            message_id=message_id,
            **trace_fields,
        )
        with trace_activate(server_trace):
            response = self._dispatch_request(
                service_name, operation, message_id, request
            )
        if response.is_fault:
            obs_metrics.inc("server.faults")
        self.fire_server(
            "response-sent",
            service=service_name,
            operation=operation,
            fault=response.is_fault,
            envelope=response,
            message_id=message_id,
            **trace_fields,
        )
        return response

    def _dispatch_request(
        self,
        service_name: str,
        operation: str,
        message_id: Optional[str],
        request: SoapEnvelope,
    ) -> SoapEnvelope:
        """Steps 2–3 of :meth:`process_request`: interceptor, dedup,
        admission, replication guard, handler chain + dispatcher."""
        response: Optional[SoapEnvelope] = None
        if self.interceptor is not None:
            response = self.interceptor(service_name, request)
            if response is not None:
                obs_metrics.inc("server.intercepted")
                self.fire_server(
                    "request-intercepted", service=service_name, operation=operation,
                    message_id=message_id,
                )
        if response is None:
            deployed = self._services.get(service_name)
            if deployed is None:
                from repro.soap.faults import FaultCode, SoapFault

                response = SoapEnvelope.for_fault(
                    SoapFault(
                        FaultCode.CLIENT, f"no deployed service named {service_name!r}"
                    )
                )
            else:
                retained = (
                    deployed.dedup.get(message_id) if message_id is not None else None
                )
                if retained is not None:
                    deployed.duplicates_suppressed += 1
                    obs_metrics.inc("server.duplicates_suppressed")
                    # retained wires may be multipart bytes (E16): the
                    # replayed response keeps its attachments intact
                    response = SoapEnvelope.from_wire_message(retained)
                    self.fire_server(
                        "duplicate-suppressed",
                        service=service_name,
                        operation=operation,
                        message_id=message_id,
                    )
                else:
                    admitted, retry_after = (
                        self.admission.try_admit()
                        if self.admission is not None
                        else (True, 0.0)
                    )
                    if not admitted:
                        # shed before any dispatch work: the whole point
                        # is that a saturated provider answers cheaply.
                        # Busy responses are NOT remembered in the dedup
                        # window — a retransmit must get a fresh
                        # admission decision, not a replay of "busy".
                        from repro.soap.faults import ServerBusyFault

                        self.requests_shed += 1
                        obs_metrics.inc("server.requests_shed")
                        response = SoapEnvelope.for_fault(
                            ServerBusyFault(
                                f"service {service_name!r} is at capacity",
                                retry_after=retry_after,
                            )
                        )
                        self.fire_server(
                            "request-shed",
                            service=service_name,
                            operation=operation,
                            message_id=message_id,
                            retry_after=retry_after,
                        )
                    else:
                        # a replication member refuses sessions it
                        # cannot serve safely (delta-stream gap or
                        # divergence) with a failover-eligible fault —
                        # never remembered in the dedup window, so the
                        # redirected retransmission gets a fresh answer
                        guard = (
                            deployed.replication.guard_request(request, operation)
                            if deployed.replication is not None
                            else None
                        )
                        if guard is not None:
                            response = guard
                        else:
                            deployed.requests_processed += 1
                            obs_metrics.inc("server.dispatched")
                            context = MessageContext(request, service_name, operation)
                            response = deployed.chain.run(
                                context,
                                lambda ctx: deployed.dispatcher.dispatch(ctx.request),
                            )
                            if message_id is not None:
                                deployed.dedup.remember(
                                    message_id, response.to_wire_message()
                                )
                            if deployed.replication is not None:
                                deployed.replication.after_execute(
                                    request, response, message_id, operation
                                )
        return response
