"""The WSPeer facade — the root ``Peer`` of the interface tree (Fig. 2).

One :class:`WSPeer` makes one application node a *service-oriented
peer*: simultaneously a provider (``server`` side: deploy → publish)
and a consumer (``client`` side: locate → invoke).  Application code
adds a :class:`~repro.core.events.PeerMessageListener` to the root and
hears every event the subtree fires.

Children can be replaced at runtime ("implementations of child nodes
can be registered with parent nodes ... allowing users to insert
variations into the tree at any level"): pass a second binding for the
client side, or call :meth:`Client.register_locator` /
:meth:`Client.register_invocation` with any compatible component —
that is how a P2PS peer uses a UDDI locator (§IV, experiment E6).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.errors import DiscoveryError, WsPeerError
from repro.core.events import EventSource, PeerMessageListener
from repro.core.handle import ServiceHandle
from repro.core.hosting import DeployedService, Interceptor, LightweightContainer
from repro.core.invocation import Invocation, InvokeCallback
from repro.core.locator import ServiceLocator
from repro.core.query import ServiceQuery
from repro.reliability import ReliabilityPolicy
from repro.simnet.network import Node
from repro.soap.encoding import StructRegistry

# imported for type checking/re-export convenience
from repro.core.binding import Binding  # noqa: E402


class Client(EventSource):
    """The client side: ServiceLocator + Invocation (Fig. 2 left)."""

    def __init__(self, parent: EventSource):
        super().__init__("client", parent)
        self.locator: Optional[ServiceLocator] = None
        self.invocation: Optional[Invocation] = None

    def register_locator(self, locator: ServiceLocator) -> None:
        """Insert a locator variation at runtime (re-parents its events)."""
        locator.parent = self
        self.locator = locator

    def register_invocation(self, invocation: Invocation) -> None:
        invocation.parent = self
        self.invocation = invocation


class Server(EventSource):
    """The server side: ServiceDeployer + ServicePublisher (Fig. 2 right)."""

    def __init__(self, parent: EventSource, clock):
        super().__init__("server", parent)
        self.container = LightweightContainer(parent=self, clock=clock)
        self.deployer = None
        self.publisher = None

    def register_deployer(self, deployer) -> None:  # type: ignore[no-untyped-def]
        deployer.parent = self
        self.deployer = deployer

    def register_publisher(self, publisher) -> None:  # type: ignore[no-untyped-def]
        publisher.parent = self
        self.publisher = publisher


class WSPeer(EventSource):
    """The root of the interface tree: one service-oriented peer."""

    def __init__(
        self,
        node: Node,
        binding: Binding,
        client_binding: Optional[Binding] = None,
        name: str = "",
        listener: Optional[PeerMessageListener] = None,
    ):
        super().__init__("peer", parent=None)
        self.node = node
        self.name = name or node.id
        self.peer = None  # set by P2psBinding.ensure_peer when used
        self.binding = binding
        self._deployed: dict[str, DeployedService] = {}

        clock = lambda: node.network.kernel.now  # noqa: E731
        self._clock = clock
        self.server = Server(self, clock)
        self.client = Client(self)
        #: set by :meth:`enable_failover`
        self.failover = None
        #: set by :meth:`enable_distributed_discovery`
        self.discovery = None
        #: set by :meth:`enable_observability`
        self.tracer = None
        #: set by :meth:`enable_http_keepalive`
        self.http_pool = None
        #: set by :meth:`enable_replication`
        self.replication = None
        #: set by :meth:`enable_flight_recorder`
        self.flight = None
        #: set by :meth:`enable_slo`
        self.slo = None
        #: set by :meth:`enable_cluster_metrics`
        self.cluster_metrics = None

        self.server.register_deployer(binding.make_deployer(self))
        self.server.register_publisher(binding.make_publisher(self, self.server.deployer))
        effective_client = client_binding or binding
        self.client.register_locator(effective_client.make_locator(self))
        self.client.register_invocation(effective_client.make_invocation(self))

        if listener is not None:
            self.add_listener(listener)

    def _now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------
    def deploy(
        self,
        source: Any,
        name: Optional[str] = None,
        namespace: Optional[str] = None,
        include: Optional[list[str]] = None,
        registry: Optional[StructRegistry] = None,
    ) -> DeployedService:
        """Deploy *source* (live object or ServiceObject) and open its
        endpoint.  Dynamic: callable at any point at runtime."""
        deployed = self.server.container.deploy(
            source, name=name, namespace=namespace, include=include, registry=registry
        )
        self.server.deployer.deploy(deployed)
        self._deployed[deployed.name] = deployed
        return deployed

    def undeploy(self, name: str) -> None:
        deployed = self._deployed.pop(name, None)
        if deployed is None:
            raise WsPeerError(f"{name!r} was not deployed by this peer")
        self.server.deployer.undeploy(deployed)
        self.server.container.undeploy(name)

    def publish(self, name_or_service: str | DeployedService, **kwargs: Any) -> None:
        """Make a deployed service findable via this peer's publisher."""
        deployed = (
            name_or_service
            if isinstance(name_or_service, DeployedService)
            else self._deployed.get(name_or_service)
        )
        if deployed is None:
            raise WsPeerError(f"{name_or_service!r} is not deployed")
        self.server.publisher.publish(deployed, **kwargs)

    def set_interceptor(self, interceptor: Optional[Interceptor]) -> None:
        """Let the application handle requests before the engine (§III)."""
        self.server.container.interceptor = interceptor

    def set_admission_control(
        self, capacity: Optional[float] = 8.0, drain_rate: float = 50.0
    ):
        """Bound this peer's pending-request queue; overload answers
        with ``Server.Busy`` + retry-after instead of queueing forever."""
        return self.server.container.set_admission_control(
            capacity=capacity, drain_rate=drain_rate
        )

    def configure_workers(
        self,
        n: int,
        queue_limit: Optional[float] = None,
        service_time: Optional[float] = None,
    ):
        """Give this peer's hosting node an *n*-wide worker pool (E13).

        Request processing is modelled in virtual time as N simulated
        workers draining one queue: a slow handler occupies one worker
        while the other N-1 keep serving, so it no longer
        head-of-line-blocks the whole peer.  *queue_limit* bounds the
        number of waiting requests — overflow is answered Busy with a
        retry-after hint (503 on the HTTP/HTTPG server paths, a traced
        drop recovered by reliability retransmits on lossy P2PS pipes)
        instead of queueing forever.  *service_time* optionally sets the
        per-request processing cost in the same call (see also
        ``node.frame_cost`` for mixed per-request costs).  Returns the
        node, whose ``worker_stats()`` feeds the metrics registry.
        """
        from repro.observability import metrics as obs_metrics

        node = self.node
        node.configure_workers(n, queue_limit=queue_limit)
        if service_time is not None:
            node.service_time = service_time
        self.server.container.set_worker_policy(n, queue_limit=queue_limit)
        obs_metrics.default_registry().add_collector(
            f"workers.{node.id}", node.worker_stats
        )
        return node

    def local_handle(self, name: str) -> ServiceHandle:
        """A handle to one of this peer's own deployed services."""
        deployed = self._deployed.get(name)
        if deployed is None:
            raise WsPeerError(f"{name!r} is not deployed")
        return ServiceHandle(
            deployed.name, deployed.wsdl(), list(deployed.endpoints), source="local"
        )

    @property
    def deployed_services(self) -> list[str]:
        return sorted(self._deployed)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def locate(
        self, query: ServiceQuery | str, timeout: float = 10.0, expect: int = 1
    ) -> list[ServiceHandle]:
        """Find services matching *query* (a ServiceQuery or bare name)."""
        if isinstance(query, str):
            query = ServiceQuery(query)
        return self.client.locator.locate(query, timeout=timeout, expect=expect)

    def locate_async(
        self,
        query: ServiceQuery | str,
        on_found,
        **kwargs: Any,
    ) -> None:
        """Event-driven discovery: *on_found(handle)* fires per service.

        Extra keyword arguments are forwarded to the active locator's
        ``locate_async`` (e.g. ``on_complete=`` for the UDDI locator).
        """
        if isinstance(query, str):
            query = ServiceQuery(query)
        locator = self.client.locator
        if not hasattr(locator, "locate_async"):
            raise WsPeerError(
                f"locator {type(locator).__name__} has no asynchronous mode"
            )
        locator.locate_async(query, on_found, **kwargs)

    def locate_one(self, query: ServiceQuery | str, timeout: float = 10.0) -> ServiceHandle:
        handles = self.locate(query, timeout=timeout, expect=1)
        if not handles:
            described = query if isinstance(query, str) else query.describe()
            raise DiscoveryError(f"no service found for {described}")
        return handles[0]

    def invoke(
        self,
        handle: ServiceHandle,
        operation: str,
        args: Optional[dict[str, Any]] = None,
        timeout: Optional[float] = 30.0,
        policy: Optional["ReliabilityPolicy"] = None,
        **kwargs: Any,
    ) -> Any:
        return self.client.invocation.invoke(
            handle, operation, args, timeout=timeout, policy=policy, **kwargs
        )

    def invoke_async(
        self,
        handle: ServiceHandle,
        operation: str,
        args: dict[str, Any],
        callback: InvokeCallback,
        timeout: Optional[float] = None,
        policy: Optional["ReliabilityPolicy"] = None,
    ) -> None:
        self.client.invocation.invoke_async(
            handle, operation, args, callback, timeout, policy=policy
        )

    def invoke_oneway(
        self,
        handle: ServiceHandle,
        operation: str,
        args: Optional[dict[str, Any]] = None,
        policy: Optional["ReliabilityPolicy"] = None,
        timeout: Optional[float] = None,
        **kwargs: Any,
    ):
        """Notification-style send through the active invocation node.

        Returns ``None``, or an :class:`~repro.reliability.OnewayStatus`
        when the effective policy requests acknowledgements.
        """
        return self.client.invocation.invoke_oneway(
            handle, operation, args, policy=policy, timeout=timeout, **kwargs
        )

    def create_stub(
        self,
        handle: ServiceHandle,
        timeout: Optional[float] = 30.0,
        policy: Optional["ReliabilityPolicy"] = None,
    ) -> Any:
        return self.client.invocation.create_stub(handle, timeout=timeout, policy=policy)

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def enable_failover(self, config=None, extra_invokers: Optional[dict] = None):
        """Supervise multi-endpoint handles: health-ranked invocation
        with cross-endpoint (and, with *extra_invokers*, cross-binding)
        failover.

        Wires a :class:`~repro.supervision.FailoverExecutor` over the
        client's active invocation node, attaches its circuit breakers
        to the health ranking, and feeds dead/alive verdicts into the
        locator so stale EPRs stop being handed out.  *extra_invokers*
        maps additional URI schemes to invocation nodes (e.g.
        ``{"p2ps": p2ps_invocation}`` on an HTTP-bound peer).  Returns
        the executor, also kept as ``self.failover``.
        """
        from repro.supervision import FailoverConfig, FailoverExecutor, HealthMonitor

        health = HealthMonitor(clock=self._clock)
        executor = FailoverExecutor(
            self.node.network.kernel,
            health,
            parent=self.client,
            config=config if config is not None else FailoverConfig(),
        )
        invocation = self.client.invocation
        schemes = getattr(invocation, "_transports", None)
        if schemes:
            for scheme in schemes:
                executor.register_invoker(scheme, invocation)
        else:
            executor.register_invoker("p2ps", invocation)
        for scheme, invoker in (extra_invokers or {}).items():
            executor.register_invoker(scheme, invoker)
        health.attach_breakers(invocation.breakers)
        if self.client.locator is not None:
            self.client.locator.watch_health(health)
        if self.http_pool is not None:
            self.http_pool.attach_health(health)
        self.failover = executor
        return executor

    # ------------------------------------------------------------------
    # replication (E15)
    # ------------------------------------------------------------------
    def enable_replication(
        self,
        name: str,
        replicas,
        r: int = 2,
        config=None,
        anti_entropy: bool = True,
    ):
        """Replicate the deployed stateful service *name* across *r* of
        the *replicas* peers (each must hold its own deployment of the
        same service).

        The one-line migration for a stateful provider: every
        state-changing execution on any member ships a versioned delta
        to the others over the ordinary transports; a client with
        :meth:`enable_failover` redirects a dead-endpoint call to the
        most-caught-up live member, and the shipped
        ``(MessageID, response)`` pairs keep the redirected
        retransmission at-most-once.  When this peer (or any member
        peer) has a failover executor, it is attached to the group's
        handoff directory automatically.  Returns the
        :class:`~repro.replication.ReplicationGroup`, also kept as
        ``self.replication``.
        """
        from repro.replication import ReplicationGroup

        group = ReplicationGroup.establish(
            self, name, replicas, r=r, config=config
        )
        if anti_entropy:
            group.start_anti_entropy()
        for member in group.members:
            if member.peer.failover is not None:
                member.peer.failover.attach_replication(group)
        if self.failover is not None:
            self.failover.attach_replication(group)
        self.replication = group
        return group

    # ------------------------------------------------------------------
    # distributed discovery (E12)
    # ------------------------------------------------------------------
    def enable_distributed_discovery(
        self,
        plane,
        business_name: str = "WSPeer",
        lease_ttl: Optional[float] = None,
        with_gossip: bool = True,
    ):
        """Route this peer's locate/publish through a
        :class:`~repro.discovery.plane.DiscoveryPlane`.

        Swaps in the plane's locator and publisher (sharded + replicated
        registries, rendezvous cache, gossip freshness) behind the same
        ``locate``/``publish`` calls.  Works in either order with
        :meth:`enable_failover`: whichever comes second finds the other
        already in place, so health verdicts always reach the cache.
        *lease_ttl* puts every publication on a registration lease.
        Returns the peer's :class:`~repro.discovery.DiscoveryClient`,
        also kept as ``self.discovery``.
        """
        return plane.attach(
            self,
            business_name=business_name,
            lease_ttl=lease_ttl,
            with_gossip=with_gossip,
        )

    # ------------------------------------------------------------------
    # connection management (E11)
    # ------------------------------------------------------------------
    def enable_http_keepalive(self, config=None):
        """Use persistent pooled HTTP(G) connections for this peer's
        outbound calls.

        Retries and failover hops reuse warm connections instead of
        paying the connect handshake per attempt; when failover is (or
        later becomes) enabled, ``dead`` health verdicts evict the
        pooled connections to that endpoint.  *config* is an optional
        :class:`~repro.transport.connection.PoolConfig`.  Returns the
        pool, also kept as ``self.http_pool``.
        """
        invocation = self.client.invocation
        if not hasattr(invocation, "enable_http_keepalive"):
            raise WsPeerError(
                f"binding {self.binding.name!r} has no poolable HTTP transport"
            )
        pool = invocation.enable_http_keepalive(config)
        if self.failover is not None:
            pool.attach_health(self.failover.health)
        self.http_pool = pool
        return pool

    def enable_streaming(
        self,
        chunk_threshold: int = 256 * 1024,
        chunk_size: int = 64 * 1024,
        window: int = 8,
        pool_config=None,
    ):
        """Stream large messages as chunked frames (E16).

        Turns on persistent pooled connections (if not already on) and
        sets the chunking knobs on both directions: outbound requests
        larger than *chunk_threshold* bytes leave as credit-windowed
        ``chunk`` frames of *chunk_size* bytes, and this peer's HTTP
        server answers oversized responses the same way.  In-flight
        memory per stream is bounded by ``window × chunk_size``, and
        streamed exchanges do not head-of-line-block pipelined small
        calls.  Returns the connection pool.
        """
        import dataclasses

        pool = self.http_pool
        if pool is None:
            pool = self.enable_http_keepalive(pool_config)
        pool.config = dataclasses.replace(
            pool.config,
            chunk_threshold=chunk_threshold,
            chunk_size=chunk_size,
            stream_window=window,
        )
        server = getattr(self.server.deployer, "server", None)
        if server is not None:
            server.chunk_threshold = chunk_threshold
            server.chunk_size = chunk_size
            server.stream_window = window
        return pool

    _UNSET = object()

    def configure_http_server(
        self,
        max_pending_per_connection=_UNSET,
        drain_rate: Optional[float] = None,
        idle_timeout=_UNSET,
    ):
        """Tune this peer's HTTP server for persistent connections:
        the per-connection request-queue bound (``None`` disables
        shedding), its drain rate (requests/second), and the
        server-side idle timeout.  Applies to connections accepted
        after the call.  Returns the underlying
        :class:`~repro.transport.http.HttpServer`.
        """
        server = getattr(self.server.deployer, "server", None)
        if server is None:
            raise WsPeerError(f"binding {self.binding.name!r} has no HTTP server")
        if max_pending_per_connection is not self._UNSET:
            server.max_pending_per_connection = max_pending_per_connection
        if drain_rate is not None:
            server.conn_drain_rate = drain_rate
        if idle_timeout is not self._UNSET:
            server.conn_idle_timeout = idle_timeout
        return server

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def enable_observability(
        self, tracer=None, codec: bool = False, max_spans: int = 1024,
        propagate: bool = True,
    ):
        """Attach a span tracer at this peer's root.

        Every event the subtree fires is stitched into per-invocation
        span trees keyed by ``wsa:MessageID``.  Pass an existing
        *tracer* to share one store across several peers (client and
        providers), so one tree shows both sides of each exchange;
        ``codec=True`` additionally installs the tracer as the codec
        fast-path recorder.  *propagate* (default on) switches on
        wire trace-context propagation — outbound calls carry a
        ``repro:TraceContext`` header and servers continue the caller's
        trace, so one trace id spans client → primary → replicas
        across nodes.  The switch is process-wide (the sim runs many
        peers in one process); tests flip it back via
        ``tracecontext.reset()``.  Returns the tracer, also kept as
        ``self.tracer``.
        """
        from repro.observability import SpanTracer
        from repro.observability.tracecontext import set_propagation

        if tracer is None:
            tracer = SpanTracer(max_spans=max_spans)
        tracer.install(self, codec=codec)
        self.tracer = tracer
        if propagate:
            set_propagation(True)
        return tracer

    def enable_flight_recorder(self, recorder=None, capacity: int = 512):
        """Attach an always-on flight recorder at this peer's root.

        Keeps a bounded ring of recent events and freezes post-mortem
        dumps on catastrophic kinds (node kills, state divergence,
        breaker opens).  Pass an existing *recorder* to share one ring
        across peers.  Returns the recorder, kept as ``self.flight``.
        """
        from repro.observability.flight import FlightRecorder

        if recorder is None:
            recorder = FlightRecorder(capacity=capacity)
        recorder.install(self)
        self.flight = recorder
        return recorder

    def enable_slo(self, policy=None, engine=None):
        """Attach an SLO engine at this peer's root.

        Client-side invocation events become per-service burn-rate
        health (``engine.report()`` / ``GetSloStatus``).  Returns the
        engine, kept as ``self.slo``.
        """
        from repro.observability.slo import SloEngine

        if engine is None:
            engine = SloEngine(policy=policy)
        engine.install(self)
        self.slo = engine
        return engine

    def enable_cluster_metrics(
        self, registry=None, gossip=None, interval: Optional[float] = None,
    ):
        """Participate in cluster metric aggregation.

        Digests of *registry* (default: the process registry) ride the
        gossip overlay when *gossip* is given — pass *interval* to
        publish periodically on the peer's clock kernel — and the
        introspection service serves the merged view via
        ``GetClusterMetrics`` / ``GetMetricsDigest``.  Returns the
        agent, kept as ``self.cluster_metrics``.
        """
        from repro.observability.cluster import ClusterMetricsAgent

        agent = ClusterMetricsAgent(
            self, registry=registry, gossip=gossip, clock=self._clock,
        )
        self.cluster_metrics = agent
        if interval is not None and gossip is not None:
            agent.start(gossip.node.network.kernel, interval)
        return agent

    def host_introspection(self, name: str = "Introspection", tracer=None):
        """Deploy the peer's self-description service.

        ``GetMetrics`` / ``GetTrace(message_id)`` / ``ListServices``
        become invocable over this peer's binding like any other
        operations — the observability outputs are themselves services
        (the paper's symmetric-peer argument applied to the peer's own
        internals).  Uses ``self.tracer`` (enable observability first
        for trace queries) unless *tracer* is given.  Returns the
        :class:`~repro.core.hosting.DeployedService`.
        """
        from repro.observability import INTROSPECTION_NS, IntrospectionService
        from repro.observability.introspection import OPERATIONS

        service = IntrospectionService(
            self, tracer if tracer is not None else self.tracer
        )
        return self.deploy(
            service,
            name=name,
            namespace=INTROSPECTION_NS,
            include=list(OPERATIONS),
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"<WSPeer {self.name} binding={self.binding.name} "
            f"deployed={self.deployed_services}>"
        )
