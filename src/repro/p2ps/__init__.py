"""P2PS — Peer-to-Peer Simplified (Wang, 2003), rebuilt from the paper.

The original P2PS was a Java library; the WSPeer paper (§IV-B)
describes the two characteristics its binding depends on, and this
package implements both from that description:

1. **Pipes** — abstract, generally unidirectional channels between
   peers identified by *logical* ids.  Creating a pipe requires an
   :class:`EndpointResolver` to turn a logical endpoint into a physical
   one; data is received by adding a listener to an input pipe.
2. **XML advertisements** — :class:`PipeAdvertisement` /
   :class:`ServiceAdvertisement` / :class:`PeerAdvertisement` published
   into the group and matched by queries.  Publish/discovery follows
   the paper's P2P pattern: broadcast within the group, local cache
   match, rendezvous peers caching adverts and propagating queries to
   other rendezvous they know about.

Everything rides the simulated network as real XML frames.
"""

from repro.p2ps.ids import new_peer_id, new_pipe_id, new_query_id
from repro.p2ps.advertisements import (
    AdvertError,
    Advertisement,
    PeerAdvertisement,
    PipeAdvertisement,
    ServiceAdvertisement,
    parse_advertisement,
)
from repro.p2ps.cache import AdvertCache
from repro.p2ps.query import AdvertQuery
from repro.p2ps.pipes import (
    EndpointResolver,
    InputPipe,
    OutputPipe,
    PipeError,
    ResolutionError,
)
from repro.p2ps.peer import Peer
from repro.p2ps.group import PeerGroup

__all__ = [
    "new_peer_id",
    "new_pipe_id",
    "new_query_id",
    "Advertisement",
    "AdvertError",
    "PipeAdvertisement",
    "ServiceAdvertisement",
    "PeerAdvertisement",
    "parse_advertisement",
    "AdvertCache",
    "AdvertQuery",
    "InputPipe",
    "OutputPipe",
    "PipeError",
    "ResolutionError",
    "EndpointResolver",
    "Peer",
    "PeerGroup",
]
