"""Advert queries: how peers express what they are looking for.

P2PS search is *attribute-based*, "as opposed to the key-based search
employed by DHT systems" (§IV, reason 1): a query can match on kind,
name pattern (``%`` wildcards, same dialect as UDDI) and arbitrary
attribute equalities; services are matched against their
ServiceAdvertisement attributes.
"""

from __future__ import annotations

from typing import Optional

from repro.p2ps.advertisements import (
    Advertisement,
    PeerAdvertisement,
    PipeAdvertisement,
    ServiceAdvertisement,
)
from repro.uddi.model import match_name
from repro.xmlkit import Element, QName, ns


def _q(local: str) -> QName:
    return QName(ns.P2PS, local, "p2ps")


class AdvertQuery:
    """A query over advertisements."""

    def __init__(
        self,
        kind: str = "service",
        name_pattern: str = "%",
        attributes: Optional[dict[str, str]] = None,
    ):
        if kind not in ("service", "pipe", "peer"):
            raise ValueError(f"bad query kind {kind!r}")
        self.kind = kind
        self.name_pattern = name_pattern
        self.attributes = dict(attributes or {})

    # ------------------------------------------------------------------
    def matches(self, advert: Advertisement) -> bool:
        if self.kind == "service":
            if not isinstance(advert, ServiceAdvertisement):
                return False
            if not match_name(self.name_pattern, advert.name):
                return False
            return all(
                advert.attributes.get(key) == value
                for key, value in self.attributes.items()
            )
        if self.kind == "pipe":
            return isinstance(advert, PipeAdvertisement) and match_name(
                self.name_pattern, advert.name
            )
        return isinstance(advert, PeerAdvertisement) and match_name(
            self.name_pattern, advert.name or advert.peer_id
        )

    # ------------------------------------------------------------------
    def to_element(self) -> Element:
        root = Element(_q("Query"), nsdecls={"p2ps": ns.P2PS})
        root.set("kind", self.kind)
        root.add(_q("NamePattern"), text=self.name_pattern)
        for key in sorted(self.attributes):
            root.add(_q("Attribute"), text=self.attributes[key], name=key)
        return root

    @classmethod
    def from_element(cls, elem: Element) -> "AdvertQuery":
        attributes = {
            a.get("name"): a.text for a in elem.find_all(_q("Attribute")) if a.get("name")
        }
        return cls(
            elem.get("kind", "service"),
            elem.find_text("NamePattern", "%"),
            attributes,
        )

    def __repr__(self) -> str:
        return f"<AdvertQuery {self.kind} name={self.name_pattern!r} attrs={self.attributes}>"
