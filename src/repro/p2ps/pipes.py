"""Pipes: P2PS's abstract communication channels.

"P2PS peers use abstract communication channels, called pipes ...
peers are identified by a logical id, not physical address ... For a
pipe to be created, the actual endpoints of peers need to be resolved.
P2PS uses an EndpointResolver interface ... Pipes are generally
unidirectional.  The data is retrieved from a pipe by adding an entity
as listener to the pipe." (§IV-B)

An :class:`InputPipe` is a listening endpoint (a port on the owning
peer's node); an :class:`OutputPipe` is the sending half, created by
resolving a :class:`PipeAdvertisement` to a physical node.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from repro.p2ps.advertisements import PipeAdvertisement
from repro.simnet.network import Frame, Node, NodeDownError


class PipeError(Exception):
    """Pipe-level failure."""


class ResolutionError(PipeError):
    """A logical endpoint could not be resolved to a physical one."""


PipeListener = Callable[[str, dict], None]  # (payload, meta)


def pipe_port(pipe_id: str) -> str:
    """The node port an input pipe listens on."""
    return f"pipe:{pipe_id}"


class InputPipe:
    """The receiving end of a pipe, owned by one peer."""

    def __init__(self, advert: PipeAdvertisement, node: Node):
        self.advert = advert
        self.node = node
        self._listeners: list[PipeListener] = []
        self.received = 0
        self.closed = False
        node.open_port(pipe_port(advert.pipe_id), self._on_frame)

    def add_listener(self, listener: PipeListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: PipeListener) -> None:
        self._listeners.remove(listener)

    def _on_frame(self, frame: Frame) -> None:
        self.received += 1
        for listener in list(self._listeners):
            listener(frame.payload, dict(frame.meta))

    def close(self) -> None:
        if not self.closed:
            self.node.close_port(pipe_port(self.advert.pipe_id))
            self.closed = True

    def __repr__(self) -> str:
        return f"<InputPipe {self.advert.name}({self.advert.pipe_id}) listeners={len(self._listeners)}>"


class Route:
    """Where a logical endpoint physically lives.

    ``relay_node`` is set for NATed peers "who may be behind firewalls
    or NAT systems and therefore do not have accessible network
    addresses" (§IV-B): frames go to the relay, which forwards them.
    """

    __slots__ = ("node_id", "relay_node")

    def __init__(self, node_id: str, relay_node: str = ""):
        self.node_id = node_id
        self.relay_node = relay_node

    @property
    def via_relay(self) -> bool:
        return bool(self.relay_node)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Route)
            and (self.node_id, self.relay_node) == (other.node_id, other.relay_node)
        )

    def __repr__(self) -> str:
        via = f" via {self.relay_node}" if self.relay_node else ""
        return f"<Route {self.node_id}{via}>"


RELAY_PORT = "p2ps-relay"


class OutputPipe:
    """The sending end: a resolved physical destination."""

    def __init__(self, advert: PipeAdvertisement, src_node: Node, route: "Route | str"):
        self.advert = advert
        self.src_node = src_node
        self.route = Route(route) if isinstance(route, str) else route
        self.sent = 0

    @property
    def dst_node_id(self) -> str:
        return self.route.node_id

    def send(self, payload: str, **meta) -> None:
        """Fire-and-forget write down the pipe (via the relay if NATed)."""
        port = pipe_port(self.advert.pipe_id)
        try:
            if self.route.via_relay:
                self.src_node.send(
                    self.route.relay_node, RELAY_PORT, payload,
                    fwd_dst=self.route.node_id, fwd_port=port, **meta,
                )
            else:
                self.src_node.send(self.route.node_id, port, payload, **meta)
        except NodeDownError as exc:
            raise PipeError("cannot send: local node is down") from exc
        self.sent += 1

    def __repr__(self) -> str:
        return f"<OutputPipe →{self.advert.pipe_id}@{self.route!r} sent={self.sent}>"


class EndpointResolver(abc.ABC):
    """Resolves a logical pipe endpoint to a physical route."""

    @abc.abstractmethod
    def resolve(self, advert: PipeAdvertisement) -> Route:
        """Return the :class:`Route` to *advert*'s peer.

        Raises :class:`ResolutionError` when the peer is unknown.
        """


class TableEndpointResolver(EndpointResolver):
    """Resolver backed by a peer-id → route table.

    Peers populate the table from the :class:`PeerAdvertisement`\\ s
    they see (piggybacked on every P2PS message), so resolution is a
    local lookup once a peer has been heard from.
    """

    def __init__(self) -> None:
        self._table: dict[str, Route] = {}

    def learn(self, peer_id: str, node_id: str, relay_node: str = "") -> None:
        self._table[peer_id] = Route(node_id, relay_node)

    def forget(self, peer_id: str) -> None:
        self._table.pop(peer_id, None)

    def known(self, peer_id: str) -> bool:
        return peer_id in self._table

    def route_for(self, peer_id: str) -> Optional[Route]:
        return self._table.get(peer_id)

    def resolve(self, advert: PipeAdvertisement) -> Route:
        route = self._table.get(advert.peer_id)
        if route is None:
            raise ResolutionError(
                f"no known endpoint for peer {advert.peer_id!r} "
                f"(pipe {advert.pipe_id!r})"
            )
        return route

    def __len__(self) -> int:
        return len(self._table)
