"""Logical identifier minting.

Sequential rather than random so simulation traces are reproducible.
Peer ids are *logical*: they deliberately do not encode the physical
node, which is the whole point of pipe endpoint resolution.
"""

from __future__ import annotations

import itertools

_peer_counter = itertools.count(1)
_pipe_counter = itertools.count(1)
_query_counter = itertools.count(1)


def new_peer_id(name: str = "") -> str:
    n = next(_peer_counter)
    return f"peer-{name}-{n:04d}" if name else f"peer-{n:04d}"


def new_pipe_id() -> str:
    return f"pipe-{next(_pipe_counter):06d}"


def new_query_id() -> str:
    return f"query-{next(_query_counter):06d}"
