"""Local advertisement cache with virtual-time expiry.

"When a peer receives a query it checks its local cache to see if it
has a match" — this is that cache.  Entries expire after a lifetime so
adverts from departed peers eventually vanish (the P2P answer to
transient connectivity).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.p2ps.advertisements import Advertisement
from repro.p2ps.query import AdvertQuery


class AdvertCache:
    """Keyed advert store: newest advert per key wins, entries expire."""

    def __init__(self, clock: Callable[[], float], lifetime: float = 600.0):
        self._clock = clock
        self.lifetime = lifetime
        self._entries: dict[str, tuple[Advertisement, float]] = {}

    def put(self, advert: Advertisement) -> None:
        self._entries[advert.key()] = (advert, self._clock() + self.lifetime)

    def get(self, key: str) -> Optional[Advertisement]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        advert, expires = entry
        if expires < self._clock():
            del self._entries[key]
            return None
        return advert

    def remove(self, key: str) -> None:
        self._entries.pop(key, None)

    def match(self, query: AdvertQuery) -> list[Advertisement]:
        self.purge()
        return [advert for advert, _ in self._entries.values() if query.matches(advert)]

    def purge(self) -> int:
        """Drop expired entries; returns how many were dropped."""
        now = self._clock()
        stale = [key for key, (_, expires) in self._entries.items() if expires < now]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def __len__(self) -> int:
        self.purge()
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None
