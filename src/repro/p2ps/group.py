"""Peer groups: the broadcast domain of P2PS discovery.

A :class:`PeerGroup` models one group of peers that hear each other's
broadcasts (the LAN-multicast analogue).  Rendezvous peers are members
flagged as gateways; linking two rendezvous peers (possibly in
different groups) builds the overlay across which queries propagate —
"queries can be disseminated among other groups via their rendezvous
peer" (§IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.p2ps.peer import Peer


@dataclass
class Member:
    peer_id: str
    node_id: str
    rendezvous: bool


class PeerGroup:
    """Membership registry for one group."""

    def __init__(self, name: str):
        self.name = name
        self._members: dict[str, Member] = {}

    def join(self, peer: "Peer", rendezvous: bool = False) -> None:
        self._members[peer.id] = Member(peer.id, peer.node.id, rendezvous)

    def leave(self, peer_id: str) -> None:
        self._members.pop(peer_id, None)

    def is_member(self, peer_id: str) -> bool:
        return peer_id in self._members

    def members(self, exclude: str = "") -> list[Member]:
        return [m for m in self._members.values() if m.peer_id != exclude]

    def rendezvous_members(self) -> list[Member]:
        return [m for m in self._members.values() if m.rendezvous]

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:
        return f"<PeerGroup {self.name} members={len(self._members)}>"


def link_rendezvous(a: "Peer", b: "Peer") -> None:
    """Create a bidirectional rendezvous overlay link between two peers."""
    if not a.rendezvous or not b.rendezvous:
        raise ValueError("both peers must be rendezvous peers to link")
    a.add_rendezvous_link(b.id, b.node.id)
    b.add_rendezvous_link(a.id, a.node.id)


def connect_neighbors(a: "Peer", b: "Peer") -> None:
    """Create a bidirectional unstructured-overlay (Gnutella-style) link."""
    a.add_neighbor(b.id, b.node.id)
    b.add_neighbor(a.id, a.node.id)
