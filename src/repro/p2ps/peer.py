"""The P2PS peer: pipes + advertisements + discovery in one entity.

Wire protocol (all frames on the ``p2ps`` port, real XML):

``<p2ps:Message type="advert">``
    Carries advertisements being published.  Broadcast to the group.
``<p2ps:Message type="query" id=... ttl=...>``
    Carries an :class:`AdvertQuery`.  Broadcast to the group; rendezvous
    peers forward to their linked rendezvous while TTL lasts.
``<p2ps:Message type="response" id=...>``
    Carries adverts matching a query, unicast straight back to the
    querying peer's node.

Every message embeds the sender's :class:`PeerAdvertisement`, so any
peer that hears from another can thereafter resolve its pipes — the
paper's EndpointResolver in action.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.p2ps.advertisements import (
    Advertisement,
    PeerAdvertisement,
    PipeAdvertisement,
    ServiceAdvertisement,
    parse_advertisement,
)
from repro.p2ps.cache import AdvertCache
from repro.p2ps.group import PeerGroup
from repro.p2ps.ids import new_peer_id, new_pipe_id, new_query_id
from repro.p2ps.pipes import (
    RELAY_PORT,
    InputPipe,
    OutputPipe,
    PipeListener,
    ResolutionError,
    TableEndpointResolver,
)
from repro.simnet.faults import NatGate
from repro.p2ps.query import AdvertQuery
from repro.simnet.kernel import ScheduledEvent, SimTimeoutError
from repro.simnet.network import Frame, Network, Node, NodeDownError
from repro.xmlkit import Element, QName, ns, parse, serialize

P2PS_PORT = "p2ps"
DEFAULT_TTL = 4


def _q(local: str) -> QName:
    return QName(ns.P2PS, local, "p2ps")


class QueryHandle:
    """Accumulates discovery results for one outstanding query."""

    def __init__(self, query_id: str, query: AdvertQuery, peer: "Peer"):
        self.query_id = query_id
        self.query = query
        self.peer = peer
        self.results: list[Advertisement] = []
        self._seen_keys: set[str] = set()
        self._callbacks: list[Callable[[Advertisement], None]] = []

    def on_result(self, callback: Callable[[Advertisement], None]) -> None:
        self._callbacks.append(callback)
        for advert in self.results:  # deliver already-known results too
            callback(advert)

    def _offer(self, advert: Advertisement) -> None:
        key = advert.key()
        if key in self._seen_keys:
            return
        self._seen_keys.add(key)
        self.results.append(advert)
        for callback in list(self._callbacks):
            callback(advert)

    def wait_for(self, count: int = 1, timeout: float = 10.0) -> list[Advertisement]:
        """Pump the kernel until *count* results arrived (or timeout).

        Returns whatever has been collected; raising is left to callers
        that require a minimum.
        """
        kernel = self.peer.network.kernel
        try:
            kernel.pump_until(lambda: len(self.results) >= count, timeout=timeout)
        except SimTimeoutError:
            pass
        return list(self.results)

    def __repr__(self) -> str:
        return f"<QueryHandle {self.query_id} results={len(self.results)}>"


class Peer:
    """A P2PS peer bound to one network node."""

    def __init__(
        self,
        node: Node,
        name: str = "",
        rendezvous: bool = False,
        cache_lifetime: float = 600.0,
        default_ttl: int = DEFAULT_TTL,
        nat: bool = False,
        relay: Optional["Peer"] = None,
    ):
        self.node = node
        self.name = name or node.id
        self.id = new_peer_id(self.name)
        self.rendezvous = rendezvous
        self.default_ttl = default_ttl
        self.network: Network = node.network
        # NAT/firewall support (§IV-B): a NATed peer has no reachable
        # address; inbound traffic must ride sessions it opened itself
        # or go through its relay peer.
        self.nat_gate: Optional[NatGate] = NatGate(self.network, node.id) if nat else None
        self.relay_node_id = relay.node.id if relay is not None else ""
        if nat and relay is None:
            raise ValueError("a NATed peer needs a relay peer to be reachable")
        self.cache = AdvertCache(lambda: self.network.kernel.now, cache_lifetime)
        self.resolver = TableEndpointResolver()
        self.group: Optional[PeerGroup] = None
        self._rendezvous_links: dict[str, str] = {}  # peer_id -> node_id
        # Gnutella-style unstructured overlay (§II): when neighbours are
        # configured, broadcasts go to them instead of the whole group,
        # and every peer (not just rendezvous) forwards queries hop by
        # hop while TTL lasts.
        self.neighbors: dict[str, str] = {}  # peer_id -> node_id
        self._input_pipes: dict[str, InputPipe] = {}
        self._queries: dict[str, QueryHandle] = {}
        self._seen_queries: set[str] = set()
        self.messages_handled = 0
        self.relayed_frames = 0
        node.open_port(P2PS_PORT, self._on_message)
        # every peer offers relay forwarding; NATed peers pick one
        node.open_port(RELAY_PORT, self._on_relay_frame)
        if relay is not None:
            # an outbound hello opens the NAT session so the relay's
            # forwarded frames can reach us
            self._safe_send(self.relay_node_id, serialize(self._message("hello", [])))
        # a peer always caches (and can serve) its own advertisement
        self.cache.put(self.advertisement())
        self.resolver.learn(self.id, node.id, self.relay_node_id)

    # ------------------------------------------------------------------
    # identity and membership
    # ------------------------------------------------------------------
    def advertisement(self) -> PeerAdvertisement:
        return PeerAdvertisement(
            self.id, self.node.id, self.name, self.rendezvous, self.relay_node_id
        )

    def join(self, group: PeerGroup) -> None:
        group.join(self, rendezvous=self.rendezvous)
        self.group = group

    def leave(self) -> None:
        if self.group is not None:
            self.group.leave(self.id)
            self.group = None

    def add_rendezvous_link(self, peer_id: str, node_id: str) -> None:
        self._rendezvous_links[peer_id] = node_id
        self.resolver.learn(peer_id, node_id)

    def add_neighbor(self, peer_id: str, node_id: str) -> None:
        """Join the unstructured overlay: *peer_id* becomes a direct
        neighbour; messages flood along such links."""
        self.neighbors[peer_id] = node_id
        self.resolver.learn(peer_id, node_id)

    @property
    def uses_flooding(self) -> bool:
        return bool(self.neighbors)

    # ------------------------------------------------------------------
    # pipes
    # ------------------------------------------------------------------
    def create_input_pipe(
        self,
        name: str,
        service_name: str = "",
        listener: Optional[PipeListener] = None,
    ) -> tuple[InputPipe, PipeAdvertisement]:
        """Create a listening pipe and its advertisement.

        The paper's request flow step 1: "Request input pipe and
        corresponding pipe advertisement from P2PS".
        """
        advert = PipeAdvertisement(
            new_pipe_id(), name, self.id, "input", service_name
        )
        pipe = InputPipe(advert, self.node)
        # learn the sender's location from every frame before user code runs
        pipe.add_listener(self._learn_from_pipe_meta)
        if listener is not None:
            pipe.add_listener(listener)
        self._input_pipes[advert.pipe_id] = pipe
        self.cache.put(advert)
        return pipe, advert

    def _learn_from_pipe_meta(self, payload: str, meta: dict) -> None:
        origin_peer = meta.get("origin_peer")
        origin_node = meta.get("origin_node")
        if origin_peer and origin_node:
            self.resolver.learn(
                str(origin_peer), str(origin_node), str(meta.get("origin_relay", ""))
            )

    def close_input_pipe(self, pipe_id: str) -> None:
        pipe = self._input_pipes.pop(pipe_id, None)
        if pipe is not None:
            pipe.close()
            self.cache.remove(f"pipe:{pipe_id}")

    def open_output_pipe(self, advert: PipeAdvertisement) -> OutputPipe:
        """Resolve *advert* and return the sending end.

        Raises :class:`ResolutionError` for peers never heard from.
        """
        node_id = self.resolver.resolve(advert)
        return OutputPipe(advert, self.node, node_id)

    def send_down_pipe(self, pipe: OutputPipe, payload: str, **meta) -> None:
        """Send with origin metadata so the far side can resolve us back."""
        meta.setdefault("origin_peer", self.id)
        meta.setdefault("origin_node", self.node.id)
        if self.relay_node_id:
            meta.setdefault("origin_relay", self.relay_node_id)
        pipe.send(payload, **meta)

    def _on_relay_frame(self, frame: Frame) -> None:
        """Forward a relayed pipe frame to its NATed destination."""
        fwd_dst = frame.meta.get("fwd_dst")
        fwd_port = frame.meta.get("fwd_port")
        if not fwd_dst or not fwd_port:
            return
        meta = {k: v for k, v in frame.meta.items() if k not in ("fwd_dst", "fwd_port")}
        self.relayed_frames += 1
        try:
            self.node.send(str(fwd_dst), str(fwd_port), frame.payload, **meta)
        except NodeDownError:
            pass

    # ------------------------------------------------------------------
    # publish / discover
    # ------------------------------------------------------------------
    def publish(self, advert: Advertisement) -> None:
        """Cache locally and broadcast to the group."""
        self.cache.put(advert)
        self._learn_from_advert(advert)
        self._broadcast(self._message("advert", [advert.to_element()]))

    def publish_service(
        self,
        name: str,
        pipe_names: list[str],
        definition_pipe: str = "",
        attributes: Optional[dict[str, str]] = None,
    ) -> ServiceAdvertisement:
        """Convenience: build + publish a service advert over existing pipes."""
        pipes = []
        for pipe in self._input_pipes.values():
            if pipe.advert.name in pipe_names and pipe.advert.service_name == name:
                pipes.append(pipe.advert)
        advert = ServiceAdvertisement(name, self.id, pipes, definition_pipe, attributes)
        self.publish(advert)
        return advert

    def start_republisher(self, interval: float) -> "ScheduledEvent":
        """Periodically rebroadcast our own cached adverts.

        The soft-state remedy (see ablation AB3): cache entries expire
        everywhere after their lifetime, so a live peer must republish
        to stay discoverable.  Returns the first scheduled event; cancel
        it to stop the cycle.
        """
        if interval <= 0:
            raise ValueError("republish interval must be positive")

        def republish() -> None:
            if not self.node.up:
                return  # downed peers stay silent; restart re-schedules nothing
            own = [
                advert
                for advert, _ in list(self.cache._entries.values())
                if getattr(advert, "peer_id", None) == self.id
            ]
            for advert in own:
                self.publish(advert)
            self._republish_event = self.network.kernel.schedule(interval, republish)

        self._republish_event = self.network.kernel.schedule(interval, republish)
        return self._republish_event

    def stop_republisher(self) -> None:
        event = getattr(self, "_republish_event", None)
        if event is not None:
            event.cancel()
            self._republish_event = None

    def discover(
        self,
        query: AdvertQuery,
        ttl: Optional[int] = None,
    ) -> QueryHandle:
        """Start a discovery: local cache first, then the network."""
        query_id = new_query_id()
        handle = QueryHandle(query_id, query, self)
        self._queries[query_id] = handle
        for advert in self.cache.match(query):
            handle._offer(advert)
        message = self._message("query", [query.to_element()])
        message.set("id", query_id)
        message.set("ttl", str(ttl if ttl is not None else self.default_ttl))
        self._seen_queries.add(query_id)
        self._broadcast(message)
        return handle

    # ------------------------------------------------------------------
    # wire protocol
    # ------------------------------------------------------------------
    def _message(self, msg_type: str, payload: list[Element]) -> Element:
        root = Element(_q("Message"), nsdecls={"p2ps": ns.P2PS})
        root.set("type", msg_type)
        origin = root.add(_q("Origin"))
        origin.append(self.advertisement().to_element())
        body = root.add(_q("Payload"))
        for elem in payload:
            body.append(elem)
        return root

    def _broadcast(self, message: Element) -> None:
        text = serialize(message)
        if self.neighbors:
            for node_id in self.neighbors.values():
                self._safe_send(node_id, text)
            return
        if self.group is None:
            return
        for member in self.group.members(exclude=self.id):
            self._safe_send(member.node_id, text)

    def _forward_to_rendezvous(self, message: Element, exclude_node: str) -> None:
        text = serialize(message)
        for node_id in self._rendezvous_links.values():
            if node_id != exclude_node:
                self._safe_send(node_id, text)

    def _safe_send(self, node_id: str, text: str) -> None:
        try:
            self.node.send(node_id, P2PS_PORT, text)
        except NodeDownError:
            pass  # we are down; nothing to do

    def _on_message(self, frame: Frame) -> None:
        self.messages_handled += 1
        try:
            root = parse(frame.payload)
        except Exception:  # noqa: BLE001 - hostile/corrupt frames are dropped
            self.network.trace.emit(
                self.network.kernel.now, "p2ps-malformed", node=self.node.id,
                src=frame.src,
            )
            return
        msg_type = root.get("type", "")
        origin_elem = root.find(_q("Origin"))
        if origin_elem is not None and origin_elem.children:
            try:
                origin = PeerAdvertisement.from_element(origin_elem.children[0])
                self.resolver.learn(origin.peer_id, origin.node_id, origin.relay_node)
                self.cache.put(origin)
            except Exception:
                origin = None
        else:
            origin = None
        payload = root.find(_q("Payload"))
        payload_children = payload.children if payload is not None else []

        if msg_type == "advert":
            for child in payload_children:
                try:
                    advert = parse_advertisement(child)
                except Exception:
                    continue
                self.cache.put(advert)
                self._learn_from_advert(advert)
        elif msg_type == "query":
            self._handle_query(root, payload_children, origin, frame)
        elif msg_type == "response":
            self._handle_response(root, payload_children)

    def _learn_from_advert(self, advert: Advertisement) -> None:
        if isinstance(advert, PeerAdvertisement):
            self.resolver.learn(advert.peer_id, advert.node_id, advert.relay_node)

    def _handle_query(
        self,
        root: Element,
        payload_children: list[Element],
        origin: Optional[PeerAdvertisement],
        frame: Frame,
    ) -> None:
        query_id = root.get("id", "")
        if not query_id or query_id in self._seen_queries:
            return  # loop suppression
        self._seen_queries.add(query_id)
        if not payload_children:
            return
        query = AdvertQuery.from_element(payload_children[0])
        matches = self.cache.match(query)
        if matches and origin is not None:
            elements = [m.to_element() for m in matches]
            # attach the advertised peers' own adverts so the querier can
            # resolve their pipe endpoints even when we (not they) answer
            attached: set[str] = set()
            for match in matches:
                peer_id = getattr(match, "peer_id", "")
                if peer_id and peer_id not in attached:
                    peer_advert = self.cache.get(f"peer:{peer_id}")
                    if peer_advert is not None:
                        elements.append(peer_advert.to_element())
                        attached.add(peer_id)
            response = self._message("response", elements)
            response.set("id", query_id)
            self._safe_send(origin.node_id, serialize(response))
        # propagation: rendezvous bridge groups; in the unstructured
        # overlay every peer floods to its neighbours (Gnutella-style)
        ttl = int(root.get("ttl", "0"))
        if ttl > 1:
            forwarded = root.copy()
            forwarded.set("ttl", str(ttl - 1))
            if self.rendezvous:
                self._forward_to_rendezvous(forwarded, exclude_node=frame.src)
            if self.neighbors:
                text = serialize(forwarded)
                for node_id in self.neighbors.values():
                    if node_id != frame.src:
                        self._safe_send(node_id, text)

    def _handle_response(self, root: Element, payload_children: list[Element]) -> None:
        query_id = root.get("id", "")
        handle = self._queries.get(query_id)
        for child in payload_children:
            try:
                advert = parse_advertisement(child)
            except Exception:
                continue
            self.cache.put(advert)
            self._learn_from_advert(advert)
            if handle is not None and handle.query.matches(advert):
                handle._offer(advert)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        rdv = " rendezvous" if self.rendezvous else ""
        return f"<Peer {self.id}@{self.node.id}{rdv}>"
