"""XML advertisements: how P2PS exposes peers, pipes and services.

"P2PS peers use XML advertisements to represent the various services
available to the network and corresponding queries to discover these
services" (§IV-B).  Three kinds exist here:

- :class:`PeerAdvertisement` — a peer's logical id plus the transport
  address of its host node (what endpoint resolution consumes);
- :class:`PipeAdvertisement` — "essentially a named endpoint", the
  logical id + name + direction of one pipe;
- :class:`ServiceAdvertisement` — "simply a collection of named
  PipeAdvertisements", extended per the paper with a *definition pipe*
  "from which the service definition (WSDL in our case) can be
  retrieved" and arbitrary attribute metadata to support
  attribute-based search.
"""

from __future__ import annotations

from typing import Optional

from repro.xmlkit import Element, QName, ns, parse, serialize

P2PS_NS = ns.P2PS


class AdvertError(ValueError):
    """Malformed advertisement XML."""


def _q(local: str) -> QName:
    return QName(P2PS_NS, local, "p2ps")


class Advertisement:
    """Base class: every advert serialises to namespaced XML."""

    kind = "advert"

    def to_element(self) -> Element:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_wire(self) -> str:
        return serialize(self.to_element())

    def key(self) -> str:  # pragma: no cover - abstract
        """Cache/dedup key."""
        raise NotImplementedError


class PeerAdvertisement(Advertisement):
    kind = "peer"

    def __init__(
        self,
        peer_id: str,
        node_id: str,
        name: str = "",
        rendezvous: bool = False,
        relay_node: str = "",
    ):
        if not peer_id or not node_id:
            raise AdvertError("PeerAdvertisement needs peer_id and node_id")
        self.peer_id = peer_id
        self.node_id = node_id
        self.name = name
        self.rendezvous = rendezvous
        # for NATed peers: the reachable node that forwards to us
        self.relay_node = relay_node

    def key(self) -> str:
        return f"peer:{self.peer_id}"

    def to_element(self) -> Element:
        root = Element(_q("PeerAdvertisement"), nsdecls={"p2ps": P2PS_NS})
        root.add(_q("PeerId"), text=self.peer_id)
        root.add(_q("NodeId"), text=self.node_id)
        if self.name:
            root.add(_q("Name"), text=self.name)
        if self.rendezvous:
            root.add(_q("Rendezvous"), text="true")
        if self.relay_node:
            root.add(_q("RelayNode"), text=self.relay_node)
        return root

    @classmethod
    def from_element(cls, elem: Element) -> "PeerAdvertisement":
        peer_id = elem.find_text("PeerId")
        node_id = elem.find_text("NodeId")
        if not peer_id or not node_id:
            raise AdvertError("PeerAdvertisement missing PeerId/NodeId")
        return cls(
            peer_id,
            node_id,
            elem.find_text("Name"),
            elem.find_text("Rendezvous") == "true",
            elem.find_text("RelayNode"),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PeerAdvertisement)
            and (self.peer_id, self.node_id, self.name, self.rendezvous, self.relay_node)
            == (other.peer_id, other.node_id, other.name, other.rendezvous, other.relay_node)
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        rdv = " rdv" if self.rendezvous else ""
        return f"<PeerAdvertisement {self.peer_id}@{self.node_id}{rdv}>"


class PipeAdvertisement(Advertisement):
    """A named endpoint.  ``pipe_type`` is 'input' (receives) or
    'output'; ``service_name`` ties it to a ServiceAdvertisement ('' for
    bare pipes such as reply channels)."""

    kind = "pipe"

    def __init__(
        self,
        pipe_id: str,
        name: str,
        peer_id: str,
        pipe_type: str = "input",
        service_name: str = "",
    ):
        if not pipe_id or not peer_id:
            raise AdvertError("PipeAdvertisement needs pipe_id and peer_id")
        if pipe_type not in ("input", "output"):
            raise AdvertError(f"bad pipe type {pipe_type!r}")
        self.pipe_id = pipe_id
        self.name = name
        self.peer_id = peer_id
        self.pipe_type = pipe_type
        self.service_name = service_name

    def key(self) -> str:
        return f"pipe:{self.pipe_id}"

    def to_element(self) -> Element:
        root = Element(_q("PipeAdvertisement"), nsdecls={"p2ps": P2PS_NS})
        root.add(_q("PipeId"), text=self.pipe_id)
        root.add(_q("Name"), text=self.name)
        root.add(_q("PeerId"), text=self.peer_id)
        root.add(_q("Type"), text=self.pipe_type)
        if self.service_name:
            root.add(_q("ServiceName"), text=self.service_name)
        return root

    @classmethod
    def from_element(cls, elem: Element) -> "PipeAdvertisement":
        pipe_id = elem.find_text("PipeId")
        peer_id = elem.find_text("PeerId")
        if not pipe_id or not peer_id:
            raise AdvertError("PipeAdvertisement missing PipeId/PeerId")
        return cls(
            pipe_id,
            elem.find_text("Name"),
            peer_id,
            elem.find_text("Type", "input"),
            elem.find_text("ServiceName"),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PipeAdvertisement)
            and (self.pipe_id, self.name, self.peer_id, self.pipe_type, self.service_name)
            == (other.pipe_id, other.name, other.peer_id, other.pipe_type, other.service_name)
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"<PipeAdvertisement {self.name}({self.pipe_id}) of {self.peer_id}>"


class ServiceAdvertisement(Advertisement):
    """A named collection of pipe adverts, plus WSPeer's extensions.

    ``definition_pipe`` names the pipe serving the WSDL document;
    ``attributes`` carries arbitrary metadata for attribute-based
    search (the capability the paper prefers over DHT key lookup).
    """

    kind = "service"

    def __init__(
        self,
        name: str,
        peer_id: str,
        pipes: Optional[list[PipeAdvertisement]] = None,
        definition_pipe: str = "",
        attributes: Optional[dict[str, str]] = None,
    ):
        if not name or not peer_id:
            raise AdvertError("ServiceAdvertisement needs name and peer_id")
        self.name = name
        self.peer_id = peer_id
        self.pipes = list(pipes or [])
        self.definition_pipe = definition_pipe
        self.attributes = dict(attributes or {})

    def key(self) -> str:
        return f"service:{self.peer_id}:{self.name}"

    def pipe_named(self, name: str) -> Optional[PipeAdvertisement]:
        for pipe in self.pipes:
            if pipe.name == name:
                return pipe
        return None

    def to_element(self) -> Element:
        root = Element(_q("ServiceAdvertisement"), nsdecls={"p2ps": P2PS_NS})
        root.add(_q("Name"), text=self.name)
        root.add(_q("PeerId"), text=self.peer_id)
        if self.definition_pipe:
            root.add(_q("DefinitionPipe"), text=self.definition_pipe)
        if self.attributes:
            attrs = root.add(_q("Attributes"))
            for key in sorted(self.attributes):
                attrs.add(_q("Attribute"), text=self.attributes[key], name=key)
        for pipe in self.pipes:
            root.append(pipe.to_element())
        return root

    @classmethod
    def from_element(cls, elem: Element) -> "ServiceAdvertisement":
        name = elem.find_text("Name")
        peer_id = elem.find_text("PeerId")
        if not name or not peer_id:
            raise AdvertError("ServiceAdvertisement missing Name/PeerId")
        pipes = [
            PipeAdvertisement.from_element(p)
            for p in elem.find_all(_q("PipeAdvertisement"))
        ]
        attributes: dict[str, str] = {}
        attrs_elem = elem.find(_q("Attributes"))
        if attrs_elem is not None:
            for a in attrs_elem.find_all(_q("Attribute")):
                key = a.get("name")
                if key:
                    attributes[key] = a.text
        return cls(name, peer_id, pipes, elem.find_text("DefinitionPipe"), attributes)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ServiceAdvertisement)
            and (self.name, self.peer_id, self.definition_pipe, self.attributes)
            == (other.name, other.peer_id, other.definition_pipe, other.attributes)
            and self.pipes == other.pipes
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"<ServiceAdvertisement {self.name} of {self.peer_id} pipes={len(self.pipes)}>"


_KINDS = {
    "PeerAdvertisement": PeerAdvertisement,
    "PipeAdvertisement": PipeAdvertisement,
    "ServiceAdvertisement": ServiceAdvertisement,
}


def parse_advertisement(source: str | Element) -> Advertisement:
    """Parse any advertisement kind from text or an element."""
    elem = parse(source) if isinstance(source, str) else source
    cls = _KINDS.get(elem.name.local)
    if cls is None or elem.name.uri != P2PS_NS:
        raise AdvertError(f"not a P2PS advertisement: {elem.name}")
    return cls.from_element(elem)
