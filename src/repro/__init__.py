"""WSPeer reproduction — an interface to Web service hosting and invocation.

A from-scratch Python reproduction of Harrison & Taylor, "WSPeer — An
Interface to Web Service Hosting and Invocation" (IPPS 2005).  See
README.md for the tour and DESIGN.md for the per-subsystem inventory.

The most common entry points are re-exported here::

    from repro import WSPeer, StandardBinding, P2psBinding, Network

    net = Network()
    peer = WSPeer(net.add_node("me"), StandardBinding(registry_uri))
"""

from repro.core.binding import Binding, P2psBinding, StandardBinding
from repro.core.events import PeerMessageListener
from repro.core.handle import ServiceHandle
from repro.core.query import P2PSServiceQuery, ServiceQuery, UDDIServiceQuery
from repro.core.wspeer import WSPeer
from repro.p2ps.group import PeerGroup
from repro.simnet.network import Network
from repro.uddi.service import UddiRegistryNode

__version__ = "1.0.0"

__all__ = [
    "WSPeer",
    "Binding",
    "StandardBinding",
    "P2psBinding",
    "PeerMessageListener",
    "ServiceHandle",
    "ServiceQuery",
    "UDDIServiceQuery",
    "P2PSServiceQuery",
    "PeerGroup",
    "Network",
    "UddiRegistryNode",
    "__version__",
]
