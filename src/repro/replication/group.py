"""The replication group: membership, delta shipping, anti-entropy.

A :class:`ReplicationGroup` binds one service name across ``r + 1``
peers that each hold a live deployment of the service.  It owns:

- **shipping** — fan-out of every delta from the executing member to
  the others, over the ordinary client invocation stack with an E7
  retry policy (so a dropped ship frame retransmits, and the replica's
  idempotent store makes the duplicate harmless);
- **the directory** — address → caught-up score, consulted by the
  :class:`~repro.supervision.failover.FailoverExecutor` so a redirected
  call prefers the member holding the most history;
- **anti-entropy** — a periodic pull (high-water compare → delta
  suffix fetch → snapshot fallback past the compaction floor) that
  re-converges members that missed ships while down, under sequence
  dominance (a restarted primary's un-shipped branch is discarded in
  favour of the longer surviving history);
- **metrics** — a ``replication.<service>`` collector (delta lag,
  handoffs, snapshot bytes, per-member stores) for the E10 registry.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.core.handle import ServiceHandle
from repro.observability import metrics as obs_metrics
from repro.observability.tracecontext import (
    current_context as trace_current_context,
    event_fields as trace_event_fields,
)
from repro.replication.member import ReplicationConfig, ReplicationMember
from repro.replication.state import StateDelta, StateSnapshot


class ReplicationGroup:
    """All members replicating one service."""

    def __init__(self, service_name: str, config: Optional[ReplicationConfig] = None):
        self.service_name = service_name
        self.config = config or ReplicationConfig()
        self.members: list[ReplicationMember] = []
        self._by_address: dict[str, ReplicationMember] = {}
        self._port_handles: dict[str, ServiceHandle] = {}
        #: node_id -> session -> acked high water (learned from ship acks)
        self.acked: dict[str, dict[str, int]] = {}
        self.ships_sent = 0
        self.ship_failures = 0
        self._anti_entropy_timer = None
        self._kernel = None

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @classmethod
    def establish(
        cls,
        primary,
        service_name: str,
        replicas,
        r: int = 2,
        config: Optional[ReplicationConfig] = None,
    ) -> "ReplicationGroup":
        """Build a group over *primary* plus the first *r* of *replicas*.

        Every peer must already hold a live deployment of
        *service_name*; replication attaches to those deployments
        rather than cloning objects across peers.
        """
        config = config or ReplicationConfig(r=r)
        group = cls(service_name, config)
        for peer in [primary, *list(replicas)[:r]]:
            group.add_member(peer)
        group._kernel = primary.node.network.kernel
        obs_metrics.default_registry().add_collector(
            f"replication.{service_name}", group.stats
        )
        return group

    def add_member(self, peer) -> ReplicationMember:
        deployed = peer.server.container.require(self.service_name)
        instance = self._instance_of(deployed)
        member = ReplicationMember(self, peer, deployed, instance, self.config)
        deployed.replication = member
        self.members.append(member)
        for address in member.addresses:
            self._by_address[address] = member
        self._port_handles[member.node_id] = peer.local_handle(member.port_name)
        self.acked.setdefault(member.node_id, {})
        return member

    @staticmethod
    def _instance_of(deployed) -> Any:
        """The single live object behind every operation of *deployed*."""
        targets = {id(op.target): op.target for op in deployed.service.operations.values()}
        if len(targets) != 1:
            raise ValueError(
                f"service {deployed.name!r} maps operations onto "
                f"{len(targets)} objects; replication needs exactly one "
                "stateful instance per deployment"
            )
        return next(iter(targets.values()))

    def member_for(self, peer) -> Optional[ReplicationMember]:
        for member in self.members:
            if member.peer is peer:
                return member
        return None

    # ------------------------------------------------------------------
    # the handoff directory (consulted by FailoverExecutor)
    # ------------------------------------------------------------------
    def caught_up(self, address: str) -> Optional[int]:
        """The caught-up score of the member serving *address*
        (``None`` when the address is not a group member's)."""
        member = self._by_address.get(address)
        if member is None:
            return None
        return member.store.total_applied

    def handle(self) -> ServiceHandle:
        """One multi-endpoint handle spanning every member — what a
        failover-enabled client invokes against."""
        endpoints = []
        for member in self.members:
            endpoints.extend(member.deployed.endpoints)
        return ServiceHandle(
            self.service_name,
            self.members[0].deployed.wsdl(),
            endpoints,
            source="replicated",
        )

    def publish(self, **kwargs: Any) -> None:
        """Advertise every member's endpoints through its own publisher,
        so discovery hands out replica endpoints alongside the primary's."""
        for member in self.members:
            member.peer.publish(member.deployed, **kwargs)

    # ------------------------------------------------------------------
    # delta shipping (primary -> replicas)
    # ------------------------------------------------------------------
    def ship(self, origin: ReplicationMember, delta: StateDelta) -> None:
        payload = delta.to_json()
        for target in self.members:
            if target is origin:
                continue
            self._ship_one(origin, target, delta, payload)

    def _ship_one(
        self,
        origin: ReplicationMember,
        target: ReplicationMember,
        delta: StateDelta,
        payload: str,
    ) -> None:
        handle = self._port_handles[target.node_id]
        self.ships_sent += 1
        origin.deltas_shipped += 1
        obs_metrics.inc("replication.deltas_shipped")
        # Ships run synchronously inside the primary's request-processing
        # window, so the ambient context here is the server span of the
        # call that produced the delta — the ship's own invocation picks
        # it up the same way; tagging the event makes the fan-out visible
        # in the (distributed) span tree without re-parsing wires.
        origin.fire_server(
            "delta-shipped",
            service=self.service_name,
            session=delta.session,
            seq=delta.seq,
            target=target.node_id,
            message_id=delta.message_id,
            **trace_event_fields(trace_current_context()),
        )

        def on_done(result: Any, error: Optional[Exception]) -> None:
            if error is not None:
                self.ship_failures += 1
                origin.ship_failures += 1
                obs_metrics.inc("replication.ship_failures")
                origin.fire_server(
                    "delta-ship-failed",
                    service=self.service_name,
                    session=delta.session,
                    seq=delta.seq,
                    target=target.node_id,
                    reason=str(error),
                    message_id=delta.message_id,
                )
                return
            try:
                ack = json.loads(result)
            except (TypeError, ValueError):
                return
            session_acks = self.acked.setdefault(target.node_id, {})
            seq = int(ack.get("high_water", 0))
            if seq > session_acks.get(delta.session, 0):
                session_acks[delta.session] = seq

        try:
            origin.peer.client.invocation.invoke_async(
                handle,
                "apply_delta",
                {"delta": payload},
                on_done,
                self.config.ship_timeout,
                policy=self.config.ship_policy(),
            )
        except Exception as exc:  # noqa: BLE001 - dying-origin boundary
            on_done(None, exc)

    # ------------------------------------------------------------------
    # anti-entropy (periodic pull + sequence dominance)
    # ------------------------------------------------------------------
    def start_anti_entropy(self, interval: Optional[float] = None):
        """Run the convergence pull every *interval* virtual seconds."""
        period = interval if interval is not None else self.config.anti_entropy_interval
        if period <= 0 or self._kernel is None:
            return None

        def tick() -> None:
            self.run_anti_entropy()
            self._anti_entropy_timer = self._kernel.schedule(period, tick)

        self._anti_entropy_timer = self._kernel.schedule(period, tick)
        return self._anti_entropy_timer

    def stop_anti_entropy(self) -> None:
        timer = self._anti_entropy_timer
        self._anti_entropy_timer = None
        if timer is not None and hasattr(timer, "cancel"):
            timer.cancel()

    def run_anti_entropy(self) -> None:
        """One pull round: every live member compares high waters with
        every other live member and catches up where it is behind."""
        for puller in self.members:
            if not puller.peer.node.up:
                continue
            for source in self.members:
                if source is puller or not source.peer.node.up:
                    continue
                self._pull(puller, source)

    def _pull(self, puller: ReplicationMember, source: ReplicationMember) -> None:
        handle = self._port_handles[source.node_id]

        def on_high_water(result: Any, error: Optional[Exception]) -> None:
            if error is not None or result is None:
                return
            try:
                remote = {s: int(v) for s, v in json.loads(result).items()}
            except (TypeError, ValueError):
                return
            for session, remote_hw in remote.items():
                local_hw = puller.store.high_water(session)
                if remote_hw > local_hw:
                    self._catch_up(puller, source, handle, session, local_hw)

        self._invoke(puller, handle, "high_water", {}, on_high_water)

    def _catch_up(
        self,
        puller: ReplicationMember,
        source: ReplicationMember,
        handle: ServiceHandle,
        session: str,
        local_hw: int,
    ) -> None:
        if puller.store.is_diverged(session):
            # dominance resolution needs the full winning state
            self._fetch_snapshot(puller, handle, session)
            return

        def on_deltas(result: Any, error: Optional[Exception]) -> None:
            if error is not None or result is None:
                return
            try:
                payload = json.loads(result)
            except (TypeError, ValueError):
                return
            if payload.get("compacted"):
                self._fetch_snapshot(puller, handle, session)
                return
            applied_any = False
            for delta_json in payload.get("deltas", ()):
                verdict = json.loads(puller.handle_apply(delta_json))["verdict"]
                if verdict == "applied":
                    applied_any = True
                elif verdict == "diverged":
                    # our branch conflicts; next round pulls the snapshot
                    return
            if applied_any:
                self._mark_resynced(puller, session)

        self._invoke(
            puller, handle, "fetch_deltas",
            {"session": session, "since": local_hw}, on_deltas,
        )

    def _fetch_snapshot(
        self, puller: ReplicationMember, handle: ServiceHandle, session: str
    ) -> None:
        def on_snapshot(result: Any, error: Optional[Exception]) -> None:
            if error is not None or result is None:
                return
            snap = StateSnapshot.from_json(result)
            if puller.install_snapshot(snap):
                self._mark_resynced(puller, session)

        self._invoke(
            puller, handle, "fetch_snapshot", {"session": session}, on_snapshot
        )

    def _mark_resynced(self, puller: ReplicationMember, session: str) -> None:
        puller.resyncs += 1
        obs_metrics.inc("replication.resyncs")
        puller.fire_server(
            "session-resynced",
            service=self.service_name,
            session=session,
            high_water=puller.store.high_water(session),
        )

    def _invoke(self, member, handle, operation, args, callback) -> None:
        try:
            member.peer.client.invocation.invoke_async(
                handle, operation, args, callback,
                self.config.ship_timeout, policy=self.config.ship_policy(),
            )
        except Exception as exc:  # noqa: BLE001 - down-node boundary
            callback(None, exc)

    # ------------------------------------------------------------------
    # convergence checks + metrics
    # ------------------------------------------------------------------
    def high_waters(self) -> dict[str, dict[str, int]]:
        return {m.node_id: m.store.high_water_map() for m in self.members}

    def delta_lag(self) -> int:
        """Max over sessions of (highest member high water - lowest
        live member high water): how far behind the most-behind live
        member is."""
        lag = 0
        sessions: set[str] = set()
        for member in self.members:
            sessions.update(member.store.high_water_map())
        for session in sessions:
            waters = [
                m.store.high_water(session)
                for m in self.members
                if m.peer.node.up
            ]
            if waters:
                lag = max(lag, max(waters) - min(waters))
        return lag

    def converged(self, live_only: bool = True) -> bool:
        """True when every (live) member agrees on every session's
        high water *and* digest."""
        members = [m for m in self.members if m.peer.node.up] if live_only else self.members
        if len(members) < 2:
            return True
        sessions: set[str] = set()
        for member in members:
            sessions.update(member.store.high_water_map())
        for session in sessions:
            snaps = [m.store.snapshot(session) for m in members]
            if len({(s.seq, s.digest) for s in snaps}) != 1:
                return False
        return True

    def divergences(self) -> int:
        return sum(m.store.divergences for m in self.members)

    def stats(self) -> dict[str, Any]:
        lag = self.delta_lag()
        obs_metrics.set_gauge("replication.delta_lag", lag)
        stats: dict[str, Any] = {
            "members": len(self.members),
            "live_members": sum(1 for m in self.members if m.peer.node.up),
            "ships_sent": self.ships_sent,
            "ship_failures": self.ship_failures,
            "delta_lag": lag,
            "snapshot_bytes": sum(m.snapshot_bytes for m in self.members),
            "resyncs": sum(m.resyncs for m in self.members),
            "lag_rejections": sum(m.lag_rejections for m in self.members),
            "divergences": self.divergences(),
            "branches_discarded": sum(
                m.store.branches_discarded for m in self.members
            ),
        }
        for member in self.members:
            stats[f"hw.{member.node_id}"] = member.store.total_applied
        return stats

    def __repr__(self) -> str:
        return (
            f"<ReplicationGroup {self.service_name} "
            f"members={[m.node_id for m in self.members]}>"
        )
