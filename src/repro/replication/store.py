"""The per-member replica store: idempotent delta application.

Each :class:`~repro.replication.member.ReplicationMember` owns one
:class:`ReplicaStore` per replicated service.  The store is the only
piece that reasons about sequence numbers, so its invariants are the
whole correctness story:

- **high-water mark** — per session, the highest sequence number whose
  delta has been applied, with every lower number also applied.
  Handoff planning ranks members by high water, so the redirected call
  lands where the most history already lives.
- **idempotent apply** — a delta at or below the high water is a
  duplicate (the E7 acked-one-way retransmits make duplicates routine)
  and is skipped, *unless* its digest disagrees with what we applied
  at that sequence number, which is a divergence, not a duplicate.
- **gap buffering** — deltas arriving ahead of the stream are held (a
  bounded buffer) and drained in order once the gap fills; a session
  with buffered gaps is *lagging* and refuses to serve calls with
  :class:`~repro.replication.errors.ReplicaLagError` semantics rather
  than serving stale state.
- **snapshot dominance** — anti-entropy resolves two members that both
  executed (a restarted primary with an unshipped suffix vs the replica
  that took over) by sequence dominance: the higher high water wins and
  the shorter branch is discarded (counted, distinguishable from true
  divergence, which is *equal* sequence numbers with different digests).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.replication.errors import StateDivergedError
from repro.replication.state import (
    DEFAULT_SESSION,
    SessionLog,
    StateDelta,
    StateSnapshot,
    diff_state,
    state_digest,
)

#: verdicts from :meth:`ReplicaStore.apply_remote`
APPLIED = "applied"
DUPLICATE = "duplicate"
BUFFERED = "buffered"
DIVERGED = "diverged"


class _SessionRecord:
    __slots__ = (
        "state",
        "high_water",
        "digest",
        "buffered",
        "diverged",
        "log",
        "replies",
    )

    def __init__(self, session: str, compact_after: int, reply_history: int):
        self.state: dict[str, Any] = {}
        self.high_water = 0
        self.digest = state_digest({})
        self.buffered: dict[int, StateDelta] = {}
        self.diverged = False
        self.log = SessionLog(session, compact_after=compact_after)
        self.replies: deque[tuple[str, str]] = deque(maxlen=reply_history)


class ReplicaStore:
    """Versioned session state for one member of a replication group."""

    def __init__(
        self,
        member_id: str = "",
        compact_after: int = 32,
        max_buffer: int = 64,
        reply_history: int = 16,
    ):
        self.member_id = member_id
        self.compact_after = compact_after
        self.max_buffer = max_buffer
        self.reply_history = reply_history
        self._sessions: dict[str, _SessionRecord] = {}
        # counters (surfaced through the group's metrics collector)
        self.applied = 0
        self.duplicates = 0
        self.buffered_total = 0
        self.buffer_overflows = 0
        self.divergences = 0
        self.snapshots_installed = 0
        self.branches_discarded = 0

    # -- bookkeeping -------------------------------------------------------
    def _record(self, session: str) -> _SessionRecord:
        record = self._sessions.get(session)
        if record is None:
            record = _SessionRecord(session, self.compact_after, self.reply_history)
            self._sessions[session] = record
        return record

    @property
    def sessions(self) -> list[str]:
        return sorted(self._sessions)

    def high_water(self, session: str = DEFAULT_SESSION) -> int:
        record = self._sessions.get(session)
        return record.high_water if record is not None else 0

    def high_water_map(self) -> dict[str, int]:
        return {s: r.high_water for s, r in self._sessions.items()}

    @property
    def total_applied(self) -> int:
        """Sum of high waters — the handoff-planning caught-up score."""
        return sum(r.high_water for r in self._sessions.values())

    def get_state(self, session: str = DEFAULT_SESSION) -> dict[str, Any]:
        record = self._sessions.get(session)
        return dict(record.state) if record is not None else {}

    def lag(self, session: str = DEFAULT_SESSION) -> int:
        """How far behind the furthest buffered delta says we are (0
        when the stream has no known gap)."""
        record = self._sessions.get(session)
        if record is None or not record.buffered:
            return 0
        return max(record.buffered) - record.high_water

    def is_lagging(self, session: str = DEFAULT_SESSION) -> bool:
        return self.lag(session) > 0

    def is_diverged(self, session: str = DEFAULT_SESSION) -> bool:
        record = self._sessions.get(session)
        return record.diverged if record is not None else False

    def compactions(self) -> int:
        return sum(r.log.compactions for r in self._sessions.values())

    def seed_baseline(self, session: str, state: dict[str, Any]) -> None:
        """Register *state* as the session's sequence-0 baseline.

        Members deploy identically-constructed service instances, so
        the instance's pre-replication state is shared ground: seeding
        it means the first mutation ships only its own diff and
        read-only operations ship nothing at all.  A violated
        assumption (members constructed differently) surfaces as a
        digest divergence on the first shipped delta, never silently.
        No-op once the session has any history.
        """
        if session in self._sessions:
            return
        record = self._record(session)
        record.state = dict(state)
        record.digest = state_digest(record.state)
        record.log = SessionLog(
            session,
            compact_after=self.compact_after,
            snapshot=StateSnapshot(
                session, 0, dict(state), digest=record.digest
            ),
        )

    # -- primary side ------------------------------------------------------
    def record_local(
        self,
        session: str,
        new_state: dict[str, Any],
        message_id: Optional[str] = None,
        response_wire: Optional[str] = None,
        operation: str = "",
    ) -> Optional[StateDelta]:
        """Version a local execution's resulting *new_state*.

        Returns the delta to ship, or ``None`` when the execution did
        not change the session's state (read-only operations produce no
        replication traffic).
        """
        record = self._record(session)
        if record.diverged:
            raise StateDivergedError(
                f"session {session!r} is diverged on {self.member_id!r}",
                session=session,
            )
        changes, removed = diff_state(record.state, new_state)
        if not changes and not removed:
            return None
        seq = record.high_water + 1
        digest = state_digest(new_state)
        delta = StateDelta(
            session=session,
            seq=seq,
            changes=changes,
            removed=removed,
            digest=digest,
            message_id=message_id,
            response_wire=response_wire,
            operation=operation,
        )
        record.state = dict(new_state)
        record.high_water = seq
        record.digest = digest
        record.log.append(delta, record.state)
        if message_id is not None and response_wire is not None:
            record.replies.append((message_id, response_wire))
        self.applied += 1
        return delta

    # -- replica side ------------------------------------------------------
    def apply_remote(self, delta: StateDelta) -> tuple[str, list[StateDelta]]:
        """Apply a shipped delta idempotently.

        Returns ``(verdict, applied)`` where *applied* lists every delta
        actually folded in this call (the argument plus any buffered
        successors it unblocked) — the member seeds its dedup window
        from exactly that list.
        """
        record = self._record(delta.session)
        if record.diverged:
            return DIVERGED, []
        if delta.seq <= record.high_water:
            # At-or-below high water: normally a retransmit duplicate.
            # But if this is *our* current head and the digests disagree,
            # two members executed the same sequence number differently.
            if (
                delta.seq == record.high_water
                and delta.digest
                and record.digest
                and delta.digest != record.digest
            ):
                record.diverged = True
                self.divergences += 1
                return DIVERGED, []
            self.duplicates += 1
            return DUPLICATE, []
        if delta.seq > record.high_water + 1:
            if len(record.buffered) >= self.max_buffer:
                self.buffer_overflows += 1
                return BUFFERED, []
            if delta.seq not in record.buffered:
                record.buffered[delta.seq] = delta
                self.buffered_total += 1
            return BUFFERED, []
        applied = [self._apply_in_order(record, delta)]
        # drain any buffered suffix the gap-fill unblocked
        while record.high_water + 1 in record.buffered:
            queued = record.buffered.pop(record.high_water + 1)
            applied.append(self._apply_in_order(record, queued))
        if record.diverged:
            return DIVERGED, [d for d in applied if d is not None]
        return APPLIED, [d for d in applied if d is not None]

    def _apply_in_order(
        self, record: _SessionRecord, delta: StateDelta
    ) -> Optional[StateDelta]:
        delta.apply_to(record.state)
        digest = state_digest(record.state)
        if delta.digest and digest != delta.digest:
            record.diverged = True
            self.divergences += 1
            return None
        record.high_water = delta.seq
        record.digest = digest
        record.log.append(delta, record.state)
        if delta.message_id is not None and delta.response_wire is not None:
            record.replies.append((delta.message_id, delta.response_wire))
        self.applied += 1
        return delta

    # -- snapshots / anti-entropy -----------------------------------------
    def snapshot(self, session: str = DEFAULT_SESSION) -> StateSnapshot:
        record = self._record(session)
        return StateSnapshot(
            session,
            record.high_water,
            dict(record.state),
            digest=record.digest,
            replies=tuple(record.replies),
        )

    def deltas_since(
        self, session: str, seq: int
    ) -> Optional[list[StateDelta]]:
        """Catch-up suffix from the log; ``None`` past the compaction
        floor (serve a snapshot instead)."""
        record = self._sessions.get(session)
        if record is None:
            return []
        return record.log.deltas_since(seq)

    def install_snapshot(self, snap: StateSnapshot) -> bool:
        """Install *snap* under sequence dominance; True when adopted.

        A strictly higher sequence number always wins — if this member
        had its own un-shipped suffix (a restarted primary), that branch
        is discarded and counted.  An *equal* sequence number with a
        different digest is true divergence: flagged, never silently
        overwritten.
        """
        record = self._record(snap.session)
        if snap.seq < record.high_water:
            return False
        if snap.seq == record.high_water:
            if (
                snap.digest
                and record.digest
                and snap.digest != record.digest
            ):
                if not record.diverged:
                    record.diverged = True
                    self.divergences += 1
            return False
        if record.diverged:
            # our shorter branch lost to a strictly longer history —
            # resolved by dominance, distinct from true (equal-seq)
            # divergence which is never overwritten
            self.branches_discarded += 1
        record.state = dict(snap.state)
        record.high_water = snap.seq
        record.digest = snap.digest or state_digest(record.state)
        record.buffered = {
            seq: d for seq, d in record.buffered.items() if seq > snap.seq
        }
        record.diverged = False
        record.log = SessionLog(
            snap.session,
            compact_after=self.compact_after,
            snapshot=StateSnapshot(
                snap.session, snap.seq, dict(snap.state), digest=record.digest
            ),
        )
        for message_id, wire in snap.replies:
            record.replies.append((message_id, wire))
        self.snapshots_installed += 1
        # drain buffered deltas that now continue from the snapshot
        while record.high_water + 1 in record.buffered:
            queued = record.buffered.pop(record.high_water + 1)
            self._apply_in_order(record, queued)
        return True

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict[str, Any]:
        return {
            "sessions": len(self._sessions),
            "applied": self.applied,
            "duplicates": self.duplicates,
            "buffered": sum(len(r.buffered) for r in self._sessions.values()),
            "buffer_overflows": self.buffer_overflows,
            "divergences": self.divergences,
            "snapshots_installed": self.snapshots_installed,
            "branches_discarded": self.branches_discarded,
            "compactions": self.compactions(),
            "total_applied": self.total_applied,
        }
