"""Replicated stateful services (E15).

The paper deliberately exposes *live stateful objects* as services;
this package makes that safe under churn: every mutation a member
executes becomes a versioned :class:`~repro.replication.state.StateDelta`
shipped to the other members, handoff planning redirects a failed call
to the most-caught-up live replica, and the shipped
``(MessageID, response)`` pairs seed replica dedup windows so the
redirected retransmission replays instead of re-executing —
at-most-once preserved across failover.

Entry point: :meth:`repro.core.wspeer.WSPeer.enable_replication`.
"""

from repro.replication.errors import (
    ReplicaLagError,
    ReplicationError,
    StateDivergedError,
)
from repro.replication.group import ReplicationGroup
from repro.replication.member import ReplicationConfig, ReplicationMember
from repro.replication.state import (
    DEFAULT_SESSION,
    SessionLog,
    StateDelta,
    StateSnapshot,
    diff_state,
    state_digest,
)
from repro.replication.store import ReplicaStore

__all__ = [
    "DEFAULT_SESSION",
    "ReplicaLagError",
    "ReplicaStore",
    "ReplicationConfig",
    "ReplicationError",
    "ReplicationGroup",
    "ReplicationMember",
    "SessionLog",
    "StateDelta",
    "StateSnapshot",
    "StateDivergedError",
    "diff_state",
    "state_digest",
]
