"""One member of a replication group: primary duties + replica duties.

Every member is symmetric — the paper's peer argument applied to
replication.  Whichever member executes a mutation acts as that
session's primary for that instant: it versions the resulting state
into a :class:`~repro.replication.state.StateDelta` and ships it to
the other members.  Every member simultaneously hosts a *replica
port* — a plain deployed service (``<Name>Replica``) whose operations
(``apply_delta`` / ``fetch_deltas`` / ``fetch_snapshot`` /
``high_water``) are invoked over the ordinary transports, so state
sync rides the same wire, dedup windows, and retry machinery as
application traffic.

The member also guards its own dispatch path: a session with a known
gap in its delta stream answers
:class:`~repro.soap.faults.ReplicaLagFault` (failover-eligible, the
call lands on a caught-up member) instead of silently serving stale
state, and a diverged session answers a fatal fault rather than
picking a side of the conflict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.events import EventSource
from repro.observability import metrics as obs_metrics
from repro.reliability import ReliabilityPolicy, RetryPolicy
from repro.replication.errors import StateDivergedError
from repro.replication.state import DEFAULT_SESSION, StateDelta, StateSnapshot
from repro.replication.store import APPLIED, BUFFERED, DIVERGED, ReplicaStore
from repro.soap.envelope import SoapEnvelope
from repro.soap.faults import FaultCode, ReplicaLagFault, SoapFault


@dataclass
class ReplicationConfig:
    """Tunables for one replication group."""

    #: replicas per service (group size is r + 1)
    r: int = 2
    #: request argument naming the session a call belongs to (services
    #: without a ``get_session_state`` protocol ignore this and use the
    #: single default session)
    session_arg: str = "session"
    #: delta-log suffix length before folding into the snapshot
    compact_after: int = 32
    #: out-of-order deltas held per session before shedding
    max_buffer: int = 64
    #: (message_id, response wire) pairs carried per snapshot for dedup
    reply_history: int = 16
    #: per-ship attempt timeout (virtual seconds)
    ship_timeout: float = 2.0
    #: retry schedule for delta ships (E7 machinery; seeded)
    ship_retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=4, base_delay=0.05, multiplier=2.0,
            max_delay=0.5, jitter=0.05, seed=151,
        )
    )
    #: anti-entropy pull period; 0 disables the background task
    anti_entropy_interval: float = 0.5
    #: retry-after hint answered with a ReplicaLagFault
    lag_retry_after: float = 0.1

    def ship_policy(self) -> ReliabilityPolicy:
        return ReliabilityPolicy(retry=self.ship_retry)


class _WholeObjectAdapter:
    """Default state adapter: the instance's public attributes are the
    single default session's state."""

    sessions_are_partitioned = False

    def __init__(self, instance: Any):
        self.instance = instance

    def get(self, session: str) -> dict[str, Any]:
        return {
            k: v for k, v in vars(self.instance).items() if not k.startswith("_")
        }

    def set(self, session: str, state: dict[str, Any]) -> None:
        for key, value in state.items():
            setattr(self.instance, key, value)
        for key in list(vars(self.instance)):
            if not key.startswith("_") and key not in state:
                delattr(self.instance, key)


class _SessionProtocolAdapter:
    """Adapter for services that partition state themselves via the
    ``get_session_state(session) -> dict`` /
    ``set_session_state(session, state)`` protocol."""

    sessions_are_partitioned = True

    def __init__(self, instance: Any):
        self.instance = instance

    def get(self, session: str) -> dict[str, Any]:
        return dict(self.instance.get_session_state(session))

    def set(self, session: str, state: dict[str, Any]) -> None:
        self.instance.set_session_state(session, dict(state))


def make_adapter(instance: Any):
    if hasattr(instance, "get_session_state") and hasattr(
        instance, "set_session_state"
    ):
        return _SessionProtocolAdapter(instance)
    return _WholeObjectAdapter(instance)


class ReplicaPort:
    """The deployed sync service every member hosts (``<Name>Replica``).

    Operations take and return JSON strings — replication payloads stay
    opaque to the SOAP encoding layer, so arbitrary session state rides
    through without struct registration.
    """

    OPERATIONS = ["apply_delta", "fetch_deltas", "fetch_snapshot", "high_water"]

    def __init__(self, member: "ReplicationMember"):
        self._member = member

    def apply_delta(self, delta: str) -> str:
        return self._member.handle_apply(delta)

    def fetch_deltas(self, session: str, since: int) -> str:
        return self._member.handle_fetch_deltas(session, int(since))

    def fetch_snapshot(self, session: str) -> str:
        return self._member.handle_fetch_snapshot(session)

    def high_water(self) -> str:
        return json.dumps(self._member.store.high_water_map(), sort_keys=True)


class ReplicationMember(EventSource):
    """Primary + replica behaviour for one peer in one group."""

    def __init__(
        self,
        group,
        peer,
        deployed,
        instance: Any,
        config: ReplicationConfig,
    ):
        super().__init__(f"replication:{deployed.name}", parent=peer.server)
        self.group = group
        self.peer = peer
        self.deployed = deployed
        self.config = config
        self.adapter = make_adapter(instance)
        self.store = ReplicaStore(
            member_id=peer.name,
            compact_after=config.compact_after,
            max_buffer=config.max_buffer,
            reply_history=config.reply_history,
        )
        self.port_name = f"{deployed.name}Replica"
        self.port = ReplicaPort(self)
        self.port_deployed = peer.deploy(
            self.port, name=self.port_name, include=list(ReplicaPort.OPERATIONS)
        )
        # the deployed instance's initial state is the shared seq-0
        # baseline (members construct identical instances); partitioned
        # sessions are seeded lazily when first seen
        if not self.adapter.sessions_are_partitioned:
            self.store.seed_baseline(
                DEFAULT_SESSION, self.adapter.get(DEFAULT_SESSION)
            )
        # counters
        self.deltas_shipped = 0
        self.ship_failures = 0
        self.lag_rejections = 0
        self.resyncs = 0
        self.snapshot_bytes = 0

    def _now(self) -> float:
        return self.peer._now()

    @property
    def node_id(self) -> str:
        return self.peer.node.id

    @property
    def addresses(self) -> list[str]:
        """Service-endpoint addresses handoff planning maps to this
        member's caught-up score."""
        return [e.address for e in self.deployed.endpoints]

    # ------------------------------------------------------------------
    # primary-side hooks (called by LightweightContainer.process_request)
    # ------------------------------------------------------------------
    def session_of(self, request: SoapEnvelope) -> str:
        if not self.adapter.sessions_are_partitioned:
            return DEFAULT_SESSION
        body = request.body_content
        if body is None:
            return DEFAULT_SESSION
        session = body.find_text(self.config.session_arg, "")
        return session or DEFAULT_SESSION

    def guard_request(
        self, request: SoapEnvelope, operation: str
    ) -> Optional[SoapEnvelope]:
        """Refuse to serve a session this member cannot serve safely.

        Returns a fault envelope, or ``None`` to admit the dispatch.
        """
        session = self.session_of(request)
        self.store.seed_baseline(session, self.adapter.get(session))
        if self.store.is_diverged(session):
            obs_metrics.inc("replication.diverged_rejections")
            return SoapEnvelope.for_fault(
                SoapFault(
                    FaultCode.SERVER,
                    f"session {session!r} has diverged replicas",
                    subcode="StateDiverged",
                )
            )
        lag = self.store.lag(session)
        if lag > 0:
            self.lag_rejections += 1
            obs_metrics.inc("replication.lag_rejections")
            self.fire_server(
                "replica-lagging",
                service=self.deployed.name,
                session=session,
                behind_by=lag,
            )
            return SoapEnvelope.for_fault(
                ReplicaLagFault(
                    f"member {self.node_id!r} is {lag} delta(s) behind "
                    f"on session {session!r}",
                    behind_by=lag,
                    retry_after=self.config.lag_retry_after,
                )
            )
        return None

    def after_execute(
        self,
        request: SoapEnvelope,
        response: SoapEnvelope,
        message_id: Optional[str],
        operation: str,
    ) -> None:
        """Version any state change the dispatch produced and ship it."""
        session = self.session_of(request)
        try:
            delta = self.store.record_local(
                session,
                self.adapter.get(session),
                message_id=message_id,
                response_wire=response.to_wire_message(),
                operation=operation,
            )
        except StateDivergedError:
            return
        if delta is None:
            return
        obs_metrics.inc("replication.deltas_produced")
        self.group.ship(self, delta)

    # ------------------------------------------------------------------
    # replica-side operations (invoked through the ReplicaPort)
    # ------------------------------------------------------------------
    def handle_apply(self, delta_json: str) -> str:
        delta = StateDelta.from_json(delta_json)
        self.store.seed_baseline(
            delta.session, self.adapter.get(delta.session)
        )
        verdict, applied = self.store.apply_remote(delta)
        for item in applied:
            self._install_applied(item)
        if verdict == APPLIED:
            obs_metrics.inc("replication.deltas_applied", len(applied))
            self.fire_server(
                "delta-applied",
                service=self.deployed.name,
                session=delta.session,
                seq=delta.seq,
                applied=len(applied),
                message_id=delta.message_id,
            )
        elif verdict == BUFFERED:
            obs_metrics.inc("replication.deltas_buffered")
            self.fire_server(
                "delta-buffered",
                service=self.deployed.name,
                session=delta.session,
                seq=delta.seq,
                high_water=self.store.high_water(delta.session),
            )
        elif verdict == DIVERGED:
            obs_metrics.inc("replication.divergences")
            self.fire_server(
                "state-diverged",
                service=self.deployed.name,
                session=delta.session,
                seq=delta.seq,
            )
        return json.dumps(
            {
                "verdict": verdict,
                "high_water": self.store.high_water(delta.session),
                "session": delta.session,
            },
            sort_keys=True,
        )

    def _install_applied(self, delta: StateDelta) -> None:
        """Fold one applied delta into the live object + dedup window."""
        self.adapter.set(delta.session, self.store.get_state(delta.session))
        if delta.message_id is not None and delta.response_wire is not None:
            # the crux of at-most-once across handoff: a failover
            # retransmission of this MessageID replays the retained
            # response instead of re-executing the mutation
            self.deployed.dedup.remember(delta.message_id, delta.response_wire)

    def handle_fetch_deltas(self, session: str, since: int) -> str:
        suffix = self.store.deltas_since(session, since)
        if suffix is None:
            return json.dumps({"compacted": True})
        return json.dumps({"deltas": [d.to_json() for d in suffix]})

    def handle_fetch_snapshot(self, session: str) -> str:
        snap = self.store.snapshot(session)
        payload = snap.to_json()
        self.snapshot_bytes += len(payload.encode("utf-8"))
        obs_metrics.inc("replication.snapshot_bytes", len(payload.encode("utf-8")))
        return payload

    def install_snapshot(self, snap: StateSnapshot) -> bool:
        adopted = self.store.install_snapshot(snap)
        if adopted:
            self.adapter.set(snap.session, self.store.get_state(snap.session))
            for message_id, wire in snap.replies:
                self.deployed.dedup.remember(message_id, wire)
            self.fire_server(
                "snapshot-installed",
                service=self.deployed.name,
                session=snap.session,
                seq=snap.seq,
            )
            obs_metrics.inc("replication.snapshots_installed")
        return adopted

    def apply_delta_local(self, delta: StateDelta) -> str:
        """In-process apply (the DeployedService session-state API)."""
        return json.loads(self.handle_apply(delta.to_json()))["verdict"]

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        stats = self.store.stats()
        stats.update(
            deltas_shipped=self.deltas_shipped,
            ship_failures=self.ship_failures,
            lag_rejections=self.lag_rejections,
            resyncs=self.resyncs,
            snapshot_bytes=self.snapshot_bytes,
        )
        return stats

    def __repr__(self) -> str:
        return (
            f"<ReplicationMember {self.deployed.name}@{self.node_id} "
            f"hw={self.store.high_water_map()}>"
        )
