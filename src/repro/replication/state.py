"""Versioned session state: deltas, snapshots, and the per-session log.

The unit of replication is the *session* — one independently versioned
slice of a stateful service's data (a shopping cart, a counter, a
conversation).  Services that do not partition their state get the
single default session ``"_"``.

Every mutation the primary executes produces a :class:`StateDelta`:
the changed/removed keys, a monotonically increasing per-session
sequence number, and a digest of the *resulting* full session state so
appliers can detect divergence immediately rather than at the next
read.  Deltas also carry the originating request's ``wsa:MessageID``
and the retained response wire, which is what lets a replica answer a
handoff retransmission from its dedup window instead of re-executing
(at-most-once across failover, E9 × E7).

The :class:`SessionLog` keeps a snapshot plus the delta suffix since
it, compacting the log back into the snapshot once it grows past
``compact_after`` entries — so a freshly nominated replica can be
brought up with one snapshot install instead of replaying history.
"""

from __future__ import annotations

import base64
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional, Union

#: the session key used by services that do not partition their state
DEFAULT_SESSION = "_"


def state_digest(state: dict[str, Any]) -> str:
    """A short stable digest of a session-state dict.

    Key order never matters; values must be JSON-representable (the
    same constraint the SOAP encoding layer already imposes on
    operation arguments).
    """
    payload = json.dumps(state, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def encode_wire(wire: Union[str, bytes, None]):
    """JSON-representable form of a retained response wire.

    E16 responses with attachments are multipart ``bytes``; they ride
    the delta/snapshot JSON as a base64-tagged dict so the replica's
    dedup window replays the exact bytes.  Text wires pass unchanged.
    """
    if isinstance(wire, (bytes, bytearray, memoryview)):
        return {"b64": base64.b64encode(bytes(wire)).decode("ascii")}
    return wire


def decode_wire(raw) -> Union[str, bytes, None]:
    """Inverse of :func:`encode_wire`."""
    if isinstance(raw, dict) and "b64" in raw:
        return base64.b64decode(raw["b64"].encode("ascii"))
    return raw


def diff_state(
    old: dict[str, Any], new: dict[str, Any]
) -> tuple[dict[str, Any], tuple[str, ...]]:
    """(changed-or-added keys, removed keys) taking *old* to *new*."""
    changes = {k: v for k, v in new.items() if k not in old or old[k] != v}
    removed = tuple(sorted(k for k in old if k not in new))
    return changes, removed


@dataclass(frozen=True)
class StateDelta:
    """One versioned mutation of one session's state."""

    session: str
    seq: int
    changes: dict[str, Any]
    removed: tuple[str, ...] = ()
    #: digest of the full session state *after* applying this delta
    digest: str = ""
    #: identity + retained response of the mutation that produced this
    #: delta — applied into the replica's dedup window so a failover
    #: retransmission replays instead of re-executing
    message_id: Optional[str] = None
    response_wire: Union[str, bytes, None] = None
    operation: str = ""

    def apply_to(self, state: dict[str, Any]) -> dict[str, Any]:
        """Merge this delta into *state* in place (and return it)."""
        state.update(self.changes)
        for key in self.removed:
            state.pop(key, None)
        return state

    def to_json(self) -> str:
        return json.dumps(
            {
                "session": self.session,
                "seq": self.seq,
                "changes": self.changes,
                "removed": list(self.removed),
                "digest": self.digest,
                "message_id": self.message_id,
                "response_wire": encode_wire(self.response_wire),
                "operation": self.operation,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "StateDelta":
        raw = json.loads(payload)
        return cls(
            session=raw["session"],
            seq=int(raw["seq"]),
            changes=dict(raw.get("changes", {})),
            removed=tuple(raw.get("removed", ())),
            digest=raw.get("digest", ""),
            message_id=raw.get("message_id"),
            response_wire=decode_wire(raw.get("response_wire")),
            operation=raw.get("operation", ""),
        )


@dataclass(frozen=True)
class StateSnapshot:
    """The full state of one session at one sequence number."""

    session: str
    seq: int
    state: dict[str, Any]
    digest: str = ""
    #: recent (message_id, response_wire) pairs, newest last — installed
    #: into the receiving member's dedup window alongside the state;
    #: wires are text or multipart bytes (E16)
    replies: tuple[tuple[str, Union[str, bytes]], ...] = ()

    def to_json(self) -> str:
        return json.dumps(
            {
                "session": self.session,
                "seq": self.seq,
                "state": self.state,
                "digest": self.digest,
                "replies": [[m, encode_wire(w)] for m, w in self.replies],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "StateSnapshot":
        raw = json.loads(payload)
        return cls(
            session=raw["session"],
            seq=int(raw["seq"]),
            state=dict(raw.get("state", {})),
            digest=raw.get("digest", ""),
            replies=tuple(
                (str(m), decode_wire(w)) for m, w in raw.get("replies", ())
            ),
        )

    @property
    def wire_bytes(self) -> int:
        return len(self.to_json().encode("utf-8"))


@dataclass
class SessionLog:
    """Snapshot + delta suffix for one session, with compaction.

    ``snapshot.seq`` is the floor: deltas with ``seq <= snapshot.seq``
    have been folded in and can no longer be served individually —
    :meth:`deltas_since` returns ``None`` for requests below the floor,
    signalling "install the snapshot instead".
    """

    session: str
    compact_after: int = 32
    snapshot: StateSnapshot = field(default=None)  # type: ignore[assignment]
    deltas: list[StateDelta] = field(default_factory=list)
    compactions: int = 0

    def __post_init__(self) -> None:
        if self.snapshot is None:
            self.snapshot = StateSnapshot(
                self.session, 0, {}, digest=state_digest({})
            )

    @property
    def seq(self) -> int:
        """The highest sequence number the log covers."""
        return self.deltas[-1].seq if self.deltas else self.snapshot.seq

    def append(self, delta: StateDelta, full_state: dict[str, Any]) -> None:
        """Record *delta*; compact once the suffix outgrows the bound.

        *full_state* is the post-delta session state (the appender
        already has it — recomputing by replay would be quadratic).
        """
        if delta.seq != self.seq + 1:
            raise ValueError(
                f"log for {self.session!r} at seq {self.seq} cannot "
                f"append delta seq {delta.seq}"
            )
        self.deltas.append(delta)
        if len(self.deltas) > self.compact_after:
            self.snapshot = StateSnapshot(
                self.session,
                delta.seq,
                dict(full_state),
                digest=delta.digest or state_digest(full_state),
            )
            self.deltas.clear()
            self.compactions += 1

    def deltas_since(self, seq: int) -> Optional[list[StateDelta]]:
        """The deltas taking a follower from *seq* to the head, oldest
        first — or ``None`` when compaction has discarded that range
        (the follower must install the snapshot)."""
        if seq < self.snapshot.seq:
            return None
        return [d for d in self.deltas if d.seq > seq]
