"""Replication-layer error types (E15).

Two of these matter to the client-side failover loop and are therefore
classified by :func:`repro.supervision.failover.classify_error`:

- :class:`ReplicaLagError` is *retryable* — the replica is alive but
  has not yet applied every delta for the session; another, more
  caught-up member (or the same one a moment later) can serve the call.
- :class:`StateDivergedError` is *fatal* — two members executed the
  same sequence number to different states.  Failing over cannot help;
  the conflict needs resolution (anti-entropy dominance or operator
  action), so the call must surface the error.
"""

from __future__ import annotations

from repro.core.errors import WsPeerError


class ReplicationError(WsPeerError):
    """Base class for replication-layer errors."""


class ReplicaLagError(ReplicationError):
    """The member is behind on this session's delta stream.

    Retryable: the state exists elsewhere (or will arrive here); the
    member just cannot serve the session *yet* without risking a lost
    update.  Carries how many sequence numbers it is behind, which the
    caller may use as a backoff hint.
    """

    def __init__(self, message: str, session: str = "", behind_by: int = 0):
        super().__init__(message)
        self.session = session
        self.behind_by = behind_by


class StateDivergedError(ReplicationError):
    """Two members hold different states for the same sequence number.

    Fatal to the in-flight call: every replica would be equally suspect,
    so failing over would silently pick a side of the conflict.
    """

    def __init__(self, message: str, session: str = ""):
        super().__init__(message)
        self.session = session
