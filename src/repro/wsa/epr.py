"""The WS-Addressing EndpointReference."""

from __future__ import annotations

from typing import Optional

from repro.xmlkit import Element, QName, ns


class WsaError(ValueError):
    """Malformed WS-Addressing content."""


_EPR = QName(ns.WSA, "EndpointReference", "wsa")
_ADDRESS = QName(ns.WSA, "Address", "wsa")
_REF_PROPS = QName(ns.WSA, "ReferenceProperties", "wsa")


class EndpointReference:
    """An abstract endpoint: mandatory Address URI + extension content.

    ``reference_properties`` is a list of arbitrary elements — "an
    extensibility element ... that can contain arbitrary protocol or
    application defined properties" (§IV-B).  The P2PS binding stores
    the pipe advertisement fields here.
    """

    def __init__(
        self,
        address: str,
        reference_properties: Optional[list[Element]] = None,
    ):
        if not address:
            raise WsaError("EndpointReference requires a non-empty Address")
        self.address = address
        self.reference_properties: list[Element] = [
            e.copy() for e in (reference_properties or [])
        ]

    # ------------------------------------------------------------------
    def add_property(self, elem: Element) -> Element:
        self.reference_properties.append(elem)
        return elem

    def find_property(self, name: QName | str) -> Optional[Element]:
        for prop in self.reference_properties:
            if isinstance(name, QName):
                if prop.name == name:
                    return prop
            elif prop.name.local == name:
                return prop
        return None

    def property_text(self, name: QName | str, default: str = "") -> str:
        prop = self.find_property(name)
        return prop.text if prop is not None else default

    # ------------------------------------------------------------------
    def to_element(self, tag: Optional[QName] = None) -> Element:
        """Serialise; *tag* overrides the element name (e.g. wsa:ReplyTo)."""
        root = Element(tag or _EPR, nsdecls={"wsa": ns.WSA})
        root.add(_ADDRESS, text=self.address)
        if self.reference_properties:
            wrapper = root.add(_REF_PROPS)
            for prop in self.reference_properties:
                wrapper.append(prop.copy())
        return root

    @classmethod
    def from_element(cls, elem: Element) -> "EndpointReference":
        address_elem = elem.find(_ADDRESS)
        if address_elem is None or not address_elem.text:
            raise WsaError(f"element {elem.name} has no wsa:Address")
        props: list[Element] = []
        wrapper = elem.find(_REF_PROPS)
        if wrapper is not None:
            props = [c.copy_with_scope() for c in wrapper.children]
        return cls(address_elem.text, props)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EndpointReference):
            return NotImplemented
        return (
            self.address == other.address
            and len(self.reference_properties) == len(other.reference_properties)
            and all(
                a == b
                for a, b in zip(self.reference_properties, other.reference_properties)
            )
        )

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"<EndpointReference {self.address} props={len(self.reference_properties)}>"
