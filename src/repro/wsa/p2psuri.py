"""The ``p2ps`` URI scheme (§IV-B).

    p2ps://<peer-id>/<service-name>#<pipe-name>

- the *host* component is the peer's unique logical id;
- the *path* names the ServiceAdvertisement the pipe belongs to, and
  may be empty for bare pipes (e.g. reply channels);
- the *fragment* names the pipe.

"Defining a URI scheme allows us to ... chain separate elements
together into a single parsable unit" — these helpers are that parser.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transport.uri import Uri, UriError
from repro.wsa.epr import WsaError

P2PS_SCHEME = "p2ps"


@dataclass(frozen=True)
class P2psAddress:
    """The decomposed components of a p2ps URI."""

    peer_id: str
    service_name: str = ""
    pipe_name: str = ""

    @property
    def is_bare_pipe(self) -> bool:
        """A pipe with no associated service (a reply channel)."""
        return self.pipe_name != "" and self.service_name == ""

    def to_uri(self) -> str:
        return make_p2ps_uri(self.peer_id, self.service_name, self.pipe_name)

    def service_uri(self) -> str:
        """The address *without* the pipe fragment — what goes in
        wsa:Address / wsa:To (binding rule 1)."""
        return make_p2ps_uri(self.peer_id, self.service_name, "")


def make_p2ps_uri(peer_id: str, service_name: str = "", pipe_name: str = "") -> str:
    """Build a p2ps URI from its components."""
    if not peer_id:
        raise WsaError("p2ps URI requires a peer id")
    text = f"{P2PS_SCHEME}://{peer_id}"
    if service_name:
        text += f"/{service_name}"
    if pipe_name:
        text += f"#{pipe_name}"
    return text


def parse_p2ps_uri(text: str) -> P2psAddress:
    """Parse a p2ps URI into its components."""
    try:
        uri = Uri.parse(text)
    except UriError as exc:
        raise WsaError(f"bad p2ps URI: {exc}") from exc
    if uri.scheme != P2PS_SCHEME:
        raise WsaError(f"not a p2ps URI: {text!r}")
    if "/" in uri.path:
        raise WsaError(f"p2ps URI path must be a single service name: {text!r}")
    return P2psAddress(uri.host, uri.path, uri.fragment)
