"""Message addressing properties and the WS-Addressing SOAP binding.

The binding rules the paper uses (§IV-B items 3–5):

- ``To`` ← the Address URI of the target EPR (mandatory);
- ``Action`` ← the Address URI plus a fragment naming the operation
  ("a URI that corresponds to an abstract WSDL construct");
- the target EPR's ReferenceProperties are copied *directly* into the
  SOAP header, as siblings of the other wsa headers;
- ``ReplyTo`` carries a full EPR for the response channel;
- ``MessageID`` / ``RelatesTo`` correlate asynchronous replies.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.caching import ArtifactCache, fastpath_enabled
from repro.observability.recorder import current_recorder
from repro.observability.tracecontext import (
    TRACE_HEADER,
    header_element as trace_header_element,
    raw_context_of as trace_context_of,  # noqa: F401 - re-exported
)
from repro.soap.encoding import XSI_NIL, XSI_TYPE, primitive_text, primitive_xsi_type
from repro.soap.envelope import EnvelopeTemplate, SoapEnvelope
from repro.wsa.epr import EndpointReference, WsaError
from repro.xmlkit import Element, QName, ns
from repro.xmlkit.serializer import escape_text

_TO = QName(ns.WSA, "To", "wsa")
_ACTION = QName(ns.WSA, "Action", "wsa")
_REPLY_TO = QName(ns.WSA, "ReplyTo", "wsa")
_FROM = QName(ns.WSA, "From", "wsa")
_FAULT_TO = QName(ns.WSA, "FaultTo", "wsa")
_MESSAGE_ID = QName(ns.WSA, "MessageID", "wsa")
_RELATES_TO = QName(ns.WSA, "RelatesTo", "wsa")

_message_counter = itertools.count(1)


def new_message_id(prefix: str = "urn:uuid:repro") -> str:
    """Mint a unique (per-process) MessageID URI.

    Deterministic counter rather than a random UUID so simulation runs
    are reproducible.
    """
    return f"{prefix}-{next(_message_counter):08d}"


class MessageAddressingProperties:
    """The WS-A header values of one message."""

    def __init__(
        self,
        to: str,
        action: str,
        reply_to: Optional[EndpointReference] = None,
        message_id: Optional[str] = None,
        relates_to: Optional[str] = None,
        source: Optional[EndpointReference] = None,
        fault_to: Optional[EndpointReference] = None,
        trace_context: Optional[str] = None,
    ):
        if not to:
            raise WsaError("wsa:To is mandatory")
        if not action:
            raise WsaError("wsa:Action is mandatory")
        self.to = to
        self.action = action
        self.reply_to = reply_to
        self.message_id = message_id
        self.relates_to = relates_to
        self.source = source
        self.fault_to = fault_to
        #: the encoded ``rt:TraceContext`` header value (E17); set by
        #: invocation nodes when propagation is enabled
        self.trace_context = trace_context

    # ------------------------------------------------------------------
    @classmethod
    def for_request(
        cls,
        target: EndpointReference,
        operation: str,
        reply_to: Optional[EndpointReference] = None,
    ) -> "MessageAddressingProperties":
        """Build the MAPs addressing *operation* of *target*.

        Action = target address + ``#operation`` fragment, following the
        paper's rule that Action names the WSDL operation.
        """
        action = target.address
        if operation:
            action = f"{action}#{operation}"
        return cls(
            to=target.address,
            action=action,
            reply_to=reply_to,
            message_id=new_message_id(),
        )

    @property
    def operation(self) -> str:
        """The operation name from the Action fragment ('' if none)."""
        _, _, fragment = self.action.partition("#")
        return fragment

    # ------------------------------------------------------------------
    def apply_to(
        self,
        envelope: SoapEnvelope,
        target: Optional[EndpointReference] = None,
    ) -> SoapEnvelope:
        """Write the headers into *envelope*.

        When *target* is given, its ReferenceProperties are copied
        directly into the SOAP header (binding rule 3).
        """
        envelope.add_header(Element(_TO, text=self.to, nsdecls={"wsa": ns.WSA}))
        envelope.add_header(Element(_ACTION, text=self.action, nsdecls={"wsa": ns.WSA}))
        if self.message_id:
            envelope.add_header(
                Element(_MESSAGE_ID, text=self.message_id, nsdecls={"wsa": ns.WSA})
            )
        if self.relates_to:
            envelope.add_header(
                Element(_RELATES_TO, text=self.relates_to, nsdecls={"wsa": ns.WSA})
            )
        if self.trace_context:
            envelope.add_header(trace_header_element(self.trace_context))
        if self.reply_to is not None:
            envelope.add_header(self.reply_to.to_element(_REPLY_TO))
        if self.source is not None:
            envelope.add_header(self.source.to_element(_FROM))
        if self.fault_to is not None:
            envelope.add_header(self.fault_to.to_element(_FAULT_TO))
        if target is not None:
            for prop in target.reference_properties:
                envelope.add_header(prop.copy())
        return envelope

    @classmethod
    def extract_from(cls, envelope: SoapEnvelope) -> "MessageAddressingProperties":
        """Read the MAPs back out of a received envelope."""
        to_block = envelope.find_header(_TO)
        action_block = envelope.find_header(_ACTION)
        if to_block is None or not to_block.text:
            raise WsaError("message carries no wsa:To header")
        if action_block is None or not action_block.text:
            raise WsaError("message carries no wsa:Action header")

        def epr_of(name: QName) -> Optional[EndpointReference]:
            block = envelope.find_header(name)
            return EndpointReference.from_element(block) if block is not None else None

        message_id_block = envelope.find_header(_MESSAGE_ID)
        relates_block = envelope.find_header(_RELATES_TO)
        trace_block = envelope.find_header(TRACE_HEADER)
        return cls(
            to=to_block.text,
            action=action_block.text,
            reply_to=epr_of(_REPLY_TO),
            message_id=message_id_block.text if message_id_block is not None else None,
            relates_to=relates_block.text if relates_block is not None else None,
            source=epr_of(_FROM),
            fault_to=epr_of(_FAULT_TO),
            trace_context=trace_block.text if trace_block is not None else None,
        )

    def __repr__(self) -> str:
        return f"<MAPs to={self.to} action={self.action}>"


def message_id_of(envelope: SoapEnvelope) -> Optional[str]:
    """The ``wsa:MessageID`` of *envelope*, or None.

    Unlike :meth:`MessageAddressingProperties.extract_from`, this does
    not demand a fully-addressed message — the reliability layer keys
    duplicate suppression on the MessageID alone, and messages without
    one simply bypass dedup.
    """
    block = envelope.find_header(_MESSAGE_ID)
    return block.text if block is not None and block.text else None


def relates_to_of(envelope: SoapEnvelope) -> Optional[str]:
    """The ``wsa:RelatesTo`` of *envelope*, or None (ack correlation)."""
    block = envelope.find_header(_RELATES_TO)
    return block.text if block is not None and block.text else None


# ----------------------------------------------------------------------
# request envelope templates
# ----------------------------------------------------------------------
#: marks a key whose template build failed (sentinel collision); cached
#: so the expensive probe is not re-run on every call.
_UNTEMPLATABLE = object()


class RequestTemplateCache:
    """Pre-serialised request envelopes for the invocation hot path.

    Keyed by everything invariant across calls — target namespace,
    operation, ``wsa:To``/``wsa:Action``, the argument *shape*
    (names and primitive types, order-sensitive), the target EPR's
    reference properties, and the reply EPR's shape — so only the
    per-call fields (MessageID, parameter values, reply address and
    property texts) are spliced in at send time.

    The prototype wire is produced by the real envelope pipeline with
    sentinel strings planted in the variable fields, which keeps the
    template bytes identical to the slow path by construction.  Any
    shape the template machinery cannot guarantee byte parity for —
    non-primitive arguments, empty field texts (the serialiser
    self-closes empty elements), properties with attributes or
    children — makes :meth:`render` return None and the caller builds
    the envelope the ordinary way.
    """

    def __init__(self, max_entries: int = 256):
        self._cache = ArtifactCache("envelope-templates", max_entries)

    # -- public ------------------------------------------------------------
    def render(
        self,
        maps: MessageAddressingProperties,
        namespace: str,
        operation: str,
        args: dict[str, Any],
        target: Optional[EndpointReference] = None,
    ) -> Optional[str]:
        """The full request wire text, or None to signal slow-path."""
        if not fastpath_enabled():
            return None
        # recorder guard: with the NullRecorder installed this is one
        # attribute check and NO detail dict is ever allocated (the CI
        # no-op-overhead test holds this path to zero allocations)
        rec = current_recorder()
        key = self._key(maps, namespace, operation, args, target)
        if key is None:
            if rec.active:
                rec.codec_event("template-bypass", {"operation": operation, "why": "unkeyable"})
            return None
        template = self._cache.get(key)
        if template is _UNTEMPLATABLE:
            if rec.active:
                rec.codec_event("template-bypass", {"operation": operation, "why": "untemplatable"})
            return None
        if template is None:
            template = self._build(maps, namespace, operation, args, target)
            self._cache.put(key, template if template is not None else _UNTEMPLATABLE)
            if template is None:
                if rec.active:
                    rec.codec_event("template-bypass", {"operation": operation, "why": "untemplatable"})
                return None
            if rec.active:
                rec.codec_event("template-build", {"operation": operation})
        values = self._values(maps, args)
        if values is None:
            if rec.active:
                rec.codec_event("template-bypass", {"operation": operation, "why": "unrenderable"})
            return None
        if rec.active:
            rec.codec_event("template-hit", {"operation": operation})
        return template.render(values)

    def invalidate_all(self) -> int:
        return self._cache.clear()

    # -- key construction --------------------------------------------------
    @staticmethod
    def _epr_fingerprint(epr: EndpointReference) -> Optional[tuple]:
        """Full static identity of an EPR, texts included (target side)."""
        props = []
        for prop in epr.reference_properties:
            if prop.attributes or prop.children:
                return None
            props.append(
                (prop.name.clark(), prop.text, tuple(sorted(prop.nsdecls.items())))
            )
        return (epr.address, tuple(props))

    @staticmethod
    def _epr_shape(epr: EndpointReference) -> Optional[tuple]:
        """Shape-only identity of an EPR whose texts vary per call
        (reply side: the address and property texts become holes)."""
        shape = []
        for prop in epr.reference_properties:
            if prop.attributes or prop.children:
                return None
            shape.append((prop.name.clark(), tuple(sorted(prop.nsdecls.items()))))
        return tuple(shape)

    def _key(
        self,
        maps: MessageAddressingProperties,
        namespace: str,
        operation: str,
        args: dict[str, Any],
        target: Optional[EndpointReference],
    ) -> Optional[tuple]:
        if maps.relates_to or maps.source is not None or maps.fault_to is not None:
            return None
        arg_shape = []
        for name, value in args.items():
            if value is not None and primitive_xsi_type(value) is None:
                return None
            arg_shape.append((name, None if value is None else type(value).__name__))
        target_print: Optional[tuple] = None
        if target is not None:
            target_print = self._epr_fingerprint(target)
            if target_print is None:
                return None
        reply_shape: Optional[tuple] = None
        if maps.reply_to is not None:
            reply_shape = self._epr_shape(maps.reply_to)
            if reply_shape is None:
                return None
        return (
            namespace,
            operation,
            maps.to,
            maps.action,
            maps.message_id is not None,
            maps.trace_context is not None,
            tuple(arg_shape),
            target_print,
            reply_shape,
        )

    # -- template build ----------------------------------------------------
    def _build(
        self,
        maps: MessageAddressingProperties,
        namespace: str,
        operation: str,
        args: dict[str, Any],
        target: Optional[EndpointReference],
    ) -> Optional[EnvelopeTemplate]:
        sentinels: dict = {}

        def plant(key: object) -> str:
            # NUL never appears in escape output and never survives
            # escaping itself, so collisions with real content require
            # the static fields to contain NUL — checked by from_wire.
            marker = f"\x00{len(sentinels)}\x00"
            sentinels[key] = marker
            return marker

        wrapper = Element(QName(namespace, operation, "tns"), nsdecls={"tns": namespace})
        for name, value in args.items():
            param = Element(QName("", name))
            if value is None:
                param.set(XSI_NIL, "true")
            else:
                param.set(XSI_TYPE, primitive_xsi_type(value))
                param.text = plant(("arg", name))
            wrapper.append(param)
        envelope = SoapEnvelope(body_content=wrapper)

        proto_reply: Optional[EndpointReference] = None
        if maps.reply_to is not None:
            proto_reply = EndpointReference(plant(("reply", "address")))
            for i, prop in enumerate(maps.reply_to.reference_properties):
                clone = Element(prop.name, nsdecls=dict(prop.nsdecls))
                clone.text = plant(("reply", i))
                proto_reply.add_property(clone)
        proto_maps = MessageAddressingProperties(
            to=maps.to,
            action=maps.action,
            reply_to=proto_reply,
            message_id=plant(("mid",)) if maps.message_id is not None else None,
            trace_context=plant(("tc",)) if maps.trace_context is not None else None,
        )
        proto_maps.apply_to(envelope, target=target)
        return EnvelopeTemplate.from_wire(envelope.to_wire(), sentinels)

    # -- per-call values ---------------------------------------------------
    @staticmethod
    def _values(
        maps: MessageAddressingProperties, args: dict[str, Any]
    ) -> Optional[dict]:
        values: dict = {}
        if maps.message_id is not None:
            if not maps.message_id:
                return None
            values[("mid",)] = escape_text(maps.message_id)
        if maps.trace_context is not None:
            if not maps.trace_context:
                return None
            values[("tc",)] = escape_text(maps.trace_context)
        for name, value in args.items():
            if value is None:
                continue
            text = primitive_text(value)
            if not text:
                # '' would self-close on the slow path; fall back
                return None
            values[("arg", name)] = escape_text(text)
        if maps.reply_to is not None:
            values[("reply", "address")] = escape_text(maps.reply_to.address)
            for i, prop in enumerate(maps.reply_to.reference_properties):
                if not prop.text:
                    return None
                values[("reply", i)] = escape_text(prop.text)
        return values


#: Process-wide template cache shared by every invocation node.
request_templates = RequestTemplateCache()
