"""Message addressing properties and the WS-Addressing SOAP binding.

The binding rules the paper uses (§IV-B items 3–5):

- ``To`` ← the Address URI of the target EPR (mandatory);
- ``Action`` ← the Address URI plus a fragment naming the operation
  ("a URI that corresponds to an abstract WSDL construct");
- the target EPR's ReferenceProperties are copied *directly* into the
  SOAP header, as siblings of the other wsa headers;
- ``ReplyTo`` carries a full EPR for the response channel;
- ``MessageID`` / ``RelatesTo`` correlate asynchronous replies.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.soap.envelope import SoapEnvelope
from repro.wsa.epr import EndpointReference, WsaError
from repro.xmlkit import Element, QName, ns

_TO = QName(ns.WSA, "To", "wsa")
_ACTION = QName(ns.WSA, "Action", "wsa")
_REPLY_TO = QName(ns.WSA, "ReplyTo", "wsa")
_FROM = QName(ns.WSA, "From", "wsa")
_FAULT_TO = QName(ns.WSA, "FaultTo", "wsa")
_MESSAGE_ID = QName(ns.WSA, "MessageID", "wsa")
_RELATES_TO = QName(ns.WSA, "RelatesTo", "wsa")

_message_counter = itertools.count(1)


def new_message_id(prefix: str = "urn:uuid:repro") -> str:
    """Mint a unique (per-process) MessageID URI.

    Deterministic counter rather than a random UUID so simulation runs
    are reproducible.
    """
    return f"{prefix}-{next(_message_counter):08d}"


class MessageAddressingProperties:
    """The WS-A header values of one message."""

    def __init__(
        self,
        to: str,
        action: str,
        reply_to: Optional[EndpointReference] = None,
        message_id: Optional[str] = None,
        relates_to: Optional[str] = None,
        source: Optional[EndpointReference] = None,
        fault_to: Optional[EndpointReference] = None,
    ):
        if not to:
            raise WsaError("wsa:To is mandatory")
        if not action:
            raise WsaError("wsa:Action is mandatory")
        self.to = to
        self.action = action
        self.reply_to = reply_to
        self.message_id = message_id
        self.relates_to = relates_to
        self.source = source
        self.fault_to = fault_to

    # ------------------------------------------------------------------
    @classmethod
    def for_request(
        cls,
        target: EndpointReference,
        operation: str,
        reply_to: Optional[EndpointReference] = None,
    ) -> "MessageAddressingProperties":
        """Build the MAPs addressing *operation* of *target*.

        Action = target address + ``#operation`` fragment, following the
        paper's rule that Action names the WSDL operation.
        """
        action = target.address
        if operation:
            action = f"{action}#{operation}"
        return cls(
            to=target.address,
            action=action,
            reply_to=reply_to,
            message_id=new_message_id(),
        )

    @property
    def operation(self) -> str:
        """The operation name from the Action fragment ('' if none)."""
        _, _, fragment = self.action.partition("#")
        return fragment

    # ------------------------------------------------------------------
    def apply_to(
        self,
        envelope: SoapEnvelope,
        target: Optional[EndpointReference] = None,
    ) -> SoapEnvelope:
        """Write the headers into *envelope*.

        When *target* is given, its ReferenceProperties are copied
        directly into the SOAP header (binding rule 3).
        """
        envelope.add_header(Element(_TO, text=self.to, nsdecls={"wsa": ns.WSA}))
        envelope.add_header(Element(_ACTION, text=self.action, nsdecls={"wsa": ns.WSA}))
        if self.message_id:
            envelope.add_header(
                Element(_MESSAGE_ID, text=self.message_id, nsdecls={"wsa": ns.WSA})
            )
        if self.relates_to:
            envelope.add_header(
                Element(_RELATES_TO, text=self.relates_to, nsdecls={"wsa": ns.WSA})
            )
        if self.reply_to is not None:
            envelope.add_header(self.reply_to.to_element(_REPLY_TO))
        if self.source is not None:
            envelope.add_header(self.source.to_element(_FROM))
        if self.fault_to is not None:
            envelope.add_header(self.fault_to.to_element(_FAULT_TO))
        if target is not None:
            for prop in target.reference_properties:
                envelope.add_header(prop.copy())
        return envelope

    @classmethod
    def extract_from(cls, envelope: SoapEnvelope) -> "MessageAddressingProperties":
        """Read the MAPs back out of a received envelope."""
        to_block = envelope.find_header(_TO)
        action_block = envelope.find_header(_ACTION)
        if to_block is None or not to_block.text:
            raise WsaError("message carries no wsa:To header")
        if action_block is None or not action_block.text:
            raise WsaError("message carries no wsa:Action header")

        def epr_of(name: QName) -> Optional[EndpointReference]:
            block = envelope.find_header(name)
            return EndpointReference.from_element(block) if block is not None else None

        message_id_block = envelope.find_header(_MESSAGE_ID)
        relates_block = envelope.find_header(_RELATES_TO)
        return cls(
            to=to_block.text,
            action=action_block.text,
            reply_to=epr_of(_REPLY_TO),
            message_id=message_id_block.text if message_id_block is not None else None,
            relates_to=relates_block.text if relates_block is not None else None,
            source=epr_of(_FROM),
            fault_to=epr_of(_FAULT_TO),
        )

    def __repr__(self) -> str:
        return f"<MAPs to={self.to} action={self.action}>"


def message_id_of(envelope: SoapEnvelope) -> Optional[str]:
    """The ``wsa:MessageID`` of *envelope*, or None.

    Unlike :meth:`MessageAddressingProperties.extract_from`, this does
    not demand a fully-addressed message — the reliability layer keys
    duplicate suppression on the MessageID alone, and messages without
    one simply bypass dedup.
    """
    block = envelope.find_header(_MESSAGE_ID)
    return block.text if block is not None and block.text else None


def relates_to_of(envelope: SoapEnvelope) -> Optional[str]:
    """The ``wsa:RelatesTo`` of *envelope*, or None (ack correlation)."""
    block = envelope.find_header(_RELATES_TO)
    return block.text if block is not None and block.text else None
