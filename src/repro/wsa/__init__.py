"""WS-Addressing (March 2004 submission, as cited by the paper).

The P2PS binding's key trick (§IV-B): P2PS pipes are unidirectional, so
request/response is rebuilt by carrying the consumer's *reply pipe* in
the SOAP header as a WS-Addressing ``ReplyTo`` EndpointReference.

``epr``
    :class:`EndpointReference` — mandatory ``Address`` URI plus
    extensible ``ReferenceProperties``, with XML (de)serialisation.
``headers``
    :class:`MessageAddressingProperties` — To / Action / ReplyTo /
    MessageID / RelatesTo — and the SOAP-binding rules that turn an EPR
    into header blocks and back.
``p2psuri``
    The ``p2ps://<peer-id>/<service>#<pipe>`` URI scheme: build, parse,
    and the component-extraction rules the paper motivates.
"""

from repro.wsa.epr import EndpointReference, WsaError
from repro.wsa.headers import MessageAddressingProperties, new_message_id
from repro.wsa.p2psuri import P2psAddress, make_p2ps_uri, parse_p2ps_uri

__all__ = [
    "EndpointReference",
    "WsaError",
    "MessageAddressingProperties",
    "new_message_id",
    "P2psAddress",
    "make_p2ps_uri",
    "parse_p2ps_uri",
]
