"""Parsed-artifact caches for the message-codec fast path.

TerraService-style measurements put SOAP encode/decode at the top of
the web-service cost profile, and most of that work is *repeated*:
the same WSDL text is parsed per discovery, the same endpoint URI per
retransmission, the same envelope skeleton per invocation.  This module
is the one place that repetition is absorbed:

:class:`ArtifactCache`
    A small, named, bounded LRU map with hit/miss/eviction counters.
    Every cache in the codec layer is an instance of it, registered in
    a process-wide registry so operators can ask one question —
    :func:`cache_stats` — and see every cache's effectiveness.

Fast-path switches
    :func:`set_fastpath_enabled` / :func:`fastpath_disabled` gate every
    derived-artifact shortcut (envelope templates, parsed-WSDL reuse,
    URI memoisation).  Benchmarks use the switch to measure the slow
    path and the fast path *in the same process*; it is also the big
    red lever if a cache is ever suspected of serving stale artifacts.

Invalidation is explicit: callers that change the world (redeploys,
re-registrations) call :meth:`ArtifactCache.invalidate` /
:func:`clear_all_caches` rather than relying on TTL guesswork.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

_MISSING = object()


@dataclass
class CacheStats:
    """Mutable counters describing one cache's lifetime behaviour."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    size: int = 0
    max_entries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "size": self.size,
            "max_entries": self.max_entries,
        }


_registry: dict[str, "ArtifactCache"] = {}
_registry_lock = threading.Lock()
_fastpath_enabled = True


class ArtifactCache:
    """A named, bounded LRU cache with observable counters.

    Keys must be hashable; values are shared between callers, so cached
    artifacts are treated as immutable by convention (parsed WSDL
    definitions, frozen dataclasses, pre-split envelope templates).
    """

    def __init__(self, name: str, max_entries: int = 256):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.name = name
        self.max_entries = max_entries
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self.stats = CacheStats(max_entries=max_entries)
        with _registry_lock:
            _registry[name] = self

    # -- lookups -----------------------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        if not _fastpath_enabled:
            self.stats.misses += 1
            return default
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return default
        self._data.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Any, value: Any) -> Any:
        if not _fastpath_enabled:
            return value
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)
            self.stats.evictions += 1
        self.stats.size = len(self._data)
        return value

    def get_or_build(self, key: Any, build: Callable[[], Any]) -> Any:
        """Return the cached value for *key*, building (and storing) on miss."""
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = build()
            self.put(key, value)
        return value

    # -- invalidation ------------------------------------------------------
    def invalidate(self, key: Any) -> bool:
        """Drop one entry; returns True if it was present."""
        present = self._data.pop(key, _MISSING) is not _MISSING
        if present:
            self.stats.invalidations += 1
            self.stats.size = len(self._data)
        return present

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self._data)
        self._data.clear()
        self.stats.invalidations += dropped
        self.stats.size = 0
        return dropped

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __repr__(self) -> str:
        return (
            f"<ArtifactCache {self.name!r} {len(self._data)}/{self.max_entries} "
            f"hits={self.stats.hits} misses={self.stats.misses}>"
        )


# ----------------------------------------------------------------------
# registry-wide observability and control
# ----------------------------------------------------------------------
def cache_stats() -> dict[str, dict[str, Any]]:
    """Hit/miss counters of every registered cache, keyed by cache name."""
    with _registry_lock:
        return {name: cache.stats.as_dict() for name, cache in sorted(_registry.items())}


def clear_all_caches() -> int:
    """Explicitly invalidate every registered cache; returns entries dropped."""
    with _registry_lock:
        caches = list(_registry.values())
    return sum(cache.clear() for cache in caches)


def reset_cache_stats() -> None:
    """Zero every counter (benchmark hygiene between phases)."""
    with _registry_lock:
        caches = list(_registry.values())
    for cache in caches:
        cache.stats = CacheStats(max_entries=cache.max_entries, size=len(cache))


def set_fastpath_enabled(enabled: bool) -> None:
    """Globally enable/disable every derived-artifact cache."""
    global _fastpath_enabled
    _fastpath_enabled = bool(enabled)


def fastpath_enabled() -> bool:
    return _fastpath_enabled


@contextmanager
def fastpath_disabled() -> Iterator[None]:
    """Run a block with every codec cache bypassed (baseline measurement)."""
    previous = _fastpath_enabled
    set_fastpath_enabled(False)
    try:
        yield
    finally:
        set_fastpath_enabled(previous)
