"""Utility handlers for the SOAP pipeline (the Axis standard kit).

Axis shipped a small library of reusable handlers; these are the
equivalents this stack's users actually need:

:class:`LoggingHandler`
    Records every envelope passing either way (a wire-level tap).
:class:`TimingHandler`
    Measures per-exchange processing time on a supplied clock and keeps
    summary statistics.
:class:`HeaderInjectionHandler`
    Stamps a fixed header block onto outgoing responses / incoming
    requests — the classic way to propagate context (tenant ids,
    tracing tokens) without touching service code.
:class:`AllowListHandler`
    Refuses operations not on an allow list (a minimal authorization
    gate in the pipeline).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.soap.envelope import SoapEnvelope
from repro.soap.faults import FaultCode, SoapFault
from repro.soap.handlers import Direction, Handler, MessageContext
from repro.xmlkit import Element


class LoggingHandler(Handler):
    """Keeps (direction, service, operation, wire text) tuples."""

    name = "logging"

    def __init__(self, capture_wire: bool = False):
        self.capture_wire = capture_wire
        self.records: list[tuple[str, str, str, str]] = []

    def invoke(self, context: MessageContext) -> None:
        envelope = context.current
        wire = envelope.to_wire() if (self.capture_wire and envelope) else ""
        self.records.append(
            (context.direction.name.lower(), context.service_name, context.operation, wire)
        )

    def clear(self) -> None:
        self.records.clear()


class TimingHandler(Handler):
    """Measures request→response time per exchange on *clock*."""

    name = "timing"

    def __init__(self, clock: Callable[[], float]):
        self.clock = clock
        self.samples: list[float] = []
        self._started: Optional[float] = None

    def invoke(self, context: MessageContext) -> None:
        if context.direction is Direction.REQUEST:
            self._started = self.clock()
        elif self._started is not None:
            self.samples.append(self.clock() - self._started)
            self._started = None

    def on_fault(self, context: MessageContext, fault: SoapFault) -> None:
        # faulted exchanges still complete the measurement
        if self._started is not None:
            self.samples.append(self.clock() - self._started)
            self._started = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0


class HeaderInjectionHandler(Handler):
    """Adds a copy of *block* to every envelope in *direction*."""

    name = "header-injection"

    def __init__(self, block: Element, direction: Direction = Direction.RESPONSE):
        self.block = block
        self.direction = direction

    def invoke(self, context: MessageContext) -> None:
        if context.direction is not self.direction:
            return
        envelope = context.current
        if envelope is not None:
            envelope.add_header(self.block.copy())


class AllowListHandler(Handler):
    """Faults requests whose operation is not explicitly allowed."""

    name = "allow-list"

    def __init__(self, allowed_operations: set[str]):
        self.allowed = set(allowed_operations)
        self.refused = 0

    def invoke(self, context: MessageContext) -> None:
        if context.direction is not Direction.REQUEST:
            return
        if context.operation not in self.allowed:
            self.refused += 1
            raise SoapFault(
                FaultCode.CLIENT,
                f"operation {context.operation!r} is not permitted on "
                f"{context.service_name!r}",
            )
