"""SOAP faults: the error half of the message model."""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.xmlkit import Element, QName, ns


class FaultCode(Enum):
    """SOAP 1.1 fault codes (env namespace qualified on the wire)."""

    VERSION_MISMATCH = "VersionMismatch"
    MUST_UNDERSTAND = "MustUnderstand"
    CLIENT = "Client"
    SERVER = "Server"


class SoapFault(Exception):
    """A SOAP fault, usable as a Python exception and as wire content.

    ``detail`` is an optional :class:`Element` carried verbatim in the
    fault's ``<detail>`` wrapper.
    """

    def __init__(
        self,
        code: FaultCode,
        message: str,
        actor: str = "",
        detail: Optional[Element] = None,
    ):
        super().__init__(message)
        self.code = code
        self.message = message
        self.actor = actor
        self.detail = detail

    def to_element(self) -> Element:
        fault = Element(QName(ns.SOAP_ENV, "Fault", "soapenv"))
        # faultcode is an env-qualified QName in text content
        fault.add("faultcode", f"soapenv:{self.code.value}")
        fault.add("faultstring", self.message)
        if self.actor:
            fault.add("faultactor", self.actor)
        if self.detail is not None:
            wrapper = fault.add("detail")
            wrapper.append(self.detail.copy())
        return fault

    @classmethod
    def from_element(cls, elem: Element) -> "SoapFault":
        code_text = elem.find_text("faultcode", "Server")
        _, _, local = code_text.rpartition(":")
        try:
            code = FaultCode(local)
        except ValueError:
            code = FaultCode.SERVER
        message = elem.find_text("faultstring", "")
        actor = elem.find_text("faultactor", "")
        detail_wrapper = elem.find("detail")
        detail = None
        if detail_wrapper is not None and detail_wrapper.children:
            detail = detail_wrapper.children[0].copy()
        return cls(code, message, actor, detail)

    @staticmethod
    def is_fault_element(elem: Element) -> bool:
        return elem.name == QName(ns.SOAP_ENV, "Fault")

    def __repr__(self) -> str:
        return f"<SoapFault {self.code.value}: {self.message!r}>"
