"""SOAP faults: the error half of the message model."""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.xmlkit import Element, QName, ns


class FaultCode(Enum):
    """SOAP 1.1 fault codes (env namespace qualified on the wire)."""

    VERSION_MISMATCH = "VersionMismatch"
    MUST_UNDERSTAND = "MustUnderstand"
    CLIENT = "Client"
    SERVER = "Server"


class SoapFault(Exception):
    """A SOAP fault, usable as a Python exception and as wire content.

    ``detail`` is an optional :class:`Element` carried verbatim in the
    fault's ``<detail>`` wrapper.  ``subcode`` is a dotted suffix on
    the faultcode QName (SOAP 1.1 style, e.g. ``Server.Busy``).
    """

    def __init__(
        self,
        code: FaultCode,
        message: str,
        actor: str = "",
        detail: Optional[Element] = None,
        subcode: str = "",
    ):
        super().__init__(message)
        self.code = code
        self.message = message
        self.actor = actor
        self.detail = detail
        self.subcode = subcode

    @property
    def code_text(self) -> str:
        return self.code.value + (f".{self.subcode}" if self.subcode else "")

    def to_element(self) -> Element:
        fault = Element(QName(ns.SOAP_ENV, "Fault", "soapenv"))
        # faultcode is an env-qualified QName in text content
        fault.add("faultcode", f"soapenv:{self.code_text}")
        fault.add("faultstring", self.message)
        if self.actor:
            fault.add("faultactor", self.actor)
        if self.detail is not None:
            wrapper = fault.add("detail")
            wrapper.append(self.detail.copy())
        return fault

    @classmethod
    def from_element(cls, elem: Element) -> "SoapFault":
        code_text = elem.find_text("faultcode", "Server")
        _, _, local = code_text.rpartition(":")
        local, _, subcode = local.partition(".")
        try:
            code = FaultCode(local)
        except ValueError:
            code = FaultCode.SERVER
        message = elem.find_text("faultstring", "")
        actor = elem.find_text("faultactor", "")
        detail_wrapper = elem.find("detail")
        detail = None
        if detail_wrapper is not None and detail_wrapper.children:
            detail = detail_wrapper.children[0].copy()
        if code is FaultCode.SERVER and subcode == ServerBusyFault.SUBCODE:
            return ServerBusyFault.from_parts(message, actor, detail)
        if code is FaultCode.SERVER and subcode == ReplicaLagFault.SUBCODE:
            return ReplicaLagFault.from_parts(message, actor, detail)
        return cls(code, message, actor, detail, subcode=subcode)

    @staticmethod
    def is_fault_element(elem: Element) -> bool:
        return elem.name == QName(ns.SOAP_ENV, "Fault")

    def __repr__(self) -> str:
        return f"<SoapFault {self.code_text}: {self.message!r}>"


class ServerBusyFault(SoapFault):
    """``Server.Busy``: the provider shed this request under load.

    Carries a retry-after hint (seconds, virtual time) in the fault
    detail, so a client may back off and retransmit — or fail over to
    another endpoint of the same service.  Crucially the provider did
    *not* execute the operation, which makes a busy answer always safe
    to retry, unlike an ordinary ``Server`` fault.
    """

    SUBCODE = "Busy"
    _RETRY_AFTER = QName(ns.WSPEER, "RetryAfter", "wsp")

    def __init__(
        self,
        message: str = "service is at capacity",
        retry_after: float = 0.0,
        actor: str = "",
    ):
        detail = Element(
            self._RETRY_AFTER,
            text=f"{max(0.0, retry_after):g}",
            nsdecls={"wsp": ns.WSPEER},
        )
        super().__init__(
            FaultCode.SERVER, message, actor, detail, subcode=self.SUBCODE
        )
        self.retry_after = max(0.0, retry_after)

    @classmethod
    def from_parts(
        cls, message: str, actor: str, detail: Optional[Element]
    ) -> "ServerBusyFault":
        retry_after = 0.0
        if detail is not None and detail.name.local == "RetryAfter":
            try:
                retry_after = float(detail.text)
            except (TypeError, ValueError):
                retry_after = 0.0
        return cls(message or "service is at capacity", retry_after, actor)

    def __repr__(self) -> str:
        return f"<ServerBusyFault retry_after={self.retry_after:g}s>"


class ReplicaLagFault(SoapFault):
    """``Server.ReplicaLag``: this replica is behind on the session.

    Answered by a replication member that knows it has a gap in the
    session's delta stream — serving the call would risk a lost update,
    and executing it would fork the sequence numbering.  Like
    ``Server.Busy`` the member did *not* execute, so the fault is
    always safe to retry; unlike Busy it is a *failover* signal first
    (another member holds the missing history) and a backoff signal
    second.  Carries how many deltas behind and a retry-after hint in
    the detail, so both survive the wire round-trip.
    """

    SUBCODE = "ReplicaLag"
    _DETAIL = QName(ns.WSPEER, "ReplicaLag", "wsp")

    def __init__(
        self,
        message: str = "replica is behind on this session",
        behind_by: int = 0,
        retry_after: float = 0.0,
        actor: str = "",
    ):
        detail = Element(self._DETAIL, nsdecls={"wsp": ns.WSPEER})
        detail.add("BehindBy", str(max(0, int(behind_by))))
        detail.add("RetryAfter", f"{max(0.0, retry_after):g}")
        super().__init__(
            FaultCode.SERVER, message, actor, detail, subcode=self.SUBCODE
        )
        self.behind_by = max(0, int(behind_by))
        self.retry_after = max(0.0, retry_after)

    @classmethod
    def from_parts(
        cls, message: str, actor: str, detail: Optional[Element]
    ) -> "ReplicaLagFault":
        behind_by = 0
        retry_after = 0.0
        if detail is not None and detail.name.local == "ReplicaLag":
            try:
                behind_by = int(detail.find_text("BehindBy", "0"))
            except (TypeError, ValueError):
                behind_by = 0
            try:
                retry_after = float(detail.find_text("RetryAfter", "0"))
            except (TypeError, ValueError):
                retry_after = 0.0
        return cls(
            message or "replica is behind on this session",
            behind_by,
            retry_after,
            actor,
        )

    def __repr__(self) -> str:
        return (
            f"<ReplicaLagFault behind_by={self.behind_by} "
            f"retry_after={self.retry_after:g}s>"
        )


def is_busy_fault_element(elem: Element) -> bool:
    """True when *elem* is a Fault whose code is ``Server.Busy``.

    Used by the dedup layers: busy answers must never be retained as
    the canonical response for a MessageID, or a later retransmission
    would replay "busy" forever instead of executing.
    """
    if not SoapFault.is_fault_element(elem):
        return False
    code_text = elem.find_text("faultcode", "")
    _, _, local = code_text.rpartition(":")
    return local == f"{FaultCode.SERVER.value}.{ServerBusyFault.SUBCODE}"


def is_transient_fault_element(elem: Element) -> bool:
    """True for faults describing *provider state*, not call results:
    ``Server.Busy`` and ``Server.ReplicaLag``.

    Neither executed the operation, so neither may ever be retained as
    the canonical response for a MessageID — a retransmission (or a
    failover handoff reusing the same MessageID) must get a fresh
    decision, not a replay of "busy"/"behind".
    """
    if not SoapFault.is_fault_element(elem):
        return False
    code_text = elem.find_text("faultcode", "")
    _, _, local = code_text.rpartition(":")
    return local in (
        f"{FaultCode.SERVER.value}.{ServerBusyFault.SUBCODE}",
        f"{FaultCode.SERVER.value}.{ReplicaLagFault.SUBCODE}",
    )
