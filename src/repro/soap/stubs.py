"""Client stub generation.

Axis generated client stubs by emitting Java source and compiling it;
the paper notes WSPeer "extends the stub generation capabilities of
Axis by generating stubs directly to bytes, bypassing source generation
and compilation" (§IV-A).  Both strategies are reproduced:

:class:`DynamicStubBuilder`
    The WSPeer way — builds the proxy class in memory with ``type()``
    and closures.  No source text ever exists.
:class:`SourceCodegenStubBuilder`
    The traditional way — renders Python source for the stub class,
    ``compile()``\\ s and ``exec()``\\ s it.  Functionally identical,
    measurably slower; experiment E5 quantifies the difference.

Both produce classes whose instances forward each operation to an
``invoke`` callable: ``invoke(op_name, args_dict) -> result``.  The
invoke callable is supplied by the WSPeer client layer, so a stub works
identically over HTTP, HTTPG or P2PS pipes.
"""

from __future__ import annotations

import keyword
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.caching import ArtifactCache

InvokeFn = Callable[[str, dict[str, Any]], Any]


@dataclass(frozen=True)
class OperationSpec:
    """Shape of one operation as needed for stub generation."""

    name: str
    parameters: tuple[str, ...] = ()
    doc: str = ""


@dataclass(frozen=True)
class StubSpec:
    """Shape of a service port: what a stub class must expose."""

    service_name: str
    operations: tuple[OperationSpec, ...] = field(default_factory=tuple)

    def validate(self) -> None:
        seen: set[str] = set()
        for op in self.operations:
            if not op.name.isidentifier() or keyword.iskeyword(op.name):
                raise ValueError(f"operation name unusable as method: {op.name!r}")
            if op.name in seen:
                raise ValueError(f"duplicate operation: {op.name!r}")
            seen.add(op.name)
            for p in op.parameters:
                if not p.isidentifier() or keyword.iskeyword(p):
                    raise ValueError(f"parameter name unusable: {p!r} in {op.name}")


#: StubSpec is a frozen dataclass of frozen dataclasses — hashable — and
#: a stub class is a pure function of its spec, so identical specs (the
#: common case: many handles to the same service interface) share one
#: generated class.
_class_cache = ArtifactCache("stub-classes", max_entries=128)


class DynamicStubBuilder:
    """Builds stub classes directly in memory — no source, no compile."""

    def build_class(self, spec: StubSpec) -> type:
        cached = _class_cache.get(spec)
        if cached is not None:
            return cached
        cls = self._build_class(spec)
        return _class_cache.put(spec, cls)

    def _build_class(self, spec: StubSpec) -> type:
        spec.validate()

        def __init__(self, invoke: InvokeFn):  # noqa: N807
            self._invoke = invoke

        namespace: dict[str, Any] = {
            "__init__": __init__,
            "__doc__": f"Dynamic stub for service {spec.service_name!r}.",
            "_spec": spec,
        }
        for op in spec.operations:
            namespace[op.name] = self._make_method(op)
        return type(f"{spec.service_name}Stub", (object,), namespace)

    @staticmethod
    def _make_method(op: OperationSpec) -> Callable[..., Any]:
        params = op.parameters

        def method(self, *args: Any, **kwargs: Any) -> Any:
            if len(args) > len(params):
                raise TypeError(
                    f"{op.name}() takes at most {len(params)} arguments ({len(args)} given)"
                )
            call_args = dict(zip(params, args))
            for name, value in kwargs.items():
                if name not in params:
                    raise TypeError(f"{op.name}() got unexpected argument {name!r}")
                if name in call_args:
                    raise TypeError(f"{op.name}() got duplicate argument {name!r}")
                call_args[name] = value
            return self._invoke(op.name, call_args)

        method.__name__ = op.name
        method.__doc__ = op.doc or f"Invoke remote operation {op.name!r}."
        return method

    def build(self, spec: StubSpec, invoke: InvokeFn) -> Any:
        """Build the class and instantiate it over *invoke* in one step."""
        return self.build_class(spec)(invoke)


class SourceCodegenStubBuilder:
    """Builds stubs the traditional way: render source, compile, exec."""

    def render_source(self, spec: StubSpec) -> str:
        spec.validate()
        lines = [
            f"class {spec.service_name}Stub:",
            f"    '''Generated stub for service {spec.service_name!r}.'''",
            "    def __init__(self, invoke):",
            "        self._invoke = invoke",
        ]
        for op in spec.operations:
            arglist = ", ".join(["self", *op.parameters])
            mapping = ", ".join(f"{p!r}: {p}" for p in op.parameters)
            lines.append(f"    def {op.name}({arglist}):")
            lines.append(f"        return self._invoke({op.name!r}, {{{mapping}}})")
        return "\n".join(lines) + "\n"

    def build_class(self, spec: StubSpec) -> type:
        source = self.render_source(spec)
        code = compile(source, f"<stub:{spec.service_name}>", "exec")
        module_ns: dict[str, Any] = {}
        exec(code, module_ns)  # noqa: S102 - deliberate: this IS the codegen path
        return module_ns[f"{spec.service_name}Stub"]

    def build(self, spec: StubSpec, invoke: InvokeFn) -> Any:
        return self.build_class(spec)(invoke)
