"""SOAP-with-Attachments-style binary parts (E16).

Large binary payloads do not belong inside an envelope: base64 inflates
them by a third and the XML codec must escape-scan every byte.  This
module gives envelopes *attachments* — raw ``bytes`` parts carried next
to the envelope in a MIME-multipart-lite container and referenced from
the body by content-id (``href="cid:..."``), the SOAP-with-Attachments
convention the paper's Axis-era stack used.

The container is deliberately stricter than full MIME: every part
declares ``Content-Length``, so the decoder slices parts out by byte
count and never scans payload bytes for boundary strings — binary-safe
by construction, and streamable: :class:`MultipartFeedParser` accepts
the wire in arbitrary fragments and can hand each attachment body to a
caller-supplied sink as it arrives, holding O(chunk) memory.

Wire shape (all header text ASCII, bodies raw bytes)::

    --wspeer-part\\r\\n
    Content-Id: soap-envelope\\r\\n
    Content-Type: text/xml; charset=utf-8\\r\\n
    Content-Length: <n>\\r\\n
    \\r\\n
    <n envelope bytes>\\r\\n
    --wspeer-part\\r\\n
    Content-Id: <cid>\\r\\n
    ...
    --wspeer-part--\\r\\n

The first part is always the envelope (content-id ``soap-envelope``);
the rest are attachments in order.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Optional, Union

_BytesLike = Union[bytes, bytearray, memoryview]

MULTIPART_BOUNDARY = "wspeer-part"
MULTIPART_CONTENT_TYPE = (
    f'multipart/related; boundary="{MULTIPART_BOUNDARY}"; type="text/xml"'
)
ROOT_CONTENT_ID = "soap-envelope"
ENVELOPE_CONTENT_TYPE = "text/xml; charset=utf-8"
DEFAULT_CHUNK = 64 * 1024

_DASH_BOUNDARY = f"--{MULTIPART_BOUNDARY}".encode("ascii")
_FINAL_BOUNDARY = f"--{MULTIPART_BOUNDARY}--".encode("ascii")


class AttachmentError(ValueError):
    """Raised for malformed multipart wires or misused attachments."""


class Attachment:
    """One raw binary part.

    ``content`` may be materialised ``bytes``, or deferred: a *chunks*
    factory (a zero-argument callable returning an iterable of byte
    chunks, re-invocable for retransmits) plus an explicit *size*.
    Parts decoded into an external sink have neither — they expose only
    ``content_id``/``content_type``/``size`` and the sink's result.
    """

    __slots__ = ("content_id", "content_type", "size", "_content", "_chunks", "delivered")

    def __init__(
        self,
        content_id: str,
        content: Optional[_BytesLike] = None,
        content_type: str = "application/octet-stream",
        *,
        chunks: Optional[Callable[[], Iterable[bytes]]] = None,
        size: Optional[int] = None,
    ):
        if not content_id or any(c in content_id for c in "\r\n:"):
            raise AttachmentError(f"bad content id: {content_id!r}")
        self.content_id = content_id
        self.content_type = content_type
        self.delivered: object = None  # sink result for streamed decodes
        if content is not None:
            if chunks is not None:
                raise AttachmentError("pass content or chunks, not both")
            self._content: Optional[bytes] = bytes(content)
            self._chunks = None
            self.size = len(self._content)
        else:
            self._content = None
            self._chunks = chunks
            if chunks is not None and size is None:
                raise AttachmentError("chunked attachments need an explicit size")
            self.size = size if size is not None else 0

    @property
    def href(self) -> str:
        return f"cid:{self.content_id}"

    @property
    def is_streamed(self) -> bool:
        return self._content is None and self._chunks is not None

    def materialise(self) -> bytes:
        """The full content as one bytes object (caches the join)."""
        if self._content is None:
            if self._chunks is None:
                raise AttachmentError(
                    f"attachment {self.content_id!r} was streamed to a sink; "
                    "its content is not retained"
                )
            self._content = b"".join(bytes(c) for c in self._chunks())
            if len(self._content) != self.size:
                raise AttachmentError(
                    f"attachment {self.content_id!r} chunks yielded "
                    f"{len(self._content)} bytes, declared {self.size}"
                )
        return self._content

    def iter_chunks(self, chunk_size: int = DEFAULT_CHUNK) -> Iterator[bytes]:
        """Content as byte chunks without materialising streamed parts."""
        if self._content is not None:
            view = memoryview(self._content)
            for i in range(0, len(view), chunk_size):
                yield bytes(view[i : i + chunk_size])
            return
        if self._chunks is None:
            raise AttachmentError(
                f"attachment {self.content_id!r} has no retained content"
            )
        sent = 0
        for chunk in self._chunks():
            chunk = bytes(chunk)
            sent += len(chunk)
            yield chunk
        if sent != self.size:
            raise AttachmentError(
                f"attachment {self.content_id!r} chunks yielded {sent} bytes, "
                f"declared {self.size}"
            )

    def __repr__(self) -> str:
        kind = "streamed" if self.is_streamed else "bytes"
        return f"<Attachment {self.content_id} {self.content_type} {self.size}B {kind}>"


def cid_of(href: str) -> Optional[str]:
    """The content-id of a ``cid:`` href, or None for other hrefs."""
    if isinstance(href, str) and href.startswith("cid:") and len(href) > 4:
        return href[4:]
    return None


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------


def _part_head(content_id: str, content_type: str, length: int) -> bytes:
    return (
        f"--{MULTIPART_BOUNDARY}\r\n"
        f"Content-Id: {content_id}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {length}\r\n"
        "\r\n"
    ).encode("ascii")


def is_multipart(data: Union[str, _BytesLike]) -> bool:
    """True when *data* starts with this module's opening boundary."""
    if isinstance(data, str):
        return data.startswith(f"--{MULTIPART_BOUNDARY}\r\n")
    return bytes(data[: len(_DASH_BOUNDARY) + 2]) == _DASH_BOUNDARY + b"\r\n"


def iter_message_wire(
    envelope_wire: Union[str, bytes],
    attachments: Iterable[Attachment],
    chunk_size: int = DEFAULT_CHUNK,
) -> Iterator[bytes]:
    """The multipart wire as byte chunks; attachment content streams
    through without being materialised."""
    env = envelope_wire.encode("utf-8") if isinstance(envelope_wire, str) else bytes(envelope_wire)
    yield _part_head(ROOT_CONTENT_ID, ENVELOPE_CONTENT_TYPE, len(env))
    view = memoryview(env)
    for i in range(0, len(view), chunk_size):
        yield bytes(view[i : i + chunk_size])
    yield b"\r\n"
    for attachment in attachments:
        yield _part_head(attachment.content_id, attachment.content_type, attachment.size)
        yield from attachment.iter_chunks(chunk_size)
        yield b"\r\n"
    yield _FINAL_BOUNDARY + b"\r\n"


def message_to_wire(
    envelope_wire: Union[str, bytes], attachments: Iterable[Attachment]
) -> bytes:
    """The multipart wire as one bytes object."""
    return b"".join(iter_message_wire(envelope_wire, attachments))


def message_wire_length(
    envelope_wire: Union[str, bytes], attachments: Iterable[Attachment]
) -> int:
    """Total multipart byte count, without materialising streamed parts."""
    env_len = (
        len(envelope_wire.encode("utf-8"))
        if isinstance(envelope_wire, str)
        else len(envelope_wire)
    )
    total = len(_part_head(ROOT_CONTENT_ID, ENVELOPE_CONTENT_TYPE, env_len)) + env_len + 2
    for attachment in attachments:
        total += (
            len(_part_head(attachment.content_id, attachment.content_type, attachment.size))
            + attachment.size
            + 2
        )
    return total + len(_FINAL_BOUNDARY) + 2


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------


class _BufferSink:
    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def write(self, data: bytes) -> None:
        self._buf += data

    def close(self) -> bytes:
        return bytes(self._buf)


#: sink_factory signature: (content_id, content_type, length) -> sink or
#: None to buffer in memory.  A sink has write(bytes) and close().
SinkFactory = Callable[[str, str, int], Optional[object]]


class MultipartFeedParser:
    """Incremental decoder for the multipart container.

    Feed wire fragments of any size; each part's body bytes are pushed
    to a sink as they arrive — by default an in-memory buffer, or
    whatever *sink_factory* returns for that part (the envelope part is
    always buffered internally).  ``close()`` returns the
    ``(envelope_text, attachments)`` pair.
    """

    def __init__(self, sink_factory: Optional[SinkFactory] = None):
        self._sink_factory = sink_factory
        self._buf = bytearray()
        self._state = "boundary"
        self._header_lines: list[str] = []
        self._remaining = 0
        self._sink: Optional[object] = None
        self._external_sink = False
        self._part_meta: Optional[tuple[str, str, int]] = None
        self._envelope: Optional[str] = None
        self._attachments: list[Attachment] = []
        self._closed = False

    # ------------------------------------------------------------------
    def feed(self, data: _BytesLike) -> None:
        if self._closed:
            raise AttachmentError("feed() after close()")
        self._buf += bytes(data)
        self._pump()

    def close(self) -> tuple[str, list[Attachment]]:
        if self._closed:
            raise AttachmentError("close() called twice")
        self._closed = True
        if self._state != "done":
            raise AttachmentError(
                f"truncated multipart message (decoder in state {self._state!r})"
            )
        if self._buf.strip(b"\r\n"):
            raise AttachmentError("trailing data after final boundary")
        assert self._envelope is not None
        return self._envelope, self._attachments

    @property
    def complete(self) -> bool:
        return self._state == "done"

    # ------------------------------------------------------------------
    def _pump(self) -> None:
        buf = self._buf
        while True:
            if self._state == "boundary":
                line = self._take_line()
                if line is None:
                    return
                if line == _DASH_BOUNDARY:
                    self._state = "headers"
                    self._header_lines = []
                elif line == _FINAL_BOUNDARY:
                    if self._envelope is None:
                        raise AttachmentError("multipart message has no envelope part")
                    self._state = "done"
                else:
                    raise AttachmentError(f"bad multipart boundary line: {line!r}")
            elif self._state == "headers":
                line = self._take_line()
                if line is None:
                    return
                if line:
                    try:
                        self._header_lines.append(line.decode("ascii"))
                    except UnicodeDecodeError:
                        raise AttachmentError("non-ASCII part header") from None
                else:
                    self._begin_part()
            elif self._state == "body":
                if self._remaining:
                    take = min(len(buf), self._remaining)
                    if not take:
                        return
                    self._sink.write(bytes(buf[:take]))
                    del buf[:take]
                    self._remaining -= take
                if self._remaining:
                    return
                self._finish_part()
                self._state = "crlf"
            elif self._state == "crlf":
                if len(buf) < 2:
                    return
                if bytes(buf[:2]) != b"\r\n":
                    raise AttachmentError(
                        "part body does not end at its declared Content-Length"
                    )
                del buf[:2]
                self._state = "boundary"
            else:  # done
                return

    def _take_line(self) -> Optional[bytes]:
        idx = self._buf.find(b"\r\n")
        if idx < 0:
            return None
        line = bytes(self._buf[:idx])
        del self._buf[: idx + 2]
        return line

    def _begin_part(self) -> None:
        cid = ctype = None
        length: Optional[int] = None
        for line in self._header_lines:
            name, sep, value = line.partition(":")
            if not sep:
                raise AttachmentError(f"malformed part header: {line!r}")
            name = name.strip().lower()
            value = value.strip()
            if name == "content-id":
                cid = value
            elif name == "content-type":
                ctype = value
            elif name == "content-length":
                if not value.isdigit():
                    raise AttachmentError(f"bad part Content-Length: {value!r}")
                length = int(value)
        if cid is None or length is None:
            raise AttachmentError("part is missing Content-Id or Content-Length")
        ctype = ctype or "application/octet-stream"
        if self._envelope is None and not self._attachments:
            if cid != ROOT_CONTENT_ID:
                raise AttachmentError(
                    f"first multipart part must be the envelope, got {cid!r}"
                )
            self._sink = _BufferSink()
            self._external_sink = False
        else:
            if cid == ROOT_CONTENT_ID:
                raise AttachmentError("duplicate envelope part")
            sink = self._sink_factory(cid, ctype, length) if self._sink_factory else None
            self._external_sink = sink is not None
            self._sink = sink if sink is not None else _BufferSink()
        self._part_meta = (cid, ctype, length)
        self._remaining = length
        self._state = "body"

    def _finish_part(self) -> None:
        cid, ctype, length = self._part_meta
        result = self._sink.close()
        self._sink = None
        if cid == ROOT_CONTENT_ID:
            try:
                self._envelope = bytes(result).decode("utf-8")
            except (TypeError, UnicodeDecodeError):
                raise AttachmentError("envelope part is not valid UTF-8") from None
            return
        if not self._external_sink and isinstance(result, (bytes, bytearray)):
            attachment = Attachment(cid, bytes(result), ctype)
        else:
            attachment = Attachment(cid, content_type=ctype, size=length)
            attachment.delivered = result
        self._attachments.append(attachment)


def message_from_wire(
    data: _BytesLike, sink_factory: Optional[SinkFactory] = None
) -> tuple[str, list[Attachment]]:
    """Decode a complete multipart wire into ``(envelope_text, attachments)``."""
    parser = MultipartFeedParser(sink_factory)
    parser.feed(data)
    return parser.close()


# ----------------------------------------------------------------------
# decode-time attachment resolution
# ----------------------------------------------------------------------

_ACTIVE_ATTACHMENTS: list[dict[str, Attachment]] = []


@contextmanager
def attachment_scope(attachments: Iterable[Attachment]):
    """Make *attachments* resolvable by content-id while decoding.

    The value decoder (:func:`repro.soap.encoding.decode_value`) turns
    ``href="cid:x"`` references into the matching :class:`Attachment`
    from the innermost active scope.
    """
    _ACTIVE_ATTACHMENTS.append({a.content_id: a for a in attachments})
    try:
        yield
    finally:
        _ACTIVE_ATTACHMENTS.pop()


def resolve_attachment(content_id: str) -> Attachment:
    """The in-scope attachment for *content_id*, or a detached
    placeholder (size 0, no content) when nothing matches — liberal
    decoding for foreign stacks that strip parts."""
    for scope in reversed(_ACTIVE_ATTACHMENTS):
        found = scope.get(content_id)
        if found is not None:
            return found
    return Attachment(content_id, content_type="application/octet-stream", size=0)


def collect_attachments(value: object) -> list[Attachment]:
    """Every :class:`Attachment` reachable from *value* through lists,
    tuples and dicts, in encoding order, deduplicated by identity."""
    out: list[Attachment] = []
    seen: set[int] = set()

    def walk(v: object) -> None:
        if isinstance(v, Attachment):
            if id(v) not in seen:
                seen.add(id(v))
                out.append(v)
        elif isinstance(v, (list, tuple)):
            for item in v:
                walk(item)
        elif isinstance(v, dict):
            for item in v.values():
                walk(item)

    walk(value)
    return out
