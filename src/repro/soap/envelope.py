"""The SOAP envelope: header blocks and body."""

from __future__ import annotations

from typing import Optional

from repro.caching import ArtifactCache, fastpath_enabled
from repro.soap.attachments import (
    Attachment,
    is_multipart,
    message_from_wire,
    message_to_wire,
)
from repro.soap.faults import SoapFault
from repro.xmlkit import Element, QName, ns, parse, serialize
from repro.xmlkit.serializer import escape_text


class SoapEnvelopeError(ValueError):
    """Raised for documents that are not valid SOAP envelopes."""


_ENVELOPE = QName(ns.SOAP_ENV, "Envelope", "soapenv")
_HEADER = QName(ns.SOAP_ENV, "Header", "soapenv")
_BODY = QName(ns.SOAP_ENV, "Body", "soapenv")
MUST_UNDERSTAND = QName(ns.SOAP_ENV, "mustUnderstand", "soapenv")
ACTOR = QName(ns.SOAP_ENV, "actor", "soapenv")


class SoapEnvelope:
    """A SOAP 1.1 envelope.

    ``headers`` is the ordered list of header block elements;
    ``body_content`` is the single body child (RPC operation element or
    Fault).  An empty body is legal for pure-header messages.
    ``attachments`` (E16) are raw binary parts carried next to the
    envelope and referenced from the body by ``cid:`` href; an envelope
    with attachments serialises to a multipart byte wire via
    :meth:`to_wire_message`.
    """

    def __init__(
        self,
        body_content: Optional[Element] = None,
        headers: Optional[list[Element]] = None,
        attachments: Optional[list[Attachment]] = None,
    ):
        self.headers: list[Element] = list(headers or [])
        self.body_content = body_content
        self.attachments: list[Attachment] = list(attachments or [])

    # ------------------------------------------------------------------
    # header conveniences
    # ------------------------------------------------------------------
    def add_header(self, block: Element, must_understand: bool = False) -> Element:
        if must_understand:
            block.set(MUST_UNDERSTAND, "1")
        self.headers.append(block)
        return block

    def find_header(self, name: QName | str) -> Optional[Element]:
        for block in self.headers:
            want = name if isinstance(name, QName) else QName("", name)
            if block.name == want or (
                isinstance(name, str) and block.name.local == name
            ):
                return block
        return None

    def find_headers(self, uri: str) -> list[Element]:
        """All header blocks in namespace *uri*."""
        return [b for b in self.headers if b.name.uri == uri]

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    @property
    def is_fault(self) -> bool:
        return self.body_content is not None and SoapFault.is_fault_element(self.body_content)

    def fault(self) -> Optional[SoapFault]:
        if not self.is_fault:
            return None
        assert self.body_content is not None
        return SoapFault.from_element(self.body_content)

    @classmethod
    def for_fault(cls, fault: SoapFault) -> "SoapEnvelope":
        return cls(body_content=fault.to_element())

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def to_element(self) -> Element:
        env = Element(
            _ENVELOPE,
            nsdecls={
                "soapenv": ns.SOAP_ENV,
                "xsd": ns.XSD,
                "xsi": ns.XSI,
            },
        )
        header = env.add(_HEADER)
        for block in self.headers:
            header.append(block.copy())
        body = env.add(_BODY)
        if self.body_content is not None:
            body.append(self.body_content.copy())
        return env

    def to_wire(self, pretty: bool = False) -> str:
        if not pretty:
            wire = wire_templates.render(self)
            if wire is not None:
                return wire
        return serialize(self.to_element(), pretty=pretty, xml_declaration=True)

    @classmethod
    def from_element(cls, env: Element) -> "SoapEnvelope":
        if env.name != _ENVELOPE:
            raise SoapEnvelopeError(f"not a SOAP envelope: {env.name}")
        header = env.find(_HEADER)
        body = env.find(_BODY)
        if body is None:
            raise SoapEnvelopeError("SOAP envelope has no Body")
        headers = [b.copy_with_scope() for b in header.children] if header is not None else []
        children = body.children
        if len(children) > 1:
            raise SoapEnvelopeError("multiple Body children are not supported")
        content = children[0].copy_with_scope() if children else None
        return cls(body_content=content, headers=headers)

    def to_wire_message(self):
        """The full wire representation: plain XML text when there are
        no attachments, multipart ``bytes`` when there are."""
        if not self.attachments:
            return self.to_wire()
        return message_to_wire(self.to_wire(), self.attachments)

    @classmethod
    def from_wire(cls, text: str) -> "SoapEnvelope":
        return cls.from_element(parse(text))

    @classmethod
    def from_wire_message(cls, wire) -> "SoapEnvelope":
        """Decode either wire shape: XML text (``str`` or UTF-8
        ``bytes``) or a multipart attachment container (``bytes``)."""
        if isinstance(wire, (bytes, bytearray, memoryview)):
            if is_multipart(wire):
                envelope_text, attachments = message_from_wire(wire)
                envelope = cls.from_wire(envelope_text)
                envelope.attachments = attachments
                return envelope
            wire = bytes(wire).decode("utf-8")
        return cls.from_wire(wire)

    def __repr__(self) -> str:
        op = self.body_content.name.local if self.body_content is not None else "(empty)"
        return f"<SoapEnvelope body={op} headers={len(self.headers)}>"


class EnvelopeTemplate:
    """A pre-serialised envelope with holes for the per-call fields.

    Most of an RPC request envelope is invariant across calls to the
    same operation of the same endpoint — the skeleton, the addressing
    headers, the parameter names and ``xsi:type`` markers.  A template
    captures that invariant text once (produced by the *real* slow
    path, so the bytes are identical by construction) and splits it at
    sentinel markers into ``segments``; :meth:`render` interleaves the
    per-call field texts to rebuild the full wire string with plain
    ``str.join``.

    Field values passed to :meth:`render` must already be escaped —
    the caller applies :func:`repro.xmlkit.serializer.escape_text`
    exactly where the slow path would.
    """

    __slots__ = ("segments", "fields")

    def __init__(self, segments: list[str], fields: list):
        self.segments = segments
        self.fields = fields

    @classmethod
    def from_wire(cls, wire: str, sentinels: dict) -> Optional["EnvelopeTemplate"]:
        """Split *wire* at the planted sentinel strings.

        *sentinels* maps a field key to the sentinel text that stands
        in for it in the prototype wire.  Returns None when any
        sentinel does not occur exactly once (static document content
        collided with the marker alphabet) — the caller falls back to
        the slow path.
        """
        spans: list[tuple[int, int, object]] = []
        for key, marker in sentinels.items():
            first = wire.find(marker)
            if first < 0 or wire.find(marker, first + 1) >= 0:
                return None
            spans.append((first, len(marker), key))
        spans.sort()
        segments: list[str] = []
        fields: list = []
        prev = 0
        for start, length, key in spans:
            if start < prev:
                return None  # overlapping markers
            segments.append(wire[prev:start])
            fields.append(key)
            prev = start + length
        segments.append(wire[prev:])
        return cls(segments, fields)

    def render(self, values: dict) -> str:
        segments = self.segments
        parts = [segments[0]]
        append = parts.append
        for i, key in enumerate(self.fields):
            append(values[key])
            append(segments[i + 1])
        return "".join(parts)

    def __repr__(self) -> str:
        return f"<EnvelopeTemplate fields={len(self.fields)}>"


# ----------------------------------------------------------------------
# generic wire templates (the :meth:`SoapEnvelope.to_wire` fast path)
# ----------------------------------------------------------------------
#: marks a shape whose template build failed (sentinel collision with
#: static document content); cached so the probe is not re-run.
_UNTEMPLATABLE = object()


def _leaf_shape(elem: Element) -> Optional[tuple]:
    """Static identity of a childless element; its text is the hole.

    Returns None for elements with child elements — those shapes are
    left to the ordinary serialiser.
    """
    for item in elem.content:
        if not isinstance(item, str):
            return None
    name = elem.name
    return (
        (name.uri, name.local, name.prefix),
        tuple(elem.nsdecls.items()),
        tuple(((a.uri, a.local, a.prefix), v) for a, v in elem.attributes.items()),
        bool(elem.content),
    )


class WireTemplateCache:
    """Pre-serialised envelope skeletons keyed by envelope *shape*.

    Most envelopes this stack emits — RPC responses, acks, retained
    dedup replays — share a small set of shapes: text-only header
    blocks plus a body wrapper whose children are text-only parameter
    elements.  The shape (names, prefix hints, namespace declarations,
    attributes, text presence — everything byte-affecting except the
    text values) keys a template whose prototype is serialised by the
    real serialiser with sentinel text, so rendering is a string splice
    with bytes identical to the slow path by construction.  Body
    content is shaped *recursively*: element trees whose leaves carry
    only text (RPC responses, struct returns, faults with detail
    trees — the ``Server.Busy`` shed path in particular) all template;
    mixed content (text alongside child elements) and header blocks
    with children make :meth:`render` return None and the caller runs
    the ordinary serialiser.
    """

    #: body trees deeper than this fall back to the ordinary serialiser
    MAX_DEPTH = 6

    def __init__(self, max_entries: int = 256):
        self._cache = ArtifactCache("wire-templates", max_entries)

    def render(self, envelope: "SoapEnvelope") -> Optional[str]:
        """The full wire text of *envelope*, or None to signal slow-path."""
        if not fastpath_enabled():
            return None
        key = self._key(envelope)
        if key is None:
            return None
        template = self._cache.get(key)
        if template is _UNTEMPLATABLE:
            return None
        if template is None:
            template = self._build(key)
            self._cache.put(key, template if template is not None else _UNTEMPLATABLE)
            if template is None:
                return None
        return template.render(self._values(envelope))

    def invalidate_all(self) -> int:
        return self._cache.clear()

    @classmethod
    def _tree_shape(cls, elem: Element, depth: int = 0) -> Optional[tuple]:
        """Recursive static identity of *elem*; leaf texts are the holes.

        Mixed content (text next to child elements) and over-deep trees
        return None — those shapes go to the ordinary serialiser.
        """
        if depth > cls.MAX_DEPTH:
            return None
        name = elem.name
        static = (
            (name.uri, name.local, name.prefix),
            tuple(elem.nsdecls.items()),
            tuple(((a.uri, a.local, a.prefix), v) for a, v in elem.attributes.items()),
        )
        if any(not isinstance(item, str) for item in elem.content):
            kids = []
            for item in elem.content:
                if isinstance(item, str):
                    return None  # mixed content
                sub = cls._tree_shape(item, depth + 1)
                if sub is None:
                    return None
                kids.append(sub)
            return static + (("node", tuple(kids)),)
        return static + (("leaf", bool(elem.content)),)

    @classmethod
    def _key(cls, envelope: "SoapEnvelope") -> Optional[tuple]:
        headers = []
        for block in envelope.headers:
            leaf = _leaf_shape(block)
            if leaf is None:
                return None
            headers.append(leaf)
        body = envelope.body_content
        body_shape = None
        if body is not None:
            body_shape = cls._tree_shape(body)
            if body_shape is None:
                return None
        return (tuple(headers), body_shape)

    @staticmethod
    def _build(key: tuple) -> Optional[EnvelopeTemplate]:
        header_shapes, body_shape = key
        sentinels: dict = {}

        def plant(hole_key: tuple) -> str:
            # NUL never survives escaping, so a collision requires
            # NUL in static content — caught by from_wire
            marker = f"\x00{len(sentinels)}\x00"
            sentinels[hole_key] = marker
            return marker

        def leaf_from(shape: tuple, hole_key: tuple) -> Element:
            name, nsd, attrs, has_text = shape
            elem = Element(QName(*name), nsdecls=dict(nsd) or None)
            for aname, avalue in attrs:
                elem.attributes[QName(*aname)] = avalue
            if has_text:
                elem.append_text(plant(hole_key))
            return elem

        def tree_from(shape: tuple, path: tuple) -> Element:
            name, nsd, attrs, tail = shape
            kind, payload = tail
            if kind == "leaf":
                return leaf_from((name, nsd, attrs, payload), ("c",) + path)
            elem = Element(QName(*name), nsdecls=dict(nsd) or None)
            for aname, avalue in attrs:
                elem.attributes[QName(*aname)] = avalue
            for j, sub in enumerate(payload):
                elem.append(tree_from(sub, path + (j,)))
            return elem

        headers = [leaf_from(shape, ("h", i)) for i, shape in enumerate(header_shapes)]
        body: Optional[Element] = None
        if body_shape is not None:
            body = tree_from(body_shape, ())
        proto = SoapEnvelope(body_content=body, headers=headers)
        wire = serialize(proto.to_element(), xml_declaration=True)
        return EnvelopeTemplate.from_wire(wire, sentinels)

    @staticmethod
    def _values(envelope: "SoapEnvelope") -> dict:
        values: dict = {}
        for i, block in enumerate(envelope.headers):
            if block.content:
                values[("h", i)] = escape_text(block.text)

        def walk(elem: Element, path: tuple) -> None:
            if any(not isinstance(item, str) for item in elem.content):
                for j, item in enumerate(elem.content):
                    walk(item, path + (j,))
                return
            if elem.content:
                values[("c",) + path] = escape_text(elem.text)

        body = envelope.body_content
        if body is not None:
            walk(body, ())
        return values


#: Process-wide wire-template cache consulted by every ``to_wire``.
wire_templates = WireTemplateCache()
