"""The SOAP envelope: header blocks and body."""

from __future__ import annotations

from typing import Optional

from repro.soap.faults import SoapFault
from repro.xmlkit import Element, QName, ns, parse, serialize


class SoapEnvelopeError(ValueError):
    """Raised for documents that are not valid SOAP envelopes."""


_ENVELOPE = QName(ns.SOAP_ENV, "Envelope", "soapenv")
_HEADER = QName(ns.SOAP_ENV, "Header", "soapenv")
_BODY = QName(ns.SOAP_ENV, "Body", "soapenv")
MUST_UNDERSTAND = QName(ns.SOAP_ENV, "mustUnderstand", "soapenv")
ACTOR = QName(ns.SOAP_ENV, "actor", "soapenv")


class SoapEnvelope:
    """A SOAP 1.1 envelope.

    ``headers`` is the ordered list of header block elements;
    ``body_content`` is the single body child (RPC operation element or
    Fault).  An empty body is legal for pure-header messages.
    """

    def __init__(
        self,
        body_content: Optional[Element] = None,
        headers: Optional[list[Element]] = None,
    ):
        self.headers: list[Element] = list(headers or [])
        self.body_content = body_content

    # ------------------------------------------------------------------
    # header conveniences
    # ------------------------------------------------------------------
    def add_header(self, block: Element, must_understand: bool = False) -> Element:
        if must_understand:
            block.set(MUST_UNDERSTAND, "1")
        self.headers.append(block)
        return block

    def find_header(self, name: QName | str) -> Optional[Element]:
        for block in self.headers:
            want = name if isinstance(name, QName) else QName("", name)
            if block.name == want or (
                isinstance(name, str) and block.name.local == name
            ):
                return block
        return None

    def find_headers(self, uri: str) -> list[Element]:
        """All header blocks in namespace *uri*."""
        return [b for b in self.headers if b.name.uri == uri]

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    @property
    def is_fault(self) -> bool:
        return self.body_content is not None and SoapFault.is_fault_element(self.body_content)

    def fault(self) -> Optional[SoapFault]:
        if not self.is_fault:
            return None
        assert self.body_content is not None
        return SoapFault.from_element(self.body_content)

    @classmethod
    def for_fault(cls, fault: SoapFault) -> "SoapEnvelope":
        return cls(body_content=fault.to_element())

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def to_element(self) -> Element:
        env = Element(
            _ENVELOPE,
            nsdecls={
                "soapenv": ns.SOAP_ENV,
                "xsd": ns.XSD,
                "xsi": ns.XSI,
            },
        )
        header = env.add(_HEADER)
        for block in self.headers:
            header.append(block.copy())
        body = env.add(_BODY)
        if self.body_content is not None:
            body.append(self.body_content.copy())
        return env

    def to_wire(self, pretty: bool = False) -> str:
        return serialize(self.to_element(), pretty=pretty, xml_declaration=True)

    @classmethod
    def from_element(cls, env: Element) -> "SoapEnvelope":
        if env.name != _ENVELOPE:
            raise SoapEnvelopeError(f"not a SOAP envelope: {env.name}")
        header = env.find(_HEADER)
        body = env.find(_BODY)
        if body is None:
            raise SoapEnvelopeError("SOAP envelope has no Body")
        headers = [b.copy_with_scope() for b in header.children] if header is not None else []
        children = body.children
        if len(children) > 1:
            raise SoapEnvelopeError("multiple Body children are not supported")
        content = children[0].copy_with_scope() if children else None
        return cls(body_content=content, headers=headers)

    @classmethod
    def from_wire(cls, text: str) -> "SoapEnvelope":
        return cls.from_element(parse(text))

    def __repr__(self) -> str:
        op = self.body_content.name.local if self.body_content is not None else "(empty)"
        return f"<SoapEnvelope body={op} headers={len(self.headers)}>"
