"""Server-side RPC dispatch: envelope in, envelope out.

The unit of deployment is a :class:`ServiceObject`.  Per the paper's
third break with tradition (§III), a service is an *interface to live
objects*: "each operation given to the service can map to a different
stateful object in memory".  :meth:`ServiceObject.map_operation` is
exactly that facility; :meth:`ServiceObject.from_instance` is the common
case of exposing one object's public methods.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Optional

from repro.soap.attachments import attachment_scope, collect_attachments
from repro.soap.encoding import StructRegistry, decode_value, encode_value
from repro.soap.envelope import SoapEnvelope
from repro.soap.faults import FaultCode, SoapFault
from repro.xmlkit import Element, QName


class Operation:
    """One callable operation of a service."""

    def __init__(self, name: str, target: Any, method_name: str):
        self.name = name
        self.target = target
        self.method_name = method_name
        self.callable: Callable[..., Any] = getattr(target, method_name)
        try:
            self.signature: Optional[inspect.Signature] = inspect.signature(self.callable)
        except (TypeError, ValueError):
            self.signature = None

    @property
    def parameter_names(self) -> list[str]:
        if self.signature is None:
            return []
        return [
            p.name
            for p in self.signature.parameters.values()
            if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
        ]

    def __repr__(self) -> str:
        return f"<Operation {self.name} -> {type(self.target).__name__}.{self.method_name}>"


class ServiceObject:
    """A deployable service: named operations over in-memory objects."""

    def __init__(self, name: str, namespace: str):
        self.name = name
        self.namespace = namespace
        self.operations: dict[str, Operation] = {}

    @classmethod
    def from_instance(
        cls,
        name: str,
        instance: Any,
        namespace: str,
        include: Optional[list[str]] = None,
    ) -> "ServiceObject":
        """Expose the public methods of *instance* as operations.

        *include* restricts to the listed method names; otherwise every
        non-underscore callable attribute becomes an operation.
        """
        service = cls(name, namespace)
        names = include
        if names is None:
            names = [
                attr
                for attr in dir(instance)
                if not attr.startswith("_") and callable(getattr(instance, attr))
            ]
        for method_name in names:
            if not callable(getattr(instance, method_name, None)):
                raise ValueError(f"{method_name!r} is not a callable of {instance!r}")
            service.map_operation(method_name, instance, method_name)
        return service

    def map_operation(self, op_name: str, target: Any, method_name: Optional[str] = None) -> Operation:
        """Map operation *op_name* to ``target.<method_name>``.

        Different operations may target different objects — the paper's
        "a service can be an interface to multiple objects".
        """
        op = Operation(op_name, target, method_name or op_name)
        self.operations[op_name] = op
        return op

    @property
    def operation_names(self) -> list[str]:
        return sorted(self.operations)

    def __repr__(self) -> str:
        return f"<ServiceObject {self.name} ops={self.operation_names}>"


class RpcDispatcher:
    """Decodes an RPC request body, calls the operation, encodes the reply."""

    def __init__(self, service: ServiceObject, registry: Optional[StructRegistry] = None):
        self.service = service
        self.registry = registry or StructRegistry()

    def dispatch(self, request: SoapEnvelope) -> SoapEnvelope:
        body = request.body_content
        if body is None:
            raise SoapFault(FaultCode.CLIENT, "empty request body")
        op_name = body.name.local
        operation = self.service.operations.get(op_name)
        if operation is None:
            raise SoapFault(
                FaultCode.CLIENT,
                f"service {self.service.name!r} has no operation {op_name!r}",
            )
        with attachment_scope(request.attachments):
            args, kwargs = self._decode_args(operation, body)
        try:
            result = operation.callable(*args, **kwargs)
        except SoapFault:
            raise
        except TypeError as exc:
            raise SoapFault(FaultCode.CLIENT, f"bad arguments for {op_name}: {exc}") from exc
        except Exception as exc:  # noqa: BLE001 - service boundary
            raise SoapFault(FaultCode.SERVER, f"{type(exc).__name__}: {exc}") from exc
        return self._encode_response(op_name, result)

    def _decode_args(self, operation: Operation, body: Element) -> tuple[list, dict]:
        param_names = operation.parameter_names
        positional: list[Any] = []
        keyword: dict[str, Any] = {}
        for child in body.children:
            value = decode_value(child, self.registry)
            name = child.name.local
            if name in param_names:
                keyword[name] = value
            else:
                positional.append(value)
        return positional, keyword

    def _encode_response(self, op_name: str, result: Any) -> SoapEnvelope:
        wrapper = Element(
            QName(self.service.namespace, f"{op_name}Response", "tns"),
            nsdecls={"tns": self.service.namespace},
        )
        wrapper.append(encode_value(QName("", "return"), result, self.registry))
        return SoapEnvelope(
            body_content=wrapper, attachments=collect_attachments(result)
        )


def build_rpc_request(
    namespace: str,
    op_name: str,
    args: dict[str, Any],
    registry: Optional[StructRegistry] = None,
) -> SoapEnvelope:
    """Client-side helper: build the RPC request envelope for *op_name*."""
    wrapper = Element(QName(namespace, op_name, "tns"), nsdecls={"tns": namespace})
    for name, value in args.items():
        wrapper.append(encode_value(QName("", name), value, registry))
    return SoapEnvelope(
        body_content=wrapper, attachments=collect_attachments(args)
    )


def extract_rpc_result(
    response: SoapEnvelope,
    registry: Optional[StructRegistry] = None,
) -> Any:
    """Client-side helper: pull the return value (or raise the fault)."""
    fault = response.fault()
    if fault is not None:
        raise fault
    body = response.body_content
    if body is None:
        return None
    ret = body.find("return")
    if ret is None:
        return None
    with attachment_scope(response.attachments):
        return decode_value(ret, registry)
