"""The handler-chain message pipeline (the Axis architecture).

A message travels through an ordered chain of handlers on its way in
(request flow) and again on its way out (response flow).  Handlers see
a shared :class:`MessageContext` and may transform the envelopes, set
properties, or fault out of the pipeline.  WSPeer's "application sees
every request and response either side of the messaging engine" hook is
implemented as handlers at the outermost positions of the chain.
"""

from __future__ import annotations

import abc
from enum import Enum, auto
from typing import Any, Optional

from repro.soap.envelope import MUST_UNDERSTAND, SoapEnvelope
from repro.soap.faults import FaultCode, SoapFault


class Direction(Enum):
    REQUEST = auto()
    RESPONSE = auto()


class MessageContext:
    """Mutable state shared by all handlers processing one exchange."""

    def __init__(self, request: SoapEnvelope, service_name: str = "", operation: str = ""):
        self.request = request
        self.response: Optional[SoapEnvelope] = None
        self.service_name = service_name
        self.operation = operation
        self.direction = Direction.REQUEST
        self.properties: dict[str, Any] = {}

    @property
    def current(self) -> Optional[SoapEnvelope]:
        """The envelope relevant to the current direction."""
        return self.request if self.direction is Direction.REQUEST else self.response

    def __repr__(self) -> str:
        return (
            f"<MessageContext {self.service_name}/{self.operation} "
            f"{self.direction.name.lower()}>"
        )


class Handler(abc.ABC):
    """One stage in the pipeline."""

    name = "handler"

    @abc.abstractmethod
    def invoke(self, context: MessageContext) -> None:
        """Process *context* in its current direction.

        Raise :class:`SoapFault` to abort; the chain converts it into a
        fault response and unwinds through already-invoked handlers'
        :meth:`on_fault`.
        """

    def on_fault(self, context: MessageContext, fault: SoapFault) -> None:
        """Called in reverse order when a later handler faulted."""


class MustUnderstandHandler(Handler):
    """Rejects requests carrying mustUnderstand headers nobody claims.

    The understood set is the union of namespaces registered by the
    other pipeline participants (e.g. the WS-Addressing handler
    registers the WSA namespace).
    """

    name = "must-understand"

    def __init__(self, understood_namespaces: Optional[set[str]] = None):
        self.understood: set[str] = set(understood_namespaces or ())

    def add_understood(self, uri: str) -> None:
        self.understood.add(uri)

    def invoke(self, context: MessageContext) -> None:
        if context.direction is not Direction.REQUEST:
            return
        for block in context.request.headers:
            if block.get(MUST_UNDERSTAND) in ("1", "true"):
                if block.name.uri not in self.understood:
                    raise SoapFault(
                        FaultCode.MUST_UNDERSTAND,
                        f"header {block.name} carries mustUnderstand "
                        "but is not understood by this node",
                    )


class CallbackHandler(Handler):
    """Adapts a plain callable into a Handler (for app-level hooks)."""

    def __init__(self, fn, name: str = "callback"):  # type: ignore[no-untyped-def]
        self.fn = fn
        self.name = name

    def invoke(self, context: MessageContext) -> None:
        self.fn(context)


class HandlerChain:
    """Ordered pipeline executed around a service invocation."""

    def __init__(self, handlers: Optional[list[Handler]] = None):
        self.handlers: list[Handler] = list(handlers or [])

    def append(self, handler: Handler) -> None:
        self.handlers.append(handler)

    def prepend(self, handler: Handler) -> None:
        self.handlers.insert(0, handler)

    def remove(self, handler: Handler) -> None:
        self.handlers.remove(handler)

    def run(self, context: MessageContext, service) -> SoapEnvelope:  # type: ignore[no-untyped-def]
        """Run request flow → *service(context)* → response flow.

        *service* is a callable producing the response
        :class:`SoapEnvelope` from the context.  Any
        :class:`SoapFault` raised anywhere becomes a fault envelope;
        unexpected exceptions become Server faults.
        """
        invoked: list[Handler] = []
        try:
            context.direction = Direction.REQUEST
            for handler in self.handlers:
                handler.invoke(context)
                invoked.append(handler)
            context.response = service(context)
            context.direction = Direction.RESPONSE
            for handler in reversed(self.handlers):
                handler.invoke(context)
            assert context.response is not None
            return context.response
        except SoapFault as fault:
            for handler in reversed(invoked):
                handler.on_fault(context, fault)
            context.response = SoapEnvelope.for_fault(fault)
            return context.response
        except Exception as exc:  # noqa: BLE001 - engine boundary
            fault = SoapFault(FaultCode.SERVER, f"{type(exc).__name__}: {exc}")
            for handler in reversed(invoked):
                handler.on_fault(context, fault)
            context.response = SoapEnvelope.for_fault(fault)
            return context.response
