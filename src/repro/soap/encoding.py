"""Typed Python ⇄ XML value encoding.

The mapping follows the SOAP-encoding conventions Axis used:

=================  ===========================  =========================
Python             wire (``xsi:type``)          decoded back as
=================  ===========================  =========================
``str``            ``xsd:string``               ``str``
``int``            ``xsd:int``                  ``int``
``float``          ``xsd:double``               ``float``
``bool``           ``xsd:boolean``              ``bool``
``bytes``          ``xsd:base64Binary``         ``bytes``
``None``           ``xsi:nil="true"``           ``None``
``list``/``tuple`` ``soapenc:Array`` of item    ``list``
``dict``           anonymous struct             ``dict``
dataclass          registered complexType name  dataclass instance
=================  ===========================  =========================

Every element this module writes carries enough type information
(``xsi:type`` or nil) for the receiving side to decode without any
out-of-band schema, which is what lets WSPeer invoke services it only
discovered at runtime.
"""

from __future__ import annotations

import base64
import dataclasses
from typing import Any, Optional

from repro.soap.attachments import Attachment, cid_of, resolve_attachment
from repro.xmlkit import Element, QName, ns

XSI_TYPE = QName(ns.XSI, "type", "xsi")
XSI_NIL = QName(ns.XSI, "nil", "xsi")
SOAPENC_ARRAY = QName(ns.SOAP_ENC, "Array", "soapenc")
HREF = QName("", "href")


class EncodingError(ValueError):
    """A value could not be encoded or an element could not be decoded."""


class StructRegistry:
    """Registry of dataclass types exchangeable as named complex types.

    Both ends register the same dataclasses (the analogue of sharing a
    schema); a registered type's instances serialise with
    ``xsi:type="tns:<Name>"`` and decode back to the dataclass.
    """

    def __init__(self, namespace: str = ns.WSPEER + "/types"):
        self.namespace = namespace
        self._by_name: dict[str, type] = {}
        self._by_type: dict[type, str] = {}

    def register(self, cls: type, name: Optional[str] = None) -> type:
        """Register *cls* (must be a dataclass).  Usable as a decorator."""
        if not dataclasses.is_dataclass(cls):
            raise EncodingError(f"{cls.__name__} is not a dataclass")
        name = name or cls.__name__
        self._by_name[name] = cls
        self._by_type[cls] = name
        return cls

    def name_of(self, cls: type) -> Optional[str]:
        return self._by_type.get(cls)

    def type_of(self, name: str) -> Optional[type]:
        return self._by_name.get(name)

    @property
    def names(self) -> list[str]:
        return sorted(self._by_name)


_EMPTY_REGISTRY = StructRegistry()

_PRIMITIVES: dict[type, str] = {
    str: "string",
    int: "int",
    float: "double",
    bool: "boolean",
}


def _xsd(local: str) -> str:
    return f"xsd:{local}"


def encode_value(
    name: QName | str,
    value: Any,
    registry: Optional[StructRegistry] = None,
) -> Element:
    """Encode *value* into an element called *name* with type info."""
    registry = registry or _EMPTY_REGISTRY
    elem = Element(name)
    _encode_into(elem, value, registry)
    return elem


def _encode_into(elem: Element, value: Any, registry: StructRegistry) -> None:
    if value is None:
        elem.set(XSI_NIL, "true")
        return
    if isinstance(value, bool):  # must test before int
        elem.set(XSI_TYPE, _xsd("boolean"))
        elem.text = "true" if value else "false"
        return
    if isinstance(value, int):
        elem.set(XSI_TYPE, _xsd("int"))
        elem.text = str(value)
        return
    if isinstance(value, float):
        elem.set(XSI_TYPE, _xsd("double"))
        elem.text = repr(value)
        return
    if isinstance(value, str):
        elem.set(XSI_TYPE, _xsd("string"))
        elem.text = value
        return
    if isinstance(value, Attachment):
        # SOAP-with-Attachments style (E16): the element is an empty
        # href reference; the raw bytes travel as a multipart part and
        # never pass through base64 or XML escaping.
        elem.set(HREF, value.href)
        return
    if isinstance(value, bytes):
        elem.set(XSI_TYPE, _xsd("base64Binary"))
        elem.text = base64.b64encode(value).decode("ascii")
        return
    if isinstance(value, (list, tuple)):
        elem.set(XSI_TYPE, "soapenc:Array")
        elem.nsdecls.setdefault("soapenc", ns.SOAP_ENC)
        for item in value:
            child = elem.add("item")
            _encode_into(child, item, registry)
        return
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        type_name = registry.name_of(type(value))
        if type_name is None:
            raise EncodingError(
                f"dataclass {type(value).__name__} is not registered; "
                "register it on both ends' StructRegistry"
            )
        elem.set(XSI_TYPE, f"tns:{type_name}")
        elem.nsdecls.setdefault("tns", registry.namespace)
        for field in dataclasses.fields(value):
            child = elem.add(field.name)
            _encode_into(child, getattr(value, field.name), registry)
        return
    if isinstance(value, dict):
        elem.set(XSI_TYPE, "soapenc:Struct")
        elem.nsdecls.setdefault("soapenc", ns.SOAP_ENC)
        for key, item in value.items():
            if not isinstance(key, str):
                raise EncodingError(f"struct keys must be str, got {type(key).__name__}")
            child = elem.add(key)
            _encode_into(child, item, registry)
        return
    raise EncodingError(f"cannot encode value of type {type(value).__name__}")


def decode_value(
    elem: Element,
    registry: Optional[StructRegistry] = None,
) -> Any:
    """Decode an element produced by :func:`encode_value`."""
    registry = registry or _EMPTY_REGISTRY
    if elem.get(XSI_NIL) in ("true", "1"):
        return None

    href = elem.get(HREF)
    if href is not None:
        content_id = cid_of(href)
        if content_id is not None:
            return resolve_attachment(content_id)

    type_text = elem.get(XSI_TYPE)
    if type_text is None:
        return _decode_untyped(elem, registry)

    try:
        type_qname = elem.resolve_qname_text(type_text)
    except ValueError:
        # Unresolvable prefix: fall back to the local part, which keeps
        # us liberal in what we accept from foreign stacks.
        _, _, local = type_text.rpartition(":")
        type_qname = QName("", local)

    local = type_qname.local
    text = elem.text
    if local == "string":
        return text
    if local in ("int", "long", "short", "integer", "byte"):
        try:
            return int(text)
        except ValueError:
            raise EncodingError(f"bad integer literal: {text!r}") from None
    if local in ("double", "float", "decimal"):
        try:
            return float(text)
        except ValueError:
            raise EncodingError(f"bad float literal: {text!r}") from None
    if local == "boolean":
        if text in ("true", "1"):
            return True
        if text in ("false", "0"):
            return False
        raise EncodingError(f"bad boolean literal: {text!r}")
    if local == "base64Binary":
        try:
            return base64.b64decode(text.encode("ascii"), validate=True)
        except Exception:
            raise EncodingError("bad base64 content") from None
    if local == "Array":
        return [decode_value(child, registry) for child in elem.children]
    if local == "Struct":
        return {child.name.local: decode_value(child, registry) for child in elem.children}

    cls = registry.type_of(local)
    if cls is not None:
        kwargs = {child.name.local: decode_value(child, registry) for child in elem.children}
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise EncodingError(f"cannot build {cls.__name__}: {exc}") from None

    raise EncodingError(f"unknown xsi:type {type_text!r}")


def _decode_untyped(elem: Element, registry: StructRegistry) -> Any:
    """Best-effort decoding when no xsi:type is present."""
    if elem.children:
        locals_seen = [c.name.local for c in elem.children]
        if all(local == "item" for local in locals_seen):
            return [decode_value(c, registry) for c in elem.children]
        return {c.name.local: decode_value(c, registry) for c in elem.children}
    return elem.text


def primitive_xsi_type(value: Any) -> Optional[str]:
    """The ``xsi:type`` text :func:`encode_value` writes for *value*.

    Returns None for anything that is not a template-safe primitive
    (the envelope-template fast path only pre-serialises shapes whose
    wire bytes are a pure function of the value's type and text).
    """
    if isinstance(value, bool):  # must test before int
        return _xsd("boolean")
    if isinstance(value, int):
        return _xsd("int")
    if isinstance(value, float):
        return _xsd("double")
    if isinstance(value, str):
        return _xsd("string")
    return None


def primitive_text(value: Any) -> Optional[str]:
    """The element text :func:`encode_value` writes for *value*.

    Must stay literally in lock-step with :func:`_encode_into`; the
    envelope-template parity tests diff the two paths byte-for-byte.
    """
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        return value
    return None


def python_type_to_xsd(py_type: Any) -> str:
    """Map a Python annotation to an XSD type name for WSDL generation."""
    if py_type in _PRIMITIVES:
        return _xsd(_PRIMITIVES[py_type])
    if py_type is bytes:
        return _xsd("base64Binary")
    if py_type in (list, tuple) or str(py_type).startswith(("list", "tuple", "typing.List")):
        return "soapenc:Array"
    if py_type is dict or str(py_type).startswith(("dict", "typing.Dict")):
        return "soapenc:Struct"
    if py_type is None or py_type is type(None):
        return _xsd("anyType")
    if dataclasses.is_dataclass(py_type):
        return f"tns:{py_type.__name__}"
    return _xsd("anyType")
