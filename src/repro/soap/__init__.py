"""The SOAP engine — this reproduction's Apache Axis.

WSPeer "uses SOAP as its messaging format (via Apache's Axis SOAP
engine)".  This package is the Axis stand-in, built from scratch:

``envelope``
    :class:`SoapEnvelope` — header blocks + body, (de)serialised
    through :mod:`repro.xmlkit` so real XML crosses the wire.
``encoding``
    Typed Python ⇄ XML value mapping (xsd primitives, arrays, structs,
    registered dataclasses, nil) driven by ``xsi:type`` attributes.
``faults``
    :class:`SoapFault` — the SOAP fault model, raisable and
    serialisable both ways.
``handlers``
    The request/response handler-chain pipeline (Axis's architecture),
    including the mustUnderstand check.
``attachments``
    SOAP-with-Attachments-style binary parts (E16): raw ``bytes``
    carried in a multipart-lite container next to the envelope and
    referenced by ``cid:`` href — no base64, no XML escaping.
``rpc``
    Server-side RPC dispatcher: body → method call → response body.
``stubs``
    Client stubs generated "directly to bytes" — dynamic proxy classes
    built at runtime with no source-code generation step (§IV-A), plus
    the source-codegen comparator used by experiment E5.
"""

from repro.soap.attachments import (
    Attachment,
    AttachmentError,
    MULTIPART_CONTENT_TYPE,
    MultipartFeedParser,
    attachment_scope,
    is_multipart,
)
from repro.soap.faults import FaultCode, SoapFault
from repro.soap.envelope import SoapEnvelope
from repro.soap.encoding import (
    EncodingError,
    StructRegistry,
    decode_value,
    encode_value,
)
from repro.soap.handlers import (
    Handler,
    HandlerChain,
    MessageContext,
    MustUnderstandHandler,
)
from repro.soap.rpc import RpcDispatcher, ServiceObject
from repro.soap.stubs import DynamicStubBuilder, SourceCodegenStubBuilder

__all__ = [
    "SoapEnvelope",
    "SoapFault",
    "FaultCode",
    "Attachment",
    "AttachmentError",
    "MULTIPART_CONTENT_TYPE",
    "MultipartFeedParser",
    "attachment_scope",
    "is_multipart",
    "EncodingError",
    "StructRegistry",
    "encode_value",
    "decode_value",
    "Handler",
    "HandlerChain",
    "MessageContext",
    "MustUnderstandHandler",
    "RpcDispatcher",
    "ServiceObject",
    "DynamicStubBuilder",
    "SourceCodegenStubBuilder",
]
