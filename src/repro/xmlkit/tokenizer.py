"""A hand-rolled XML tokenizer.

Produces a flat stream of tokens the parser assembles into an
:class:`~repro.xmlkit.element.Element` tree.  Supports the XML subset
our wire formats need: elements, attributes, character data, entity and
numeric character references, CDATA sections, comments, processing
instructions and the XML declaration.  DTDs are rejected (none of the
2004-era Web-service formats require them, and skipping them removes a
whole class of parser attacks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Iterator

from repro.xmlkit.errors import XmlParseError

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_WS = " \t\r\n"


class TokenType(Enum):
    START_TAG = auto()       # value: tag name, attrs: list[(name, value)], self_closing: bool
    END_TAG = auto()         # value: tag name
    TEXT = auto()            # value: decoded character data
    COMMENT = auto()         # value: comment body
    PI = auto()              # value: (target, data)
    DECLARATION = auto()     # value: the <?xml ...?> attribute string


@dataclass
class Token:
    type: TokenType
    value: object
    line: int
    column: int
    attrs: list[tuple[str, str]] = field(default_factory=list)
    self_closing: bool = False


class Tokenizer:
    """Single-pass cursor tokenizer over an XML string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level cursor ------------------------------------------------
    def _peek(self, n: int = 1) -> str:
        return self.text[self.pos : self.pos + n]

    def _advance(self, n: int = 1) -> str:
        chunk = self.text[self.pos : self.pos + n]
        for ch in chunk:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += n
        return chunk

    def _error(self, msg: str) -> XmlParseError:
        return XmlParseError(msg, self.line, self.col)

    def _expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self._error(f"expected {literal!r}")
        self._advance(len(literal))

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in _WS:
            self._advance()

    def _read_until(self, literal: str, what: str) -> str:
        end = self.text.find(literal, self.pos)
        if end < 0:
            raise self._error(f"unterminated {what}")
        chunk = self.text[self.pos : end]
        self._advance(len(chunk) + len(literal))
        return chunk

    def _read_name(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in _WS + "=/>\"'<&":
            self._advance()
        if self.pos == start:
            raise self._error("expected a name")
        return self.text[start : self.pos]

    # -- entity decoding --------------------------------------------------
    def _decode_entities(self, raw: str, line: int, col: int) -> str:
        if "&" not in raw:
            return raw
        out: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            end = raw.find(";", i + 1)
            if end < 0:
                raise XmlParseError("unterminated entity reference", line, col)
            name = raw[i + 1 : end]
            if name.startswith("#x") or name.startswith("#X"):
                try:
                    out.append(chr(int(name[2:], 16)))
                except ValueError:
                    raise XmlParseError(f"bad character reference &{name};", line, col) from None
            elif name.startswith("#"):
                try:
                    out.append(chr(int(name[1:])))
                except ValueError:
                    raise XmlParseError(f"bad character reference &{name};", line, col) from None
            elif name in _PREDEFINED_ENTITIES:
                out.append(_PREDEFINED_ENTITIES[name])
            else:
                raise XmlParseError(f"unknown entity &{name};", line, col)
            i = end + 1
        return "".join(out)

    # -- token production ---------------------------------------------------
    def tokens(self) -> Iterator[Token]:
        while self.pos < len(self.text):
            line, col = self.line, self.col
            if self._peek() == "<":
                nxt2 = self._peek(2)
                nxt4 = self._peek(4)
                nxt9 = self._peek(9)
                if nxt4 == "<!--":
                    self._advance(4)
                    body = self._read_until("-->", "comment")
                    if "--" in body:
                        raise XmlParseError("'--' not allowed in comment", line, col)
                    yield Token(TokenType.COMMENT, body, line, col)
                elif nxt9 == "<![CDATA[":
                    self._advance(9)
                    body = self._read_until("]]>", "CDATA section")
                    yield Token(TokenType.TEXT, body, line, col)
                elif nxt2 == "<?":
                    self._advance(2)
                    body = self._read_until("?>", "processing instruction")
                    target, _, data = body.partition(" ")
                    if target.lower() == "xml":
                        yield Token(TokenType.DECLARATION, data.strip(), line, col)
                    else:
                        yield Token(TokenType.PI, (target, data.strip()), line, col)
                elif nxt2 == "<!":
                    raise XmlParseError("DTD / doctype declarations are not supported", line, col)
                elif nxt2 == "</":
                    self._advance(2)
                    name = self._read_name()
                    self._skip_ws()
                    self._expect(">")
                    yield Token(TokenType.END_TAG, name, line, col)
                else:
                    yield self._read_start_tag(line, col)
            else:
                start = self.pos
                nxt = self.text.find("<", self.pos)
                if nxt < 0:
                    nxt = len(self.text)
                raw = self.text[start:nxt]
                self._advance(len(raw))
                yield Token(TokenType.TEXT, self._decode_entities(raw, line, col), line, col)

    def _read_start_tag(self, line: int, col: int) -> Token:
        self._expect("<")
        name = self._read_name()
        attrs: list[tuple[str, str]] = []
        while True:
            self._skip_ws()
            nxt = self._peek()
            if nxt == ">":
                self._advance()
                return Token(TokenType.START_TAG, name, line, col, attrs=attrs)
            if self._peek(2) == "/>":
                self._advance(2)
                return Token(TokenType.START_TAG, name, line, col, attrs=attrs, self_closing=True)
            if not nxt:
                raise self._error(f"unterminated start tag <{name}")
            aline, acol = self.line, self.col
            aname = self._read_name()
            self._skip_ws()
            self._expect("=")
            self._skip_ws()
            quote = self._peek()
            if quote not in "\"'":
                raise self._error(f"attribute {aname!r} value must be quoted")
            self._advance()
            raw = self._read_until(quote, f"attribute {aname!r} value")
            if "<" in raw:
                raise XmlParseError(f"'<' not allowed in attribute value of {aname!r}", aline, acol)
            attrs.append((aname, self._decode_entities(raw, aline, acol)))


def tokenize(text: str) -> Iterator[Token]:
    """Convenience wrapper: iterate tokens of *text*."""
    return Tokenizer(text).tokens()
