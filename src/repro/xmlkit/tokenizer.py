"""A hand-rolled XML tokenizer.

Produces a flat stream of tokens the parser assembles into an
:class:`~repro.xmlkit.element.Element` tree.  Supports the XML subset
our wire formats need: elements, attributes, character data, entity and
numeric character references, CDATA sections, comments, processing
instructions and the XML declaration.  DTDs are rejected (none of the
2004-era Web-service formats require them, and skipping them removes a
whole class of parser attacks).

Position tracking is *lazy*: the cursor is a single integer offset and
every move is O(1) — ``str.find`` jumps over text runs and attribute
values, a compiled regex eats names and whitespace.  Line/column pairs
(needed only to format error messages and carried by every token for
diagnostics) are derived from the offset on demand by counting
newlines, so the well-formed hot path never pays for them.  The frozen
original implementation lives in :mod:`repro.xmlkit.reference` as the
parity oracle.
"""

from __future__ import annotations

import re
from enum import Enum, auto
from typing import Iterator, Optional

from repro.xmlkit.errors import XmlParseError

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_WS = " \t\r\n"
_WS_RE = re.compile(r"[ \t\r\n]*")
# everything a name may NOT contain, mirroring the reference stop-set
_NAME_RE = re.compile(r"[^ \t\r\n=/>\"'<&]+")
# one whole well-formed attribute (ws + name + '=' + quoted value) OR
# the tag terminator, in a single scan; when this fails to match, the
# stepwise fallback reproduces the reference error message and
# position exactly
_ATTR_OR_END_RE = re.compile(
    r"[ \t\r\n]*(?:([^ \t\r\n=/>\"'<&]+)[ \t\r\n]*=[ \t\r\n]*"
    r"(?:\"([^\"<]*)\"|'([^'<]*)')|(/?>))"
)
# a whole well-formed end tag after '</'
_END_TAG_RE = re.compile(r"([^ \t\r\n=/>\"'<&]+)[ \t\r\n]*>")


def line_col_at(text: str, offset: int) -> tuple[int, int]:
    """1-based (line, column) of *offset* in *text*, computed on demand."""
    line = text.count("\n", 0, offset) + 1
    # rfind returns -1 when offset sits on the first line, which makes
    # the subtraction come out 1-based exactly.
    return line, offset - text.rfind("\n", 0, offset)


class TokenType(Enum):
    START_TAG = auto()       # value: tag name, attrs: list[(name, value)], self_closing: bool
    END_TAG = auto()         # value: tag name
    TEXT = auto()            # value: decoded character data
    COMMENT = auto()         # value: comment body
    PI = auto()              # value: (target, data)
    DECLARATION = auto()     # value: the <?xml ...?> attribute string


_NO_ATTRS: list[tuple[str, str]] = []


class Token:
    """One token.  ``line``/``column`` are computed lazily from the
    source offset, so producing a token costs no position bookkeeping."""

    __slots__ = ("type", "value", "source", "offset", "attrs", "self_closing")

    def __init__(
        self,
        type: TokenType,
        value: object,
        source: str,
        offset: int,
        attrs: Optional[list[tuple[str, str]]] = None,
        self_closing: bool = False,
    ):
        self.type = type
        self.value = value
        self.source = source
        self.offset = offset
        self.attrs = attrs if attrs is not None else _NO_ATTRS
        self.self_closing = self_closing

    @property
    def line(self) -> int:
        return line_col_at(self.source, self.offset)[0]

    @property
    def column(self) -> int:
        return line_col_at(self.source, self.offset)[1]

    def __repr__(self) -> str:
        return f"<Token {self.type.name} {self.value!r} @{self.offset}>"


class Tokenizer:
    """Single-pass cursor tokenizer over an XML string."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    # -- lazy position reporting ----------------------------------------
    @property
    def line(self) -> int:
        return line_col_at(self.text, self.pos)[0]

    @property
    def col(self) -> int:
        return line_col_at(self.text, self.pos)[1]

    def _error(self, msg: str, offset: Optional[int] = None) -> XmlParseError:
        line, col = line_col_at(self.text, self.pos if offset is None else offset)
        return XmlParseError(msg, line, col)

    # -- low-level cursor ------------------------------------------------
    def _expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self._error(f"expected {literal!r}")
        self.pos += len(literal)

    def _skip_ws(self) -> None:
        self.pos = _WS_RE.match(self.text, self.pos).end()

    def _read_until(self, literal: str, what: str) -> str:
        end = self.text.find(literal, self.pos)
        if end < 0:
            raise self._error(f"unterminated {what}")
        chunk = self.text[self.pos : end]
        self.pos = end + len(literal)
        return chunk

    def _read_name(self) -> str:
        match = _NAME_RE.match(self.text, self.pos)
        if match is None:
            raise self._error("expected a name")
        self.pos = match.end()
        return match.group()

    # -- entity decoding --------------------------------------------------
    def _decode_entities(self, raw: str, offset: int) -> str:
        if "&" not in raw:
            return raw
        out: list[str] = []
        i = 0
        n = len(raw)
        while i < n:
            amp = raw.find("&", i)
            if amp < 0:
                out.append(raw[i:])
                break
            if amp > i:
                out.append(raw[i:amp])
            end = raw.find(";", amp + 1)
            if end < 0:
                raise self._error("unterminated entity reference", offset)
            name = raw[amp + 1 : end]
            if name.startswith("#x") or name.startswith("#X"):
                try:
                    out.append(chr(int(name[2:], 16)))
                except ValueError:
                    raise self._error(f"bad character reference &{name};", offset) from None
            elif name.startswith("#"):
                try:
                    out.append(chr(int(name[1:])))
                except ValueError:
                    raise self._error(f"bad character reference &{name};", offset) from None
            elif name in _PREDEFINED_ENTITIES:
                out.append(_PREDEFINED_ENTITIES[name])
            else:
                raise self._error(f"unknown entity &{name};", offset)
            i = end + 1
        return "".join(out)

    # -- token production ---------------------------------------------------
    def tokens(self) -> Iterator[Token]:
        text = self.text
        length = len(text)
        while self.pos < length:
            start = self.pos
            if text[start] == "<":
                nxt2 = text[start : start + 2]
                if nxt2 == "<!":
                    if text.startswith("<!--", start):
                        self.pos = start + 4
                        body = self._read_until("-->", "comment")
                        if "--" in body:
                            raise self._error("'--' not allowed in comment", start)
                        yield Token(TokenType.COMMENT, body, text, start)
                    elif text.startswith("<![CDATA[", start):
                        self.pos = start + 9
                        body = self._read_until("]]>", "CDATA section")
                        yield Token(TokenType.TEXT, body, text, start)
                    else:
                        raise self._error(
                            "DTD / doctype declarations are not supported", start
                        )
                elif nxt2 == "<?":
                    self.pos = start + 2
                    body = self._read_until("?>", "processing instruction")
                    target, _, data = body.partition(" ")
                    if target.lower() == "xml":
                        yield Token(TokenType.DECLARATION, data.strip(), text, start)
                    else:
                        yield Token(TokenType.PI, (target, data.strip()), text, start)
                elif nxt2 == "</":
                    match = _END_TAG_RE.match(text, start + 2)
                    if match is not None:
                        self.pos = match.end()
                        name = match.group(1)
                    else:  # malformed: reproduce the reference errors
                        self.pos = start + 2
                        name = self._read_name()
                        self._skip_ws()
                        self._expect(">")
                    yield Token(TokenType.END_TAG, name, text, start)
                else:
                    yield self._read_start_tag(start)
            else:
                nxt = text.find("<", start)
                if nxt < 0:
                    nxt = length
                raw = text[start:nxt]
                self.pos = nxt
                yield Token(
                    TokenType.TEXT, self._decode_entities(raw, start), text, start
                )

    def _read_start_tag(self, start: int) -> Token:
        text = self.text
        self.pos = start + 1  # consume '<'
        name = self._read_name()
        attrs: list[tuple[str, str]] = []
        while True:
            match = _ATTR_OR_END_RE.match(text, self.pos)
            if match is not None:
                end = match.group(4)
                if end is not None:
                    self.pos = match.end()
                    return Token(
                        TokenType.START_TAG,
                        name,
                        text,
                        start,
                        attrs=attrs,
                        self_closing=end != ">",
                    )
                raw = match.group(2)
                if raw is None:
                    raw = match.group(3)
                if "&" in raw:
                    raw = self._decode_entities(raw, match.start(1))
                attrs.append((match.group(1), raw))
                self.pos = match.end()
                continue
            # a malformed attribute or unterminated tag: the stepwise
            # path below reproduces the reference errors byte-for-byte
            self._skip_ws()
            pos = self.pos
            nxt = text[pos : pos + 1]
            if nxt == ">":
                self.pos = pos + 1
                return Token(TokenType.START_TAG, name, text, start, attrs=attrs)
            if nxt == "/" and text.startswith("/>", pos):
                self.pos = pos + 2
                return Token(
                    TokenType.START_TAG, name, text, start, attrs=attrs, self_closing=True
                )
            if not nxt:
                raise self._error(f"unterminated start tag <{name}")
            astart = pos
            aname = self._read_name()
            self._skip_ws()
            self._expect("=")
            self._skip_ws()
            quote = text[self.pos : self.pos + 1]
            if quote not in ("\"", "'"):
                raise self._error(f"attribute {aname!r} value must be quoted")
            self.pos += 1
            raw = self._read_until(quote, f"attribute {aname!r} value")
            if "<" in raw:
                raise self._error(
                    f"'<' not allowed in attribute value of {aname!r}", astart
                )
            attrs.append((aname, self._decode_entities(raw, astart)))


def tokenize(text: str) -> Iterator[Token]:
    """Convenience wrapper: iterate tokens of *text*."""
    return Tokenizer(text).tokens()
