"""From-scratch, namespace-aware XML infoset for the WSPeer reproduction.

Every document that crosses the simulated wire in this repository — SOAP
envelopes, WSDL definitions, UDDI messages, P2PS advertisements — is real
XML text produced and consumed by this package.  Nothing in the rest of
the codebase touches :mod:`xml.etree`; the tokenizer, parser and
serialiser here are self-contained so the wire format is fully under our
control (and fully testable).

Public surface:

``QName``
    Namespace-qualified name with URI/local-part/prefix.
``Element``
    Mutable tree node carrying a :class:`QName`, attributes, namespaces,
    text and children.
``parse`` / ``parse_fragment``
    Text → :class:`Element` tree.
``serialize``
    :class:`Element` tree → text (optionally pretty-printed).
``iter_serialize`` / ``FeedParser`` / ``parse_stream``
    Streaming twins (E16): byte-chunk serialisation and incremental
    parsing with O(chunk) peak memory, byte-identical to the batch
    codec.
``XmlError`` and subclasses
    Raised on malformed input.

Common namespace URIs used by the stack live in :mod:`repro.xmlkit.ns`.
"""

from repro.xmlkit.errors import XmlError, XmlParseError, XmlWellFormednessError
from repro.xmlkit.names import QName
from repro.xmlkit.element import Element
from repro.xmlkit.parser import parse, parse_fragment
from repro.xmlkit.serializer import serialize
from repro.xmlkit.stream import FeedParser, iter_serialize, parse_stream
from repro.xmlkit import ns

__all__ = [
    "QName",
    "Element",
    "parse",
    "parse_fragment",
    "serialize",
    "iter_serialize",
    "FeedParser",
    "parse_stream",
    "XmlError",
    "XmlParseError",
    "XmlWellFormednessError",
    "ns",
]
