"""Parser: token stream → Element tree, with namespace resolution."""

from __future__ import annotations

from typing import Optional

from repro.xmlkit.element import Element
from repro.xmlkit.errors import XmlParseError, XmlWellFormednessError
from repro.xmlkit.names import QName, XML_URI, intern_qname, split_prefixed
from repro.xmlkit.tokenizer import Token, TokenType, Tokenizer

#: Active implementations.  ``repro.xmlkit.reference.reference_codec``
#: swaps these for the frozen pre-change tokenizer / plain QName
#: construction so benchmarks can measure before/after in one process.
_ACTIVE_TOKENIZER = Tokenizer
_ACTIVE_QNAME = intern_qname


_MISSING = object()


class _NsScope:
    """Prefix → URI bindings mirroring the open-element stack.

    Kept as one flat dict plus an undo journal per frame, so
    :meth:`resolve` is a single dict lookup instead of a walk up the
    frame stack.
    """

    __slots__ = ("_flat", "_undo")

    def __init__(self) -> None:
        self._flat: dict[str, object] = {"xml": XML_URI, "": ""}
        self._undo: list[list[tuple[str, object]]] = []

    def push(self, decls: dict[str, str]) -> None:
        """Enter a frame for non-empty *decls*.  Decl-less elements skip
        push/pop entirely (the caller gates on truthiness)."""
        flat = self._flat
        undo = [(prefix, flat.get(prefix, _MISSING)) for prefix in decls]
        flat.update(decls)
        self._undo.append(undo)

    def pop(self) -> None:
        undo = self._undo.pop()
        flat = self._flat
        for prefix, old in reversed(undo):
            if old is _MISSING:
                del flat[prefix]
            else:
                flat[prefix] = old

    def resolve(self, prefix: str) -> Optional[str]:
        return self._flat.get(prefix)


_NO_DECLS: dict[str, str] = {}


def _split_tag_attrs(token: Token) -> tuple[dict[str, str], list[tuple[str, str]]]:
    """Separate xmlns declarations from ordinary attributes."""
    attrs = token.attrs
    if not attrs:
        return _NO_DECLS, attrs
    if len(attrs) == 1:
        # single attribute: no duplicate possible, one startswith test
        name, value = attrs[0]
        if not name.startswith("xmlns"):
            return _NO_DECLS, attrs
        if name == "xmlns":
            return {"": value}, []
        if name[5] == ":":
            prefix = name[6:]
            if not prefix:
                raise XmlWellFormednessError(
                    "empty xmlns prefix", token.line, token.column
                )
            return {prefix: value}, []
        return _NO_DECLS, attrs
    nsdecls: dict[str, str] = {}
    plain: list[tuple[str, str]] = []
    seen: set[str] = set()
    for name, value in attrs:
        if name in seen:
            raise XmlWellFormednessError(
                f"duplicate attribute {name!r}", token.line, token.column
            )
        seen.add(name)
        if not name.startswith("xmlns"):
            plain.append((name, value))
        elif name == "xmlns":
            nsdecls[""] = value
        elif name[5] == ":":
            prefix = name[6:]
            if not prefix:
                raise XmlWellFormednessError("empty xmlns prefix", token.line, token.column)
            nsdecls[prefix] = value
        else:
            plain.append((name, value))
    return nsdecls, plain


def _resolve_element(token: Token, scope: _NsScope, make_qname=intern_qname) -> Element:
    nsdecls, plain_attrs = _split_tag_attrs(token)
    if nsdecls:
        scope.push(nsdecls)
    try:
        prefix, local = split_prefixed(token.value)
        uri = scope.resolve(prefix)
        if uri is None:
            raise XmlWellFormednessError(
                f"undeclared namespace prefix {prefix!r} on element <{token.value}>",
                token.line,
                token.column,
            )
        elem = Element(make_qname(uri, local, prefix), nsdecls=nsdecls)
        for aname, avalue in plain_attrs:
            aprefix, alocal = split_prefixed(aname)
            if aprefix:
                auri = scope.resolve(aprefix)
                if auri is None:
                    raise XmlWellFormednessError(
                        f"undeclared namespace prefix {aprefix!r} on attribute {aname!r}",
                        token.line,
                        token.column,
                    )
            else:
                auri = ""  # unprefixed attributes are in no namespace
            elem.attributes[make_qname(auri, alocal, aprefix)] = avalue
        return elem
    except Exception:
        if nsdecls:
            scope.pop()
        raise


def parse(text: str) -> Element:
    """Parse an XML *document*: exactly one root element."""
    root, trailing_ok = _parse_impl(text, fragment=False)
    del trailing_ok
    return root


def parse_fragment(text: str) -> Element:
    """Parse a single element, tolerating no document-level prolog checks.

    Identical to :func:`parse` for well-formed single-rooted input; kept
    as a separate name so call sites document their intent when handling
    embedded fragments (e.g. adverts inside SOAP headers).
    """
    root, _ = _parse_impl(text, fragment=True)
    return root


def _parse_impl(
    text: str,
    fragment: bool,
    tokenizer_cls=None,
    make_qname=None,
) -> tuple[Element, bool]:
    tokenizer = (tokenizer_cls or _ACTIVE_TOKENIZER)(text)
    make_qname = make_qname or _ACTIVE_QNAME
    root: Optional[Element] = None
    stack: list[Element] = []
    scope = _NsScope()

    _START, _END, _TEXT = TokenType.START_TAG, TokenType.END_TAG, TokenType.TEXT
    for token in tokenizer.tokens():
        ttype = token.type
        if ttype is _START:
            if root is not None and not stack:
                raise XmlWellFormednessError(
                    "multiple root elements", token.line, token.column
                )
            elem = _resolve_element(token, scope, make_qname)
            if stack:
                stack[-1].append(elem)
            else:
                root = elem
            if token.self_closing:
                if elem.nsdecls:
                    scope.pop()
            else:
                stack.append(elem)
            continue
        if ttype is _TEXT:
            chunk = token.value
            if not stack:
                if chunk.strip():
                    where = "before" if root is None else "after"
                    raise XmlWellFormednessError(
                        f"character data {where} root element", token.line, token.column
                    )
                continue
            stack[-1].append_text(chunk)
            continue
        if ttype is _END:
            if not stack:
                raise XmlWellFormednessError(
                    f"unexpected closing tag </{token.value}>", token.line, token.column
                )
            open_elem = stack.pop()
            prefix, local = split_prefixed(token.value)
            if open_elem.name.local != local or open_elem.name.prefix != prefix:
                raise XmlWellFormednessError(
                    f"mismatched closing tag </{token.value}>; "
                    f"open element is <{open_elem.name.prefix + ':' if open_elem.name.prefix else ''}{open_elem.name.local}>",
                    token.line,
                    token.column,
                )
            if open_elem.nsdecls:
                scope.pop()
            continue
        if ttype is TokenType.DECLARATION:
            if root is not None or stack:
                raise XmlParseError("XML declaration after content", token.line, token.column)
            continue
        # COMMENT / PI carry no structure
        continue

    if stack:
        raise XmlWellFormednessError(f"unclosed element <{stack[-1].name.local}>")
    if root is None:
        raise XmlParseError("no root element found")
    return root, fragment
