"""Parser: token stream → Element tree, with namespace resolution."""

from __future__ import annotations

from typing import Optional

from repro.xmlkit.element import Element
from repro.xmlkit.errors import XmlParseError, XmlWellFormednessError
from repro.xmlkit.names import QName, XML_URI, split_prefixed
from repro.xmlkit.tokenizer import Token, TokenType, Tokenizer


class _NsScope:
    """Stack of prefix → URI bindings mirroring the open-element stack."""

    def __init__(self) -> None:
        self._stack: list[dict[str, str]] = [{"xml": XML_URI, "": ""}]

    def push(self, decls: dict[str, str]) -> None:
        self._stack.append(decls)

    def pop(self) -> None:
        self._stack.pop()

    def resolve(self, prefix: str) -> Optional[str]:
        for frame in reversed(self._stack):
            if prefix in frame:
                return frame[prefix]
        return None


def _split_tag_attrs(token: Token) -> tuple[dict[str, str], list[tuple[str, str]]]:
    """Separate xmlns declarations from ordinary attributes."""
    nsdecls: dict[str, str] = {}
    plain: list[tuple[str, str]] = []
    seen: set[str] = set()
    for name, value in token.attrs:
        if name in seen:
            raise XmlWellFormednessError(
                f"duplicate attribute {name!r}", token.line, token.column
            )
        seen.add(name)
        if name == "xmlns":
            nsdecls[""] = value
        elif name.startswith("xmlns:"):
            prefix = name[len("xmlns:") :]
            if not prefix:
                raise XmlWellFormednessError("empty xmlns prefix", token.line, token.column)
            nsdecls[prefix] = value
        else:
            plain.append((name, value))
    return nsdecls, plain


def _resolve_element(token: Token, scope: _NsScope) -> Element:
    nsdecls, plain_attrs = _split_tag_attrs(token)
    scope.push(nsdecls)
    try:
        prefix, local = split_prefixed(str(token.value))
        uri = scope.resolve(prefix)
        if uri is None:
            raise XmlWellFormednessError(
                f"undeclared namespace prefix {prefix!r} on element <{token.value}>",
                token.line,
                token.column,
            )
        elem = Element(QName(uri, local, prefix), nsdecls=nsdecls)
        for aname, avalue in plain_attrs:
            aprefix, alocal = split_prefixed(aname)
            if aprefix:
                auri = scope.resolve(aprefix)
                if auri is None:
                    raise XmlWellFormednessError(
                        f"undeclared namespace prefix {aprefix!r} on attribute {aname!r}",
                        token.line,
                        token.column,
                    )
            else:
                auri = ""  # unprefixed attributes are in no namespace
            elem.attributes[QName(auri, alocal, aprefix)] = avalue
        return elem
    except Exception:
        scope.pop()
        raise


def parse(text: str) -> Element:
    """Parse an XML *document*: exactly one root element."""
    root, trailing_ok = _parse_impl(text, fragment=False)
    del trailing_ok
    return root


def parse_fragment(text: str) -> Element:
    """Parse a single element, tolerating no document-level prolog checks.

    Identical to :func:`parse` for well-formed single-rooted input; kept
    as a separate name so call sites document their intent when handling
    embedded fragments (e.g. adverts inside SOAP headers).
    """
    root, _ = _parse_impl(text, fragment=True)
    return root


def _parse_impl(text: str, fragment: bool) -> tuple[Element, bool]:
    tokenizer = Tokenizer(text)
    root: Optional[Element] = None
    stack: list[Element] = []
    scope = _NsScope()

    for token in tokenizer.tokens():
        if token.type is TokenType.DECLARATION:
            if root is not None or stack:
                raise XmlParseError("XML declaration after content", token.line, token.column)
            continue
        if token.type in (TokenType.COMMENT, TokenType.PI):
            continue
        if token.type is TokenType.TEXT:
            chunk = str(token.value)
            if not stack:
                if chunk.strip():
                    where = "before" if root is None else "after"
                    raise XmlWellFormednessError(
                        f"character data {where} root element", token.line, token.column
                    )
                continue
            stack[-1].append_text(chunk)
            continue
        if token.type is TokenType.START_TAG:
            if root is not None and not stack:
                raise XmlWellFormednessError(
                    "multiple root elements", token.line, token.column
                )
            elem = _resolve_element(token, scope)
            if stack:
                stack[-1].append(elem)
            else:
                root = elem
            if token.self_closing:
                scope.pop()
            else:
                stack.append(elem)
            continue
        if token.type is TokenType.END_TAG:
            if not stack:
                raise XmlWellFormednessError(
                    f"unexpected closing tag </{token.value}>", token.line, token.column
                )
            open_elem = stack.pop()
            prefix, local = split_prefixed(str(token.value))
            if open_elem.name.local != local or open_elem.name.prefix != prefix:
                raise XmlWellFormednessError(
                    f"mismatched closing tag </{token.value}>; "
                    f"open element is <{open_elem.name.prefix + ':' if open_elem.name.prefix else ''}{open_elem.name.local}>",
                    token.line,
                    token.column,
                )
            scope.pop()
            continue

    if stack:
        raise XmlWellFormednessError(f"unclosed element <{stack[-1].name.local}>")
    if root is None:
        raise XmlParseError("no root element found")
    return root, fragment
