"""The reference (pre-fast-path) XML codec, kept as an executable spec.

The fast codec in :mod:`repro.xmlkit.tokenizer` and
:mod:`repro.xmlkit.serializer` must stay byte-for-byte compatible with
the original character-at-a-time implementation.  That original lives
here, frozen, for two jobs:

1. **Parity oracles** — the hypothesis property tests serialise every
   generated tree through both implementations and assert equality, and
   parse every document through both tokenizers and assert structural
   equality.
2. **Same-run baselines** — ``benchmarks/bench_e8_codec.py`` measures
   before/after throughput inside one process by flipping
   :func:`reference_codec`, which routes :func:`repro.xmlkit.parse` and
   :func:`repro.xmlkit.serialize` through this module and disables the
   derived-artifact caches.

Nothing outside tests and benchmarks should import this module on a hot
path.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.caching import set_fastpath_enabled, fastpath_enabled
from repro.xmlkit.errors import XmlParseError
from repro.xmlkit.element import Element
from repro.xmlkit.names import QName, XML_URI
from repro.xmlkit.tokenizer import TokenType

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_WS = " \t\r\n"


@dataclass
class ReferenceToken:
    """The eager-position token of the original tokenizer."""

    type: TokenType
    value: object
    line: int
    column: int
    attrs: list[tuple[str, str]] = field(default_factory=list)
    self_closing: bool = False


class ReferenceTokenizer:
    """The original tokenizer: per-character cursor with eager line/col."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.col = 1

    # -- low-level cursor ------------------------------------------------
    def _peek(self, n: int = 1) -> str:
        return self.text[self.pos : self.pos + n]

    def _advance(self, n: int = 1) -> str:
        chunk = self.text[self.pos : self.pos + n]
        for ch in chunk:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += n
        return chunk

    def _error(self, msg: str) -> XmlParseError:
        return XmlParseError(msg, self.line, self.col)

    def _expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self._error(f"expected {literal!r}")
        self._advance(len(literal))

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in _WS:
            self._advance()

    def _read_until(self, literal: str, what: str) -> str:
        end = self.text.find(literal, self.pos)
        if end < 0:
            raise self._error(f"unterminated {what}")
        chunk = self.text[self.pos : end]
        self._advance(len(chunk) + len(literal))
        return chunk

    def _read_name(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in _WS + "=/>\"'<&":
            self._advance()
        if self.pos == start:
            raise self._error("expected a name")
        return self.text[start : self.pos]

    # -- entity decoding --------------------------------------------------
    def _decode_entities(self, raw: str, line: int, col: int) -> str:
        if "&" not in raw:
            return raw
        out: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            end = raw.find(";", i + 1)
            if end < 0:
                raise XmlParseError("unterminated entity reference", line, col)
            name = raw[i + 1 : end]
            if name.startswith("#x") or name.startswith("#X"):
                try:
                    out.append(chr(int(name[2:], 16)))
                except ValueError:
                    raise XmlParseError(f"bad character reference &{name};", line, col) from None
            elif name.startswith("#"):
                try:
                    out.append(chr(int(name[1:])))
                except ValueError:
                    raise XmlParseError(f"bad character reference &{name};", line, col) from None
            elif name in _PREDEFINED_ENTITIES:
                out.append(_PREDEFINED_ENTITIES[name])
            else:
                raise XmlParseError(f"unknown entity &{name};", line, col)
            i = end + 1
        return "".join(out)

    # -- token production ---------------------------------------------------
    def tokens(self) -> Iterator[ReferenceToken]:
        while self.pos < len(self.text):
            line, col = self.line, self.col
            if self._peek() == "<":
                nxt2 = self._peek(2)
                nxt4 = self._peek(4)
                nxt9 = self._peek(9)
                if nxt4 == "<!--":
                    self._advance(4)
                    body = self._read_until("-->", "comment")
                    if "--" in body:
                        raise XmlParseError("'--' not allowed in comment", line, col)
                    yield ReferenceToken(TokenType.COMMENT, body, line, col)
                elif nxt9 == "<![CDATA[":
                    self._advance(9)
                    body = self._read_until("]]>", "CDATA section")
                    yield ReferenceToken(TokenType.TEXT, body, line, col)
                elif nxt2 == "<?":
                    self._advance(2)
                    body = self._read_until("?>", "processing instruction")
                    target, _, data = body.partition(" ")
                    if target.lower() == "xml":
                        yield ReferenceToken(TokenType.DECLARATION, data.strip(), line, col)
                    else:
                        yield ReferenceToken(TokenType.PI, (target, data.strip()), line, col)
                elif nxt2 == "<!":
                    raise XmlParseError("DTD / doctype declarations are not supported", line, col)
                elif nxt2 == "</":
                    self._advance(2)
                    name = self._read_name()
                    self._skip_ws()
                    self._expect(">")
                    yield ReferenceToken(TokenType.END_TAG, name, line, col)
                else:
                    yield self._read_start_tag(line, col)
            else:
                start = self.pos
                nxt = self.text.find("<", self.pos)
                if nxt < 0:
                    nxt = len(self.text)
                raw = self.text[start:nxt]
                self._advance(len(raw))
                yield ReferenceToken(
                    TokenType.TEXT, self._decode_entities(raw, line, col), line, col
                )

    def _read_start_tag(self, line: int, col: int) -> ReferenceToken:
        self._expect("<")
        name = self._read_name()
        attrs: list[tuple[str, str]] = []
        while True:
            self._skip_ws()
            nxt = self._peek()
            if nxt == ">":
                self._advance()
                return ReferenceToken(TokenType.START_TAG, name, line, col, attrs=attrs)
            if self._peek(2) == "/>":
                self._advance(2)
                return ReferenceToken(
                    TokenType.START_TAG, name, line, col, attrs=attrs, self_closing=True
                )
            if not nxt:
                raise self._error(f"unterminated start tag <{name}")
            aline, acol = self.line, self.col
            aname = self._read_name()
            self._skip_ws()
            self._expect("=")
            self._skip_ws()
            quote = self._peek()
            if quote not in "\"'":
                raise self._error(f"attribute {aname!r} value must be quoted")
            self._advance()
            raw = self._read_until(quote, f"attribute {aname!r} value")
            if "<" in raw:
                raise XmlParseError(f"'<' not allowed in attribute value of {aname!r}", aline, acol)
            attrs.append((aname, self._decode_entities(raw, aline, acol)))


# ----------------------------------------------------------------------
# the original serializer: parent-linked scope chain, chained .replace
# ----------------------------------------------------------------------
def escape_text_reference(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace("\r", "&#13;")
    )


def escape_attr_reference(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
        .replace("\r", "&#13;")
    )


class _ReferenceScope:
    def __init__(self, parent: Optional["_ReferenceScope"] = None):
        self.parent = parent
        self.decls: dict[str, str] = {}  # prefix -> uri

    def resolve(self, prefix: str) -> Optional[str]:
        scope: Optional[_ReferenceScope] = self
        while scope is not None:
            if prefix in scope.decls:
                return scope.decls[prefix]
            scope = scope.parent
        if prefix == "xml":
            return XML_URI
        return None

    def prefix_for(self, uri: str) -> Optional[str]:
        """Innermost prefix bound to *uri*, honouring shadowing."""
        shadowed: set[str] = set()
        scope: Optional[_ReferenceScope] = self
        while scope is not None:
            for prefix, bound in scope.decls.items():
                if prefix in shadowed:
                    continue
                if bound == uri:
                    return prefix
                shadowed.add(prefix)
            scope = scope.parent
        if uri == XML_URI:
            return "xml"
        return None


class _ReferenceSerializer:
    def __init__(self, pretty: bool):
        self.pretty = pretty
        self.counter = 0
        self.parts: list[str] = []

    def fresh_prefix(self, scope: _ReferenceScope) -> str:
        while True:
            self.counter += 1
            candidate = f"ns{self.counter}"
            if scope.resolve(candidate) is None:
                return candidate

    def element(self, elem: Element, parent_scope: _ReferenceScope, depth: int) -> None:
        scope = _ReferenceScope(parent_scope)
        scope.decls.update(elem.nsdecls)
        extra_decls: dict[str, str] = {}

        def prefix_of(q: QName, is_attr: bool) -> str:
            if q.uri == "":
                if not is_attr and scope.resolve("") not in (None, ""):
                    extra_decls[""] = ""
                    scope.decls[""] = ""
                return ""
            if q.prefix and scope.resolve(q.prefix) == q.uri:
                return q.prefix
            existing = scope.prefix_for(q.uri)
            if existing is not None and not (is_attr and existing == ""):
                return existing
            prefix = q.prefix if (q.prefix and scope.resolve(q.prefix) is None) else ""
            if not prefix or (is_attr and prefix == ""):
                prefix = self.fresh_prefix(scope)
            extra_decls[prefix] = q.uri
            scope.decls[prefix] = q.uri
            return prefix

        tag_prefix = prefix_of(elem.name, is_attr=False)
        tag = f"{tag_prefix}:{elem.name.local}" if tag_prefix else elem.name.local

        attr_parts: list[str] = []
        for aname, avalue in elem.attributes.items():
            ap = prefix_of(aname, is_attr=True)
            key = f"{ap}:{aname.local}" if ap else aname.local
            attr_parts.append(f' {key}="{escape_attr_reference(avalue)}"')

        decl_parts: list[str] = []
        for prefix, uri in {**elem.nsdecls, **extra_decls}.items():
            key = f"xmlns:{prefix}" if prefix else "xmlns"
            decl_parts.append(f' {key}="{escape_attr_reference(uri)}"')

        indent = "  " * depth if self.pretty else ""
        open_tag = f"{indent}<{tag}{''.join(decl_parts)}{''.join(attr_parts)}"

        content = elem.content
        if not content:
            self.parts.append(open_tag + "/>")
            if self.pretty:
                self.parts.append("\n")
            return

        only_text = all(isinstance(c, str) for c in content)
        self.parts.append(open_tag + ">")
        if only_text:
            self.parts.append(escape_text_reference(elem.text))
            self.parts.append(f"</{tag}>")
            if self.pretty:
                self.parts.append("\n")
            return

        if self.pretty:
            self.parts.append("\n")
        for c in content:
            if isinstance(c, str):
                if self.pretty:
                    if c.strip():
                        self.parts.append(
                            "  " * (depth + 1) + escape_text_reference(c.strip()) + "\n"
                        )
                else:
                    self.parts.append(escape_text_reference(c))
            else:
                self.element(c, scope, depth + 1)
        self.parts.append(f"{indent}</{tag}>")
        if self.pretty:
            self.parts.append("\n")


def serialize_reference(
    elem: Element,
    *,
    pretty: bool = False,
    xml_declaration: bool = False,
) -> str:
    """Serialise through the original implementation (the parity oracle)."""
    ser = _ReferenceSerializer(pretty)
    ser.element(elem, _ReferenceScope(), 0)
    body = "".join(ser.parts)
    if pretty:
        body = body.rstrip("\n") + "\n"
    if xml_declaration:
        return '<?xml version="1.0" encoding="utf-8"?>' + ("\n" if pretty else "") + body
    return body


def parse_reference(text: str) -> Element:
    """Parse through the original tokenizer and non-interned QNames."""
    from repro.xmlkit import parser as _parser

    root, _ = _parser._parse_impl(
        text, fragment=False, tokenizer_cls=ReferenceTokenizer, make_qname=QName
    )
    return root


@contextmanager
def reference_codec():
    """Route the whole stack through the pre-change codec.

    Swaps the tokenizer and serializer implementations behind
    :func:`repro.xmlkit.parse` / :func:`repro.xmlkit.serialize` and
    disables the derived-artifact caches, so a benchmark can measure
    the genuine pre-change behaviour in the same process as the fast
    path.  Not thread-safe; intended for benchmarks and tests only.
    """
    from repro.xmlkit import parser as _parser
    from repro.xmlkit import serializer as _serializer

    saved = (
        _parser._ACTIVE_TOKENIZER,
        _parser._ACTIVE_QNAME,
        _serializer._ACTIVE_SERIALIZE,
        fastpath_enabled(),
    )
    _parser._ACTIVE_TOKENIZER = ReferenceTokenizer
    _parser._ACTIVE_QNAME = QName
    _serializer._ACTIVE_SERIALIZE = _serialize_reference_impl
    set_fastpath_enabled(False)
    try:
        yield
    finally:
        _parser._ACTIVE_TOKENIZER = saved[0]
        _parser._ACTIVE_QNAME = saved[1]
        _serializer._ACTIVE_SERIALIZE = saved[2]
        set_fastpath_enabled(saved[3])


def _serialize_reference_impl(elem: Element, pretty: bool, xml_declaration: bool) -> str:
    return serialize_reference(elem, pretty=pretty, xml_declaration=xml_declaration)
