"""The Element tree — the in-memory XML infoset."""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Union

from repro.xmlkit.names import QName, intern_qname

NameLike = Union[QName, str]


def _as_qname(name: NameLike, default_uri: str = "") -> QName:
    if isinstance(name, QName):
        return name
    if name.startswith("{"):
        return QName.from_clark(name)
    return intern_qname(default_uri, name)


class Element:
    """A mutable XML element.

    Holds a :class:`QName`, an ordered attribute map keyed by QName,
    namespace declarations made *on this element* (prefix → URI), text
    content interleaved with child elements (stored as a content list),
    and a parent pointer maintained automatically.

    Content model: ``_content`` is a list whose items are ``str`` (text
    chunks) or :class:`Element`.  ``text`` is a convenience view over
    the concatenated text chunks.
    """

    __slots__ = ("name", "attributes", "nsdecls", "_content", "parent")

    def __init__(
        self,
        name: NameLike,
        *,
        attributes: Optional[dict[NameLike, str]] = None,
        text: Optional[str] = None,
        nsdecls: Optional[dict[str, str]] = None,
    ):
        self.name: QName = _as_qname(name)
        self.attributes: dict[QName, str] = {}
        if attributes:
            for k, v in attributes.items():
                self.attributes[_as_qname(k)] = str(v)
        self.nsdecls: dict[str, str] = dict(nsdecls or {})
        self._content: list[Union[str, "Element"]] = []
        self.parent: Optional["Element"] = None
        if text:
            self._content.append(text)

    # ------------------------------------------------------------------
    # text handling
    # ------------------------------------------------------------------
    @property
    def text(self) -> str:
        """All direct text content, concatenated."""
        return "".join(c for c in self._content if isinstance(c, str))

    @text.setter
    def text(self, value: str) -> None:
        self._content = [c for c in self._content if isinstance(c, Element)]
        if value:
            self._content.insert(0, value)

    def full_text(self) -> str:
        """All descendant text, document order."""
        parts: list[str] = []
        for c in self._content:
            if isinstance(c, str):
                parts.append(c)
            else:
                parts.append(c.full_text())
        return "".join(parts)

    def append_text(self, chunk: str) -> None:
        if chunk:
            self._content.append(chunk)

    # ------------------------------------------------------------------
    # child handling
    # ------------------------------------------------------------------
    @property
    def children(self) -> list["Element"]:
        return [c for c in self._content if isinstance(c, Element)]

    @property
    def content(self) -> tuple[Union[str, "Element"], ...]:
        return tuple(self._content)

    def append(self, child: "Element") -> "Element":
        child.parent = self
        self._content.append(child)
        return child

    def extend(self, children: Iterable["Element"]) -> None:
        for c in children:
            self.append(c)

    def remove(self, child: "Element") -> None:
        self._content.remove(child)
        child.parent = None

    def add(self, tag: NameLike, text: Optional[str] = None, **attrs: str) -> "Element":
        """Create, append and return a child element (builder style).

        Keyword arguments become attributes, so attribute names that are
        common XML vocabulary (``name=``, ``type=``) stay usable.
        """
        child = Element(tag, text=text, attributes=attrs or None)
        return self.append(child)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def find(self, name: NameLike) -> Optional["Element"]:
        """First direct child whose name matches.

        A bare string with no namespace matches on local name alone,
        which keeps call sites terse inside single-vocabulary documents.
        """
        want = _as_qname(name)
        for c in self.children:
            if c.name == want or (want.uri == "" and c.name.local == want.local):
                return c
        return None

    def find_all(self, name: NameLike) -> list["Element"]:
        """All direct children whose name matches."""
        want = _as_qname(name)
        return [
            c
            for c in self.children
            if c.name == want or (want.uri == "" and c.name.local == want.local)
        ]

    def find_text(self, name: NameLike, default: str = "") -> str:
        child = self.find(name)
        return child.text if child is not None else default

    def iter(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for c in self.children:
            yield from c.iter()

    def descendants(self, name: NameLike) -> list["Element"]:
        want = _as_qname(name)
        return [
            e
            for e in self.iter()
            if e.name == want or (want.uri == "" and e.name.local == want.local)
        ]

    # ------------------------------------------------------------------
    # attributes
    # ------------------------------------------------------------------
    def get(self, name: NameLike, default: Optional[str] = None) -> Optional[str]:
        want = _as_qname(name)
        if want in self.attributes:
            return self.attributes[want]
        if want.uri == "":
            for k, v in self.attributes.items():
                if k.local == want.local and k.uri == "":
                    return v
        return default

    def set(self, name: NameLike, value: str) -> None:
        self.attributes[_as_qname(name)] = str(value)

    # ------------------------------------------------------------------
    # namespace resolution
    # ------------------------------------------------------------------
    def namespace_for_prefix(self, prefix: str) -> Optional[str]:
        """Resolve *prefix* by walking ancestor nsdecls."""
        node: Optional[Element] = self
        while node is not None:
            if prefix in node.nsdecls:
                return node.nsdecls[prefix]
            node = node.parent
        return None

    def prefix_for_namespace(self, uri: str) -> Optional[str]:
        """Find an in-scope prefix bound to *uri* (innermost wins)."""
        node: Optional[Element] = self
        shadowed: set[str] = set()
        while node is not None:
            for prefix, bound in node.nsdecls.items():
                if prefix in shadowed:
                    continue
                if bound == uri:
                    return prefix
                shadowed.add(prefix)
            node = node.parent
        return None

    def resolve_qname_text(self, text: str) -> QName:
        """Resolve a ``prefix:local`` string in this element's scope.

        Used for QName-typed content such as WSDL ``message=`` values
        and ``xsi:type`` attributes.
        """
        if ":" in text:
            prefix, _, local = text.partition(":")
            uri = self.namespace_for_prefix(prefix)
            if uri is None:
                raise ValueError(f"undeclared prefix in QName content: {text!r}")
            return QName(uri, local, prefix)
        default = self.namespace_for_prefix("") or ""
        return QName(default, text)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy_with_scope(self) -> "Element":
        """Deep copy that folds all *in-scope* namespace declarations
        into the copy's own ``nsdecls``.

        Use when detaching a subtree from its document (e.g. pulling a
        header block out of a SOAP envelope): QName-valued content like
        ``xsi:type="xsd:int"`` keeps resolving after the parent chain is
        severed.
        """
        dup = self.copy()
        node: Optional[Element] = self.parent
        while node is not None:
            for prefix, uri in node.nsdecls.items():
                dup.nsdecls.setdefault(prefix, uri)
            node = node.parent
        return dup

    def copy(self) -> "Element":
        """Deep copy (parent pointer of the copy is None)."""
        dup = Element(self.name, nsdecls=dict(self.nsdecls))
        dup.attributes = dict(self.attributes)
        for c in self._content:
            if isinstance(c, str):
                dup._content.append(c)
            else:
                dup.append(c.copy())
        return dup

    def __repr__(self) -> str:
        return f"<Element {self.name} attrs={len(self.attributes)} children={len(self.children)}>"

    def __eq__(self, other: object) -> bool:
        """Structural equality: name, attributes, normalised content."""
        if not isinstance(other, Element):
            return NotImplemented
        if self.name != other.name or self.attributes != other.attributes:
            return False
        a = [c for c in self._content if isinstance(c, Element) or c.strip()]
        b = [c for c in other._content if isinstance(c, Element) or c.strip()]
        if len(a) != len(b):
            return False
        for x, y in zip(a, b):
            if isinstance(x, str) != isinstance(y, str):
                return False
            if isinstance(x, str):
                if x.strip() != y.strip():  # type: ignore[union-attr]
                    return False
            elif x != y:
                return False
        return True

    __hash__ = None  # type: ignore[assignment]
