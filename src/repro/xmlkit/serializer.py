"""Serialiser: Element tree → XML text.

The serialiser guarantees the output re-parses to a structurally equal
tree (the round-trip property the test suite checks with hypothesis).
Namespace handling: explicit ``nsdecls`` on elements are honoured;
elements or attributes whose namespace URI has no in-scope prefix get a
generated ``ns<N>`` declaration at the point of use.

Fast path: namespace scopes are *flattened* — each :class:`_Scope`
carries complete ``prefix → uri`` and ``uri → prefix`` dicts, so
:meth:`_Scope.resolve` and :meth:`_Scope.prefix_for` are single dict
lookups instead of ancestor-chain walks.  Scopes that declare nothing
share their parent's dicts (copy-on-write), so the common body element
costs no allocation at all.  Prefix *choice* is kept byte-identical to
the original chain-walking implementation (frozen in
:mod:`repro.xmlkit.reference`), including its innermost-first,
insertion-ordered search; the property tests diff the two outputs.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.xmlkit.element import Element
from repro.xmlkit.names import QName, XML_URI

_TEXT_NEEDS_ESCAPE = re.compile(r"[&<>\r]")
_ATTR_NEEDS_ESCAPE = re.compile(r'[&<"\n\t\r]')


def escape_text(value: str) -> str:
    # \r must become a character reference: a literal CR in content is
    # folded to LF by XML line-end normalisation on re-parse
    if _TEXT_NEEDS_ESCAPE.search(value) is None:
        return value
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace("\r", "&#13;")
    )


def escape_attr(value: str) -> str:
    # \r, \n, \t must be character references: literal whitespace in an
    # attribute value is collapsed to spaces by attribute-value
    # normalisation on re-parse
    if _ATTR_NEEDS_ESCAPE.search(value) is None:
        return value
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
        .replace("\r", "&#13;")
    )


class _Scope:
    """One element's namespace scope, flattened for O(1) lookups.

    ``local`` holds only this scope's declarations (insertion-ordered,
    mirroring the reference implementation's per-scope dict), ``flat``
    the innermost binding of every in-scope prefix, and ``by_uri`` the
    prefix the reference algorithm's innermost-first search would
    return for every in-scope URI.
    """

    __slots__ = ("parent", "local", "flat", "by_uri", "_owned", "_child_memo")

    #: cap on each scope's child memo, so adversarial inputs with
    #: unbounded declaration vocabularies cannot grow it without limit
    _MEMO_MAX = 64

    def __init__(
        self,
        parent: Optional["_Scope"] = None,
        decls: Optional[dict[str, str]] = None,
    ):
        self.parent = parent
        self._child_memo: Optional[dict] = None
        if decls:
            self.local: dict[str, str] = dict(decls)
            if parent is not None:
                parent_flat = parent.flat
                flat = dict(parent_flat)
                flat.update(decls)
                self.flat = flat
                # Incremental winner update: a local binding wins its URI
                # (innermost-first); the full replay is needed only when
                # re-binding a prefix dethrones it as an ancestor winner.
                parent_by_uri = parent.by_uri
                for prefix, uri in decls.items():
                    old = parent_flat.get(prefix)
                    if old is not None and old != uri and parent_by_uri.get(old) == prefix:
                        self.by_uri = self._build_by_uri()
                        break
                else:
                    by_uri = dict(parent_by_uri)
                    won: set[str] = set()
                    for prefix, uri in decls.items():
                        if uri not in won:  # first local binding wins
                            by_uri[uri] = prefix
                            won.add(uri)
                    self.by_uri = by_uri
            else:
                self.flat = dict(decls)
                by_uri = {}
                for prefix, uri in decls.items():
                    if uri not in by_uri:
                        by_uri[uri] = prefix
                self.by_uri = by_uri
            self._owned = True
        else:
            self.local = {}
            self.flat = parent.flat if parent is not None else {}
            self.by_uri = parent.by_uri if parent is not None else {}
            self._owned = parent is None

    @classmethod
    def shared(cls, parent: "_Scope", decls: dict[str, str]) -> "_Scope":
        """The memoised child scope of *parent* for *decls*.

        Sibling elements routinely carry identical declaration dicts
        (every wsa: header block), and with the persistent root scope
        the whole scope tree of a recurring document shape is built
        exactly once per process.  Returned scopes are SHARED — callers
        must never mutate them (``element`` rebuilds a private
        equivalent before any ``declare``).
        """
        memo = parent._child_memo
        if memo is None:
            memo = parent._child_memo = {}
        key = tuple(decls.items())
        scope = memo.get(key)
        if scope is None:
            if len(memo) >= cls._MEMO_MAX:
                memo.clear()
            scope = cls(parent, decls)
            memo[key] = scope
        return scope

    def _build_by_uri(self) -> dict[str, str]:
        """Replay the reference search order: innermost scope first, each
        scope's declarations in insertion order, shadowed prefixes skipped."""
        by_uri: dict[str, str] = {}
        seen: set[str] = set()
        scope: Optional[_Scope] = self
        while scope is not None:
            for prefix, uri in scope.local.items():
                if prefix in seen:
                    continue
                seen.add(prefix)
                if uri not in by_uri:
                    by_uri[uri] = prefix
            scope = scope.parent
        return by_uri

    # ------------------------------------------------------------------
    def resolve(self, prefix: str) -> Optional[str]:
        uri = self.flat.get(prefix)
        if uri is None and prefix == "xml" and "xml" not in self.flat:
            return XML_URI
        return uri

    def prefix_for(self, uri: str) -> Optional[str]:
        """Innermost prefix bound to *uri*, honouring shadowing."""
        prefix = self.by_uri.get(uri)
        if prefix is None and uri == XML_URI:
            return "xml"
        return prefix

    def declare(self, prefix: str, uri: str) -> None:
        """Bind *prefix* at the end of this scope's declarations, exactly
        where the reference implementation appends it."""
        if not self._owned:
            self.local = dict(self.local)
            self.flat = dict(self.flat)
            self.by_uri = dict(self.by_uri)
            self._owned = True
        if prefix in self.flat:
            # Re-binding an in-scope prefix — overwriting this scope's
            # own declaration (the default-namespace undeclare) or
            # shadowing an ancestor's — dethrones it as the winner for
            # its old URI; replay the search (rare branch).
            self.local[prefix] = uri
            self.flat[prefix] = uri
            self.by_uri = self._build_by_uri()
            return
        self.local[prefix] = uri
        self.flat[prefix] = uri
        current = self.by_uri.get(uri)
        if current is None:
            self.by_uri[uri] = prefix
        elif current != prefix and current not in self.local:
            # The old winner lives in an ancestor scope; the new local
            # binding comes earlier in the reference search order.
            self.by_uri[uri] = prefix


class _Serializer:
    def __init__(self, pretty: bool):
        self.pretty = pretty
        self.counter = 0
        self.parts: list[str] = []

    def fresh_prefix(self, scope: _Scope) -> str:
        while True:
            self.counter += 1
            candidate = f"ns{self.counter}"
            if scope.resolve(candidate) is None:
                return candidate

    def _declare(
        self, st: list, parent_scope: _Scope, nsdecls: dict, prefix: str, uri: str
    ) -> None:
        """Bind *prefix* in the element state *st* = [scope, owned, extras].

        Materialises a private scope on first declaration so the
        mutation cannot pollute the shared memoised scope tree.
        """
        scope = st[0]
        if not st[1]:
            scope = _Scope(parent_scope, nsdecls) if nsdecls else _Scope(scope)
            st[0] = scope
            st[1] = True
        if st[2] is None:
            st[2] = {}
        st[2][prefix] = uri
        scope.declare(prefix, uri)

    def _prefix_of(
        self, st: list, parent_scope: _Scope, nsdecls: dict, q: QName, is_attr: bool
    ) -> str:
        """The full resolution cascade, byte-compatible with the
        reference implementation.  ``element`` inlines the two hot
        cases (no namespace, hint already bound) and only falls back
        here; after any call the caller must re-read ``st[0]`` because
        a declaration replaces the shared scope with a private one."""
        scope = st[0]
        if q.uri == "":
            # Attributes never use the default namespace; elements in
            # no namespace must not inherit a non-empty default.
            if not is_attr and scope.resolve("") not in (None, ""):
                self._declare(st, parent_scope, nsdecls, "", "")
            return ""
        # honour the hint when it is already bound correctly
        if q.prefix and scope.resolve(q.prefix) == q.uri:
            return q.prefix
        existing = scope.prefix_for(q.uri)
        if existing is not None and not (is_attr and existing == ""):
            return existing
        # need a declaration: use the hint if free, else generate
        prefix = q.prefix if (q.prefix and scope.resolve(q.prefix) is None) else ""
        if not prefix or (is_attr and prefix == ""):
            prefix = self.fresh_prefix(scope)
        self._declare(st, parent_scope, nsdecls, prefix, q.uri)
        return prefix

    def element(self, elem: Element, parent_scope: _Scope, depth: int) -> None:
        nsdecls = elem.nsdecls
        # Elements that declare nothing share the parent scope object
        # outright, and decl-bearing elements share the memoised scope
        # tree; a private scope is materialised only if an undeclared-
        # namespace resolution forces a declaration.
        if nsdecls:
            scope = _Scope.shared(parent_scope, nsdecls)
        else:
            scope = parent_scope
        # [scope, owned, extra_decls] — mutated only by _declare
        st = [scope, False, None]

        q = elem.name
        flat = scope.flat
        if q.uri:
            tag_prefix = q.prefix
            if not tag_prefix or flat.get(tag_prefix) != q.uri:
                tag_prefix = self._prefix_of(st, parent_scope, nsdecls, q, False)
                scope = st[0]
                flat = scope.flat
        else:
            tag_prefix = ""
            default = flat.get("")
            if default is not None and default != "":
                self._declare(st, parent_scope, nsdecls, "", "")
                scope = st[0]
                flat = scope.flat
        tag = f"{tag_prefix}:{elem.name.local}" if tag_prefix else elem.name.local

        attr_parts: list[str] = []
        attributes = elem.attributes
        if attributes:
            for aname, avalue in attributes.items():
                if not aname.uri:
                    ap = ""
                else:
                    ap = aname.prefix
                    if not ap or flat.get(ap) != aname.uri:
                        ap = self._prefix_of(st, parent_scope, nsdecls, aname, True)
                        scope = st[0]
                        flat = scope.flat
                key = f"{ap}:{aname.local}" if ap else aname.local
                attr_parts.append(f' {key}="{escape_attr(avalue)}"')

        extra_decls = st[2]
        decl_parts: list[str] = []
        if nsdecls:
            if extra_decls:
                # Same iteration order and override semantics as the old
                # ``{**elem.nsdecls, **extra_decls}`` merge, without
                # building the merged dict.
                for prefix, uri in nsdecls.items():
                    uri = extra_decls.get(prefix, uri)
                    key = f"xmlns:{prefix}" if prefix else "xmlns"
                    decl_parts.append(f' {key}="{escape_attr(uri)}"')
                for prefix, uri in extra_decls.items():
                    if prefix in nsdecls:
                        continue
                    key = f"xmlns:{prefix}" if prefix else "xmlns"
                    decl_parts.append(f' {key}="{escape_attr(uri)}"')
            else:
                for prefix, uri in nsdecls.items():
                    key = f"xmlns:{prefix}" if prefix else "xmlns"
                    decl_parts.append(f' {key}="{escape_attr(uri)}"')
        elif extra_decls:
            for prefix, uri in extra_decls.items():
                key = f"xmlns:{prefix}" if prefix else "xmlns"
                decl_parts.append(f' {key}="{escape_attr(uri)}"')

        indent = "  " * depth if self.pretty else ""
        open_tag = f"{indent}<{tag}{''.join(decl_parts)}{''.join(attr_parts)}"

        content = elem.content
        if not content:
            self.parts.append(open_tag + "/>")
            if self.pretty:
                self.parts.append("\n")
            return

        only_text = all(isinstance(c, str) for c in content)
        self.parts.append(open_tag + ">")
        if only_text:
            self.parts.append(escape_text(elem.text))
            self.parts.append(f"</{tag}>")
            if self.pretty:
                self.parts.append("\n")
            return

        if self.pretty:
            self.parts.append("\n")
        for c in content:
            if isinstance(c, str):
                if self.pretty:
                    if c.strip():
                        self.parts.append("  " * (depth + 1) + escape_text(c.strip()) + "\n")
                else:
                    self.parts.append(escape_text(c))
            else:
                self.element(c, scope, depth + 1)
        self.parts.append(f"{indent}</{tag}>")
        if self.pretty:
            self.parts.append("\n")


#: The persistent document root scope.  Every serialisation starts
#: here, so the child-scope memo hanging off it (and off its cached
#: descendants) survives across calls: a recurring document shape —
#: every SOAP envelope this stack emits — flattens its scope tree
#: exactly once per process.  The root itself is never mutated
#: (``element`` materialises a private scope before any declare).
_ROOT_SCOPE = _Scope()


def _serialize_fast(elem: Element, pretty: bool, xml_declaration: bool) -> str:
    ser = _Serializer(pretty)
    ser.element(elem, _ROOT_SCOPE, 0)
    body = "".join(ser.parts)
    if pretty:
        body = body.rstrip("\n") + "\n"
    if xml_declaration:
        return '<?xml version="1.0" encoding="utf-8"?>' + ("\n" if pretty else "") + body
    return body


#: Active implementation hook.  ``repro.xmlkit.reference.reference_codec``
#: swaps this to the frozen pre-change serializer so benchmarks can
#: measure before/after in one process.
_ACTIVE_SERIALIZE = _serialize_fast


def serialize(
    elem: Element,
    *,
    pretty: bool = False,
    xml_declaration: bool = False,
) -> str:
    """Serialise *elem* (and subtree) to XML text.

    With ``pretty=True`` the output is indented; note pretty output
    inserts whitespace text nodes, so use it for humans, not for
    signature-sensitive exchange.
    """
    return _ACTIVE_SERIALIZE(elem, pretty, xml_declaration)
