"""Serialiser: Element tree → XML text.

The serialiser guarantees the output re-parses to a structurally equal
tree (the round-trip property the test suite checks with hypothesis).
Namespace handling: explicit ``nsdecls`` on elements are honoured;
elements or attributes whose namespace URI has no in-scope prefix get a
generated ``ns<N>`` declaration at the point of use.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.xmlkit.element import Element
from repro.xmlkit.names import QName, XML_URI


def escape_text(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def escape_attr(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.decls: dict[str, str] = {}  # prefix -> uri

    def resolve(self, prefix: str) -> Optional[str]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if prefix in scope.decls:
                return scope.decls[prefix]
            scope = scope.parent
        if prefix == "xml":
            return XML_URI
        return None

    def prefix_for(self, uri: str) -> Optional[str]:
        """Innermost prefix bound to *uri*, honouring shadowing."""
        shadowed: set[str] = set()
        scope: Optional[_Scope] = self
        while scope is not None:
            for prefix, bound in scope.decls.items():
                if prefix in shadowed:
                    continue
                if bound == uri:
                    return prefix
                shadowed.add(prefix)
            scope = scope.parent
        if uri == XML_URI:
            return "xml"
        return None


class _Serializer:
    def __init__(self, pretty: bool):
        self.pretty = pretty
        self.counter = 0
        self.parts: list[str] = []

    def fresh_prefix(self, scope: _Scope) -> str:
        while True:
            self.counter += 1
            candidate = f"ns{self.counter}"
            if scope.resolve(candidate) is None:
                return candidate

    def element(self, elem: Element, parent_scope: _Scope, depth: int) -> None:
        scope = _Scope(parent_scope)
        scope.decls.update(elem.nsdecls)
        extra_decls: dict[str, str] = {}

        def prefix_of(q: QName, is_attr: bool) -> str:
            if q.uri == "":
                # Attributes never use the default namespace; elements in
                # no namespace must not inherit a non-empty default.
                if not is_attr and scope.resolve("") not in (None, ""):
                    extra_decls[""] = ""
                    scope.decls[""] = ""
                return ""
            # honour the hint when it is already bound correctly
            if q.prefix and scope.resolve(q.prefix) == q.uri:
                return q.prefix
            existing = scope.prefix_for(q.uri)
            if existing is not None and not (is_attr and existing == ""):
                return existing
            # need a declaration: use the hint if free, else generate
            prefix = q.prefix if (q.prefix and scope.resolve(q.prefix) is None) else ""
            if not prefix or (is_attr and prefix == ""):
                prefix = self.fresh_prefix(scope)
            extra_decls[prefix] = q.uri
            scope.decls[prefix] = q.uri
            return prefix

        tag_prefix = prefix_of(elem.name, is_attr=False)
        tag = f"{tag_prefix}:{elem.name.local}" if tag_prefix else elem.name.local

        attr_parts: list[str] = []
        for aname, avalue in elem.attributes.items():
            ap = prefix_of(aname, is_attr=True)
            key = f"{ap}:{aname.local}" if ap else aname.local
            attr_parts.append(f' {key}="{escape_attr(avalue)}"')

        decl_parts: list[str] = []
        for prefix, uri in {**elem.nsdecls, **extra_decls}.items():
            key = f"xmlns:{prefix}" if prefix else "xmlns"
            decl_parts.append(f' {key}="{escape_attr(uri)}"')

        indent = "  " * depth if self.pretty else ""
        open_tag = f"{indent}<{tag}{''.join(decl_parts)}{''.join(attr_parts)}"

        content = elem.content
        if not content:
            self.parts.append(open_tag + "/>")
            if self.pretty:
                self.parts.append("\n")
            return

        only_text = all(isinstance(c, str) for c in content)
        self.parts.append(open_tag + ">")
        if only_text:
            self.parts.append(escape_text(elem.text))
            self.parts.append(f"</{tag}>")
            if self.pretty:
                self.parts.append("\n")
            return

        if self.pretty:
            self.parts.append("\n")
        for c in content:
            if isinstance(c, str):
                if self.pretty:
                    if c.strip():
                        self.parts.append("  " * (depth + 1) + escape_text(c.strip()) + "\n")
                else:
                    self.parts.append(escape_text(c))
            else:
                self.element(c, scope, depth + 1)
        self.parts.append(f"{indent}</{tag}>")
        if self.pretty:
            self.parts.append("\n")


def serialize(
    elem: Element,
    *,
    pretty: bool = False,
    xml_declaration: bool = False,
) -> str:
    """Serialise *elem* (and subtree) to XML text.

    With ``pretty=True`` the output is indented; note pretty output
    inserts whitespace text nodes, so use it for humans, not for
    signature-sensitive exchange.
    """
    ser = _Serializer(pretty)
    ser.element(elem, _Scope(), 0)
    body = "".join(ser.parts)
    if pretty:
        body = body.rstrip("\n") + "\n"
    if xml_declaration:
        return '<?xml version="1.0" encoding="utf-8"?>' + ("\n" if pretty else "") + body
    return body
