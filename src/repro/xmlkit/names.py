"""Qualified names (QNames) and name validity checks."""

from __future__ import annotations

from dataclasses import dataclass

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789.-")

XMLNS_URI = "http://www.w3.org/2000/xmlns/"
XML_URI = "http://www.w3.org/XML/1998/namespace"


def is_ncname(name: str) -> bool:
    """Return True if *name* is a valid NCName (no-colon name).

    We restrict to the ASCII subset of the XML NCName production, which
    is all this stack ever emits.
    """
    if not name:
        return False
    if name[0] not in _NAME_START:
        return False
    return all(c in _NAME_CHARS for c in name[1:])


def split_prefixed(name: str) -> tuple[str, str]:
    """Split ``prefix:local`` into ``(prefix, local)``; prefix may be ''."""
    if ":" in name:
        prefix, _, local = name.partition(":")
        return prefix, local
    return "", name


@dataclass(frozen=True, slots=True)
class QName:
    """A namespace-qualified XML name.

    ``uri`` is the namespace URI ('' for no namespace), ``local`` the
    local part, and ``prefix`` a *hint* for serialisation (the
    serialiser may pick a different prefix if the hint collides).
    Equality and hashing ignore the prefix, per XML namespaces
    semantics.
    """

    uri: str
    local: str
    prefix: str = ""

    def __post_init__(self):
        if not is_ncname(self.local):
            raise ValueError(f"invalid local name: {self.local!r}")
        if self.prefix and not is_ncname(self.prefix):
            raise ValueError(f"invalid prefix: {self.prefix!r}")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, QName):
            return self.uri == other.uri and self.local == other.local
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.uri, self.local))

    def __str__(self) -> str:
        if self.uri:
            return "{%s}%s" % (self.uri, self.local)
        return self.local

    def clark(self) -> str:
        """Clark notation ``{uri}local`` ('' uri omitted)."""
        return str(self)

    @classmethod
    def from_clark(cls, text: str, prefix: str = "") -> "QName":
        """Parse Clark notation: ``{uri}local`` or bare ``local``."""
        if text.startswith("{"):
            uri, _, local = text[1:].partition("}")
            return cls(uri, local, prefix)
        return cls("", text, prefix)

    def with_prefix(self, prefix: str) -> "QName":
        return QName(self.uri, self.local, prefix)
