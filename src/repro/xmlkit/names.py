"""Qualified names (QNames) and name validity checks."""

from __future__ import annotations

import re
from dataclasses import dataclass

_NCNAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9._\-]*\Z")

XMLNS_URI = "http://www.w3.org/2000/xmlns/"
XML_URI = "http://www.w3.org/XML/1998/namespace"


def is_ncname(name: str) -> bool:
    """Return True if *name* is a valid NCName (no-colon name).

    We restrict to the ASCII subset of the XML NCName production, which
    is all this stack ever emits.
    """
    return _NCNAME_RE.match(name) is not None


def split_prefixed(name: str) -> tuple[str, str]:
    """Split ``prefix:local`` into ``(prefix, local)``; prefix may be ''."""
    if ":" in name:
        prefix, _, local = name.partition(":")
        return prefix, local
    return "", name


@dataclass(frozen=True, slots=True)
class QName:
    """A namespace-qualified XML name.

    ``uri`` is the namespace URI ('' for no namespace), ``local`` the
    local part, and ``prefix`` a *hint* for serialisation (the
    serialiser may pick a different prefix if the hint collides).
    Equality and hashing ignore the prefix, per XML namespaces
    semantics.
    """

    uri: str
    local: str
    prefix: str = ""

    def __post_init__(self):
        if not is_ncname(self.local):
            raise ValueError(f"invalid local name: {self.local!r}")
        if self.prefix and not is_ncname(self.prefix):
            raise ValueError(f"invalid prefix: {self.prefix!r}")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, QName):
            return self.uri == other.uri and self.local == other.local
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.uri, self.local))

    def __str__(self) -> str:
        if self.uri:
            return "{%s}%s" % (self.uri, self.local)
        return self.local

    def clark(self) -> str:
        """Clark notation ``{uri}local`` ('' uri omitted)."""
        return str(self)

    @classmethod
    def from_clark(cls, text: str, prefix: str = "") -> "QName":
        """Parse Clark notation: ``{uri}local`` or bare ``local``."""
        if text.startswith("{"):
            uri, _, local = text[1:].partition("}")
            return cls(uri, local, prefix)
        return cls("", text, prefix)

    def with_prefix(self, prefix: str) -> "QName":
        return QName(self.uri, self.local, prefix)


# ----------------------------------------------------------------------
# interning
# ----------------------------------------------------------------------
# Wire traffic repeats a small vocabulary of names (soapenv:Envelope,
# wsa:To, xsi:type, ...) millions of times; interning skips the
# dataclass construction and NCName re-validation for every repeat and
# makes the ``self is other`` equality fast path hit.  The table is
# bounded so adversarial name churn cannot grow memory without limit —
# once full, fresh names simply construct uncached instances.
_INTERN_MAX = 4096
_interned: dict[tuple[str, str, str], QName] = {}


def intern_qname(uri: str, local: str, prefix: str = "") -> QName:
    """A shared, validated :class:`QName` for ``(uri, local, prefix)``."""
    key = (uri, local, prefix)
    qname = _interned.get(key)
    if qname is None:
        qname = QName(uri, local, prefix)
        if len(_interned) < _INTERN_MAX:
            _interned[key] = qname
    return qname
