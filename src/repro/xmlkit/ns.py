"""Well-known namespace URIs used across the WSPeer stack.

The SOAP/WSDL/WSA URIs follow the 2004-era specifications the paper
cites; UDDI follows v2; the ``P2PS``/``WSPEER`` URIs are this
reproduction's own vocabularies (the originals were never published as
schemas).
"""

# Core XML
XSD = "http://www.w3.org/2001/XMLSchema"
XSI = "http://www.w3.org/2001/XMLSchema-instance"

# SOAP 1.1 (the version Axis 1.x, and hence WSPeer, spoke)
SOAP_ENV = "http://schemas.xmlsoap.org/soap/envelope/"
SOAP_ENC = "http://schemas.xmlsoap.org/soap/encoding/"

# WSDL 1.1
WSDL = "http://schemas.xmlsoap.org/wsdl/"
WSDL_SOAP = "http://schemas.xmlsoap.org/wsdl/soap/"

# WS-Addressing (March 2004 member submission, as cited by the paper)
WSA = "http://schemas.xmlsoap.org/ws/2004/03/addressing"

# UDDI v2
UDDI = "urn:uddi-org:api_v2"

# This reproduction's vocabularies
P2PS = "http://repro.wspeer/p2ps"
WSPEER = "http://repro.wspeer/core"
DISCOVERY = "http://repro.wspeer/discovery"
TRACE = "urn:repro:trace"
