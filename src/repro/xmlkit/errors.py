"""Error types raised by the XML layer."""


class XmlError(Exception):
    """Base class for all XML-layer errors."""


class XmlParseError(XmlError):
    """Input text could not be tokenized/parsed as XML.

    Carries the 1-based ``line`` and ``column`` of the offending
    position when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XmlWellFormednessError(XmlParseError):
    """Structurally invalid XML: mismatched tags, duplicate attributes,
    undeclared namespace prefixes, multiple roots, etc."""
