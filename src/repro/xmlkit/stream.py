"""Streaming codec path (E16): serialise and parse without ever
materialising the whole document.

Two halves, each a mirror of the batch codec with the buffers turned
inside out:

* :func:`iter_serialize` — a generator twin of
  :func:`repro.xmlkit.serializer.serialize`.  It walks the tree with
  the very same namespace-scope machinery (:class:`_Scope`, the
  memoised root scope, the ``_prefix_of`` cascade) but *yields* wire
  chunks instead of appending to a parts list, so peak memory is one
  chunk, not one document.  Large text nodes are escaped
  window-by-window — escaping is per-character, so a windowed escape
  concatenates to exactly the whole-string escape.  Output is
  byte-identical to ``serialize(...).encode("utf-8")``; the frozen
  reference codec stays the parity oracle.

* :class:`FeedParser` — an incremental twin of
  :func:`repro.xmlkit.parser.parse`.  ``feed()`` accepts ``bytes`` /
  ``memoryview`` slices (decoded with an incremental UTF-8 decoder, so
  a multi-byte character split across chunks is fine) or ``str``.  The
  parser cuts *complete constructs* off the front of its buffer —
  comments need ``-->``, CDATA needs ``]]>``, start tags need a ``>``
  outside quoted attribute values (a quote-aware scan with a resume
  offset, since attribute values may legally contain ``>``) — and runs
  each through the ordinary tokenizer, feeding the same tree-building
  loop as the batch parser.  Text runs split across feeds are merged
  back into one content node, so the resulting tree compares equal to
  the batch parser's.  Error positions are per-construct rather than
  per-document; everything else matches.
"""

from __future__ import annotations

import codecs
from typing import Iterable, Iterator, Optional, Union

from repro.xmlkit.element import Element
from repro.xmlkit.errors import XmlParseError, XmlWellFormednessError
from repro.xmlkit.names import intern_qname, split_prefixed
from repro.xmlkit.parser import _NsScope, _resolve_element
from repro.xmlkit.serializer import (
    _ROOT_SCOPE,
    _Scope,
    _Serializer,
    escape_attr,
    escape_text,
)
from repro.xmlkit.tokenizer import TokenType, Tokenizer

#: window for escaping large text nodes: escape_text is applied to
#: slices this long, never to the whole node
_TEXT_WINDOW = 64 * 1024


def _iter_escaped(text: str) -> Iterator[str]:
    """escape_text applied window-by-window.  Escaping replaces single
    characters, so the concatenation of windowed escapes is exactly the
    escape of the concatenation."""
    if len(text) <= _TEXT_WINDOW:
        yield escape_text(text)
        return
    for i in range(0, len(text), _TEXT_WINDOW):
        yield escape_text(text[i : i + _TEXT_WINDOW])


class _StreamSerializer(_Serializer):
    """Generator twin of :meth:`_Serializer.element`.

    Reuses every piece of the batch serializer's namespace machinery —
    ``fresh_prefix``, ``_declare``, ``_prefix_of``, the shared scope
    memo — and mirrors ``element``'s emission order statement for
    statement.  Any change to the batch method must land here too; the
    parity property tests (stream output == batch output == reference
    codec output) hold the two together.
    """

    def iter_element(
        self, elem: Element, parent_scope: _Scope, depth: int
    ) -> Iterator[str]:
        nsdecls = elem.nsdecls
        if nsdecls:
            scope = _Scope.shared(parent_scope, nsdecls)
        else:
            scope = parent_scope
        st = [scope, False, None]

        q = elem.name
        flat = scope.flat
        if q.uri:
            tag_prefix = q.prefix
            if not tag_prefix or flat.get(tag_prefix) != q.uri:
                tag_prefix = self._prefix_of(st, parent_scope, nsdecls, q, False)
                scope = st[0]
                flat = scope.flat
        else:
            tag_prefix = ""
            default = flat.get("")
            if default is not None and default != "":
                self._declare(st, parent_scope, nsdecls, "", "")
                scope = st[0]
                flat = scope.flat
        tag = f"{tag_prefix}:{elem.name.local}" if tag_prefix else elem.name.local

        attr_parts: list[str] = []
        attributes = elem.attributes
        if attributes:
            for aname, avalue in attributes.items():
                if not aname.uri:
                    ap = ""
                else:
                    ap = aname.prefix
                    if not ap or flat.get(ap) != aname.uri:
                        ap = self._prefix_of(st, parent_scope, nsdecls, aname, True)
                        scope = st[0]
                        flat = scope.flat
                key = f"{ap}:{aname.local}" if ap else aname.local
                attr_parts.append(f' {key}="{escape_attr(avalue)}"')

        extra_decls = st[2]
        decl_parts: list[str] = []
        if nsdecls:
            if extra_decls:
                for prefix, uri in nsdecls.items():
                    uri = extra_decls.get(prefix, uri)
                    key = f"xmlns:{prefix}" if prefix else "xmlns"
                    decl_parts.append(f' {key}="{escape_attr(uri)}"')
                for prefix, uri in extra_decls.items():
                    if prefix in nsdecls:
                        continue
                    key = f"xmlns:{prefix}" if prefix else "xmlns"
                    decl_parts.append(f' {key}="{escape_attr(uri)}"')
            else:
                for prefix, uri in nsdecls.items():
                    key = f"xmlns:{prefix}" if prefix else "xmlns"
                    decl_parts.append(f' {key}="{escape_attr(uri)}"')
        elif extra_decls:
            for prefix, uri in extra_decls.items():
                key = f"xmlns:{prefix}" if prefix else "xmlns"
                decl_parts.append(f' {key}="{escape_attr(uri)}"')

        indent = "  " * depth if self.pretty else ""
        open_tag = f"{indent}<{tag}{''.join(decl_parts)}{''.join(attr_parts)}"

        content = elem.content
        if not content:
            yield open_tag + "/>"
            if self.pretty:
                yield "\n"
            return

        only_text = all(isinstance(c, str) for c in content)
        yield open_tag + ">"
        if only_text:
            # batch: escape_text(elem.text) where .text joins the str
            # items — per-item windowed escapes concatenate identically
            for c in content:
                yield from _iter_escaped(c)
            yield f"</{tag}>"
            if self.pretty:
                yield "\n"
            return

        if self.pretty:
            yield "\n"
        for c in content:
            if isinstance(c, str):
                if self.pretty:
                    if c.strip():
                        yield "  " * (depth + 1)
                        yield from _iter_escaped(c.strip())
                        yield "\n"
                else:
                    yield from _iter_escaped(c)
            else:
                yield from self.iter_element(c, scope, depth + 1)
        yield f"{indent}</{tag}>"
        if self.pretty:
            yield "\n"


def iter_serialize(
    elem: Element,
    *,
    chunk_size: int = 64 * 1024,
    pretty: bool = False,
    xml_declaration: bool = False,
) -> Iterator[bytes]:
    """Serialise *elem* as UTF-8 byte chunks of roughly *chunk_size*.

    ``b"".join(iter_serialize(e))`` is byte-identical to
    ``serialize(e).encode("utf-8")`` for every tree — the parity
    property tests pin this against the batch serializer and the
    frozen reference codec.
    """
    ser = _StreamSerializer(pretty)

    def parts() -> Iterator[str]:
        if xml_declaration:
            yield '<?xml version="1.0" encoding="utf-8"?>' + ("\n" if pretty else "")
        if pretty:
            # batch normalises the tail to exactly one newline
            # (body.rstrip("\n") + "\n"): hold back trailing newlines
            # until a non-newline part proves they are interior
            held = 0
            for part in ser.iter_element(elem, _ROOT_SCOPE, 0):
                stripped = part.rstrip("\n")
                if held and (stripped or part):
                    yield "\n" * held
                    held = 0
                held = len(part) - len(stripped)
                if stripped:
                    yield stripped
            yield "\n"
        else:
            yield from ser.iter_element(elem, _ROOT_SCOPE, 0)

    buf = bytearray()
    for part in parts():
        buf += part.encode("utf-8")
        if len(buf) >= chunk_size:
            yield bytes(buf)
            buf = bytearray()
    if buf:
        yield bytes(buf)


# ----------------------------------------------------------------------
# incremental parsing
# ----------------------------------------------------------------------

_BytesLike = Union[bytes, bytearray, memoryview]


class FeedParser:
    """Incremental ``feed()``/``close()`` XML parser.

    Produces a tree equal to ``parse("".join(chunks))`` while holding
    at most one construct (tag, comment, CDATA section) plus one
    incomplete tail in memory — text runs stream straight into the
    tree as they arrive.
    """

    def __init__(self) -> None:
        self._decoder = codecs.getincrementaldecoder("utf-8")()
        self._buf = ""
        self._root: Optional[Element] = None
        self._stack: list[Element] = []
        self._scope = _NsScope()
        self._in_text_run = False
        self._closed = False
        # quote-aware start-tag scan state, preserved across feeds so a
        # tag split over many chunks is scanned once, not per feed
        self._scan_pos = 1
        self._scan_quote: Optional[str] = None
        self.fed_bytes = 0

    # ------------------------------------------------------------------
    def feed(self, data: Union[str, _BytesLike]) -> None:
        if self._closed:
            raise XmlParseError("feed() after close()")
        if isinstance(data, (bytes, bytearray, memoryview)):
            self.fed_bytes += len(data)
            text = self._decoder.decode(bytes(data))
        else:
            self.fed_bytes += len(data)
            text = data
        if not text:
            return
        self._buf += text
        self._pump(final=False)

    def close(self) -> Element:
        if self._closed:
            raise XmlParseError("close() called twice")
        self._closed = True
        tail = self._decoder.decode(b"", True)
        if tail:
            self._buf += tail
        self._pump(final=True)
        if self._buf:
            # an incomplete construct at end of input: run the
            # tokenizer on it so the error message matches the batch
            # parser's ("unterminated comment", ...)
            piece = self._buf
            self._buf = ""
            self._consume_piece(piece, continuation=self._in_text_run)
        if self._stack:
            raise XmlWellFormednessError(
                f"unclosed element <{self._stack[-1].name.local}>"
            )
        if self._root is None:
            raise XmlParseError("no root element found")
        return self._root

    # ------------------------------------------------------------------
    def _pump(self, final: bool) -> None:
        while self._buf:
            buf = self._buf
            if buf[0] == "<":
                end = self._construct_end(buf)
                if end is None:
                    return  # incomplete construct: wait for more input
                piece = buf[:end]
                self._buf = buf[end:]
                self._scan_pos, self._scan_quote = 1, None
                self._consume_piece(piece, continuation=False)
                self._in_text_run = False
                continue
            lt = buf.find("<")
            if lt >= 0:
                piece = buf[:lt]
                self._buf = buf[lt:]
                self._consume_piece(piece, continuation=self._in_text_run)
                self._in_text_run = False
                continue
            # all text so far: flush what is safely complete, holding
            # back a possibly-split trailing entity reference
            hold = 0 if final else self._entity_holdback(buf)
            piece = buf[: len(buf) - hold]
            self._buf = buf[len(buf) - hold :]
            if piece:
                self._consume_piece(piece, continuation=self._in_text_run)
                self._in_text_run = True
            return

    @staticmethod
    def _entity_holdback(buf: str) -> int:
        amp = buf.rfind("&")
        if amp >= 0 and ";" not in buf[amp:]:
            return len(buf) - amp
        return 0

    def _construct_end(self, buf: str) -> Optional[int]:
        """Index one past the end of the markup construct at the front
        of *buf*, or None if it is not complete yet."""
        if buf.startswith("<!"):
            if buf.startswith("<!--"):
                end = buf.find("-->", 4)
                return None if end < 0 else end + 3
            if buf.startswith("<![CDATA["):
                end = buf.find("]]>", 9)
                return None if end < 0 else end + 3
            if "<!--".startswith(buf) or "<![CDATA[".startswith(buf):
                return None  # still ambiguous: need more characters
            # a DTD or other unsupported construct: hand the whole
            # remainder to the tokenizer, which raises the batch error
            return len(buf)
        if buf.startswith("<?"):
            end = buf.find("?>", 2)
            return None if end < 0 else end + 2
        if buf.startswith("</"):
            end = buf.find(">", 2)
            return None if end < 0 else end + 1
        if buf == "<":
            return None
        # start tag: scan for '>' outside quotes — attribute values may
        # legally contain '>'.  Resume from where the last scan stopped.
        i = self._scan_pos
        quote = self._scan_quote
        n = len(buf)
        while i < n:
            ch = buf[i]
            if quote is not None:
                if ch == quote:
                    quote = None
            elif ch == '"' or ch == "'":
                quote = ch
            elif ch == ">":
                self._scan_pos, self._scan_quote = 1, None
                return i + 1
            i += 1
        self._scan_pos, self._scan_quote = i, quote
        return None

    # ------------------------------------------------------------------
    def _consume_piece(self, piece: str, continuation: bool) -> None:
        for token in Tokenizer(piece).tokens():
            self._handle_token(token, continuation)
            continuation = False

    def _handle_token(self, token, continuation: bool) -> None:
        # mirrors the batch parser's _parse_impl loop body
        ttype = token.type
        if ttype is TokenType.START_TAG:
            if self._root is not None and not self._stack:
                raise XmlWellFormednessError(
                    "multiple root elements", token.line, token.column
                )
            elem = _resolve_element(token, self._scope, intern_qname)
            if self._stack:
                self._stack[-1].append(elem)
            else:
                self._root = elem
            if token.self_closing:
                if elem.nsdecls:
                    self._scope.pop()
            else:
                self._stack.append(elem)
            return
        if ttype is TokenType.TEXT:
            chunk = token.value
            if not self._stack:
                if chunk.strip():
                    where = "before" if self._root is None else "after"
                    raise XmlWellFormednessError(
                        f"character data {where} root element",
                        token.line,
                        token.column,
                    )
                return
            top = self._stack[-1]
            if continuation and top._content and isinstance(top._content[-1], str):
                # the tail of a text run split by a feed boundary: merge
                # so the tree equals the batch parser's single text node
                top._content[-1] += chunk
            else:
                top.append_text(chunk)
            return
        if ttype is TokenType.END_TAG:
            if not self._stack:
                raise XmlWellFormednessError(
                    f"unexpected closing tag </{token.value}>",
                    token.line,
                    token.column,
                )
            open_elem = self._stack.pop()
            prefix, local = split_prefixed(token.value)
            if open_elem.name.local != local or open_elem.name.prefix != prefix:
                raise XmlWellFormednessError(
                    f"mismatched closing tag </{token.value}>; "
                    f"open element is <{open_elem.name.prefix + ':' if open_elem.name.prefix else ''}{open_elem.name.local}>",
                    token.line,
                    token.column,
                )
            if open_elem.nsdecls:
                self._scope.pop()
            return
        if ttype is TokenType.DECLARATION:
            if self._root is not None or self._stack:
                raise XmlParseError(
                    "XML declaration after content", token.line, token.column
                )
            return
        # COMMENT / PI carry no structure


def parse_stream(chunks: Iterable[Union[str, _BytesLike]]) -> Element:
    """Parse a document supplied as an iterable of chunks — the
    one-call façade over :class:`FeedParser`."""
    parser = FeedParser()
    for chunk in chunks:
        parser.feed(chunk)
    return parser.close()
