"""Endpoint health scoring from passive signals and active probes.

A :class:`ServiceHandle` carries several EndpointReferences for the
same logical service (HTTP and ``p2ps://`` — §III's "does not have to
care where or how the service has been located").  The
:class:`HealthMonitor` keeps one exponentially-decayed health score per
endpoint address, fed by whatever the reliability layer already
observes for free — invocation outcomes, ``Server.Busy`` shed
responses, ack/response latency, circuit-breaker state — plus optional
active probes.  The :class:`~repro.supervision.failover.FailoverExecutor`
ranks a handle's endpoints by these scores; locators subscribe to
*verdicts* ("endpoint dead" / "endpoint alive") to drop poisoned EPRs
from what discovery hands out.

Everything is driven by a pluggable clock, so simnet scenarios exercise
decay and cooldowns deterministically.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Optional

from repro.observability import metrics as obs_metrics
from repro.wsa.epr import EndpointReference

DEAD = "dead"
ALIVE = "alive"

#: verdict listener: fn(endpoint_address, verdict) with verdict in
#: {:data:`DEAD`, :data:`ALIVE`}
VerdictListener = Callable[[str, str], None]

#: active prober: fn(endpoint_address, done) where done(ok, latency)
#: reports the probe outcome exactly once
ProbeFn = Callable[[str, Callable[[bool, float], None]], None]


class EndpointHealth:
    """Decayed outcome counters plus latency tracking for one endpoint.

    ``good``/``bad`` are observation masses that decay with time
    constant *tau*, so an endpoint that failed hard an hour ago but
    answers now scores high again without any explicit reset.  The
    score is a Beta-smoothed success ratio in (0, 1); ``0.5`` means
    "no evidence either way".
    """

    __slots__ = (
        "address", "good", "bad", "last_update", "latency_ewma",
        "consecutive_failures", "busy_until", "dead", "last_seen_ok",
    )

    def __init__(self, address: str):
        self.address = address
        self.good = 0.0
        self.bad = 0.0
        self.last_update = 0.0
        self.latency_ewma: Optional[float] = None
        self.consecutive_failures = 0
        self.busy_until = 0.0
        self.dead = False
        self.last_seen_ok: Optional[float] = None

    def decay(self, now: float, tau: float) -> None:
        dt = now - self.last_update
        if dt > 0 and (self.good or self.bad):
            factor = math.exp(-dt / tau)
            self.good *= factor
            self.bad *= factor
        self.last_update = max(self.last_update, now)

    def score(self, prior: float = 1.0) -> float:
        return (self.good + prior) / (self.good + self.bad + 2.0 * prior)


class HealthMonitor:
    """Scores every known endpoint; emits dead/alive verdicts.

    Passive signals arrive through ``record_success`` /
    ``record_failure`` / ``record_busy`` (the failover executor calls
    these on every attempt).  ``dead_after`` consecutive hard failures
    declare an endpoint dead; any later success (typically from an
    active probe, or from a last-resort attempt when every endpoint of
    a handle is dead) revives it.  Verdict listeners hear each
    transition exactly once.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        tau: float = 30.0,
        prior: float = 1.0,
        dead_after: int = 3,
        latency_alpha: float = 0.3,
    ):
        if dead_after < 1:
            raise ValueError("dead_after must be >= 1")
        self._clock = clock or (lambda: 0.0)
        self.tau = tau
        self.prior = prior
        self.dead_after = dead_after
        self.latency_alpha = latency_alpha
        self._endpoints: dict[str, EndpointHealth] = {}
        self._verdict_listeners: list[VerdictListener] = []
        self._breakers = None  # optional CircuitBreakerRegistry
        self._prober: Optional[ProbeFn] = None
        self.probes_sent = 0

    # -- plumbing ----------------------------------------------------------
    def _now(self) -> float:
        return self._clock()

    def _entry(self, address: str) -> EndpointHealth:
        entry = self._endpoints.get(address)
        if entry is None:
            entry = EndpointHealth(address)
            entry.last_update = self._now()
            self._endpoints[address] = entry
        return entry

    def add_verdict_listener(self, listener: VerdictListener) -> None:
        self._verdict_listeners.append(listener)

    def _emit_verdict(self, address: str, verdict: str) -> None:
        obs_metrics.inc("health.verdicts." + verdict)
        for listener in list(self._verdict_listeners):
            listener(address, verdict)

    def attach_breakers(self, registry) -> None:
        """Consult *registry* (a CircuitBreakerRegistry) when ranking:
        an endpoint with an open breaker sorts behind closed ones even
        if its decayed score has not caught up yet."""
        self._breakers = registry

    # -- passive signals ---------------------------------------------------
    def record_success(self, address: str, latency: Optional[float] = None) -> None:
        now = self._now()
        entry = self._entry(address)
        entry.decay(now, self.tau)
        entry.good += 1.0
        entry.consecutive_failures = 0
        entry.busy_until = 0.0
        entry.last_seen_ok = now
        if latency is not None:
            if entry.latency_ewma is None:
                entry.latency_ewma = latency
            else:
                a = self.latency_alpha
                entry.latency_ewma = a * latency + (1.0 - a) * entry.latency_ewma
        if entry.dead:
            entry.dead = False
            self._emit_verdict(address, ALIVE)

    def record_failure(self, address: str, fatal: bool = False) -> None:
        """A hard failure: timeout, unreachable, transport error.

        *fatal* marks failures that prove the endpoint is gone (e.g.
        undeploy observed, explicit peer exit) and kills it instantly.
        """
        now = self._now()
        entry = self._entry(address)
        entry.decay(now, self.tau)
        entry.bad += 1.0
        entry.consecutive_failures += 1
        if not entry.dead and (
            fatal or entry.consecutive_failures >= self.dead_after
        ):
            entry.dead = True
            self._emit_verdict(address, DEAD)

    def record_busy(self, address: str, retry_after: float = 0.0) -> None:
        """A ``Server.Busy`` shed: soft signal.  The endpoint is alive
        (it answered) but overloaded; it drops out of the preferred
        ranking until the retry-after cooldown lapses.  Does not count
        toward the dead verdict."""
        now = self._now()
        entry = self._entry(address)
        entry.decay(now, self.tau)
        entry.bad += 0.5
        entry.consecutive_failures = 0
        entry.busy_until = max(entry.busy_until, now + max(retry_after, 0.0))
        entry.last_seen_ok = now

    def mark_dead(self, address: str) -> None:
        """Explicit external verdict (e.g. locator observed undeploy)."""
        self.record_failure(address, fatal=True)

    # -- queries -----------------------------------------------------------
    def score(self, address: str) -> float:
        entry = self._endpoints.get(address)
        if entry is None:
            return 0.5
        entry.decay(self._now(), self.tau)
        return entry.score(self.prior)

    def latency(self, address: str) -> Optional[float]:
        entry = self._endpoints.get(address)
        return entry.latency_ewma if entry is not None else None

    def is_dead(self, address: str) -> bool:
        entry = self._endpoints.get(address)
        return entry.dead if entry is not None else False

    def in_busy_cooldown(self, address: str) -> bool:
        entry = self._endpoints.get(address)
        return entry is not None and self._now() < entry.busy_until

    def _breaker_open(self, address: str) -> bool:
        if self._breakers is None:
            return False
        breaker = self._breakers.get(address)
        if breaker is None:
            return False
        from repro.reliability import OPEN

        return breaker.state == OPEN

    def rank(self, endpoints: Iterable[EndpointReference]) -> list[EndpointReference]:
        """Order *endpoints* healthiest-first, deterministically.

        Sort key, in order: not dead, breaker not open, not in busy
        cooldown, decayed score (desc), latency EWMA (asc, unknown
        last), address (the stable tie-break).  Dead endpoints stay in
        the list — last — so a handle whose every EPR looks dead still
        gets a best-effort attempt (which is also the revival path when
        no active prober is configured).
        """
        def key(epr: EndpointReference):
            address = epr.address
            latency = self.latency(address)
            return (
                self.is_dead(address),
                self._breaker_open(address),
                self.in_busy_cooldown(address),
                -self.score(address),
                latency is None,
                latency if latency is not None else 0.0,
                address,
            )

        return sorted(endpoints, key=key)

    def snapshot(self) -> dict[str, dict]:
        """Health table for diagnostics and experiment output."""
        now = self._now()
        out: dict[str, dict] = {}
        for address, entry in sorted(self._endpoints.items()):
            entry.decay(now, self.tau)
            out[address] = {
                "score": round(entry.score(self.prior), 4),
                "dead": entry.dead,
                "busy": now < entry.busy_until,
                "consecutive_failures": entry.consecutive_failures,
                "latency_ewma": entry.latency_ewma,
            }
        return out

    # -- active probes -----------------------------------------------------
    def set_prober(self, prober: Optional[ProbeFn]) -> None:
        self._prober = prober

    def probe(self, address: str) -> None:
        """Actively probe one endpoint (no-op without a prober)."""
        if self._prober is None:
            return
        self.probes_sent += 1
        sent_at = self._now()

        def done(ok: bool, latency: float = 0.0) -> None:
            if ok:
                self.record_success(address, latency=latency or (self._now() - sent_at))
            else:
                self.record_failure(address)

        self._prober(address, done)

    def start_probing(
        self,
        kernel,
        interval: float,
        only_suspect: bool = True,
        until: Optional[float] = None,
    ) -> None:
        """Probe on a fixed virtual-time cadence.

        With *only_suspect* (the default) each tick probes only dead or
        cooling-down endpoints — the cheap revival path; pass False to
        sweep every known endpoint.  Stops at *until* if given.
        """
        if interval <= 0:
            raise ValueError("probe interval must be positive")

        def tick() -> None:
            if until is not None and self._now() >= until:
                return
            for address, entry in list(self._endpoints.items()):
                if only_suspect and not (
                    entry.dead or self._now() < entry.busy_until
                ):
                    continue
                self.probe(address)
            kernel.schedule(interval, tick)

        kernel.schedule(interval, tick)
