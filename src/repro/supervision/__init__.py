"""Supervision and failover: a multi-endpoint handle as one HA service.

The paper's discovery model hands a consumer a :class:`ServiceHandle`
whose EndpointReferences may span bindings (HTTP, HTTPG, P2PS pipes)
and peers.  This package supervises those endpoints so the handle
behaves like one highly available service:

:mod:`repro.supervision.health`
    :class:`HealthMonitor` — exponentially-decayed per-endpoint health
    scores from passive signals (invocation outcomes, ``Server.Busy``
    sheds, latency, breaker state) and optional active probes; emits
    dead/alive verdicts that locators use to drop poisoned EPRs.
:mod:`repro.supervision.failover`
    :class:`FailoverExecutor` — ranks a handle's endpoints by health
    and walks the ranking on retryable failures, including
    cross-binding failover, reusing one ``wsa:MessageID`` so
    provider-side dedup keeps execution at-most-once.
:mod:`repro.supervision.admission`
    :class:`AdmissionController` — provider-side leaky-bucket load
    shedding; overload answers with a ``Server.Busy`` fault carrying a
    retry-after hint instead of queueing unboundedly.
"""

from repro.supervision.admission import AdmissionController
from repro.supervision.failover import (
    BUSY,
    FAILOVER,
    FINAL,
    FailoverConfig,
    FailoverExecutor,
    classify_error,
)
from repro.supervision.health import (
    ALIVE,
    DEAD,
    EndpointHealth,
    HealthMonitor,
)

__all__ = [
    "AdmissionController",
    "FailoverConfig",
    "FailoverExecutor",
    "classify_error",
    "FINAL",
    "BUSY",
    "FAILOVER",
    "HealthMonitor",
    "EndpointHealth",
    "ALIVE",
    "DEAD",
]
