"""Provider-side admission control: bounded queues, load shedding.

A hosted service that accepts every request under overload helps nobody
— queues grow without bound and every caller times out.  The
:class:`AdmissionController` models the container's pending-request
queue as a leaky bucket on virtual time: each admitted request adds one
unit of level, the level drains at ``drain_rate`` per second (the
provider's sustainable throughput), and a request arriving with the
level at ``capacity`` is *shed* — answered immediately with a
``Server.Busy`` SOAP fault carrying a retry-after hint sized to when
the queue will have drained room.  Clients treat the hint as "back
off, try another endpoint", which is exactly what the failover executor
does.

Shedding is cheap by construction: the busy fault is generated before
any dispatch work happens, so a saturated provider stays responsive in
the only way that matters — telling callers to go elsewhere, fast.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.observability import metrics as obs_metrics


class AdmissionController:
    """Leaky-bucket admission gate for a service container.

    *capacity* is the maximum queue level (pending-request bound);
    *drain_rate* is the service rate in requests/second used both to
    drain the virtual queue and to size retry-after hints.  A
    ``capacity`` of ``None`` disables shedding (the controller still
    tracks level for observability).
    """

    def __init__(
        self,
        capacity: Optional[float] = 8.0,
        drain_rate: float = 50.0,
        clock: Optional[Callable[[], float]] = None,
    ):
        if drain_rate <= 0:
            raise ValueError("drain_rate must be positive")
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None to disable)")
        self.capacity = capacity
        self.drain_rate = drain_rate
        self._clock = clock or (lambda: 0.0)
        self.level = 0.0
        self._last_drain = self._clock()
        self.admitted = 0
        self.shed = 0

    def _drain(self) -> None:
        now = self._clock()
        dt = now - self._last_drain
        if dt > 0:
            self.level = max(0.0, self.level - dt * self.drain_rate)
        self._last_drain = max(self._last_drain, now)

    def try_admit(self) -> tuple[bool, float]:
        """Gate one request.

        Returns ``(True, 0.0)`` and charges the bucket when admitted;
        ``(False, retry_after)`` when shed, where *retry_after* is the
        time until the queue has drained room for one more request.
        """
        self._drain()
        if self.capacity is not None and self.level >= self.capacity:
            self.shed += 1
            obs_metrics.inc("admission.shed")
            retry_after = (self.level - self.capacity + 1.0) / self.drain_rate
            return False, retry_after
        self.level += 1.0
        self.admitted += 1
        obs_metrics.inc("admission.admitted")
        return True, 0.0

    @property
    def saturation(self) -> float:
        """Current queue level as a fraction of capacity (0 when unbounded)."""
        self._drain()
        if self.capacity is None:
            return 0.0
        return self.level / self.capacity

    def snapshot(self) -> dict:
        self._drain()
        return {
            "level": round(self.level, 3),
            "capacity": self.capacity,
            "drain_rate": self.drain_rate,
            "admitted": self.admitted,
            "shed": self.shed,
        }

    def __repr__(self) -> str:
        return (
            f"<AdmissionController level={self.level:.1f}/{self.capacity} "
            f"admitted={self.admitted} shed={self.shed}>"
        )
