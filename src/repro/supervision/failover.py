"""Client-side failover: one logical call across many endpoints.

The :class:`FailoverExecutor` sits above the per-endpoint reliability
machinery (:mod:`repro.reliability` retries *within* an endpoint) and
makes a multi-EPR :class:`ServiceHandle` behave like one highly
available service: endpoints are ranked by the
:class:`~repro.supervision.health.HealthMonitor`, attempts walk the
ranking, and retryable faults — timeouts, unreachable nodes, open
breakers, ``Server.Busy`` sheds — trigger failover to the next
endpoint, including *cross-binding* failover from an ``http://`` EPR
to a ``p2ps://`` pipe and back.  This is the paper's §III promise
("the application does not have to care where or how the service has
been located") extended to *whether the first place answers*.

Every attempt of one logical call carries the same ``wsa:MessageID``,
so provider-side dedup windows keep execution at-most-once even when
the client gives up on one binding mid-flight and the original request
later arrives anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.errors import InvocationError
from repro.core.events import EventSource
from repro.core.handle import ServiceHandle
from repro.observability import metrics as obs_metrics
from repro.observability.tracecontext import (
    activate as trace_activate,
    begin_send as trace_begin_send,
    event_fields as trace_event_fields,
)
from repro.reliability import (
    CircuitOpenError,
    DeadlineExceededError,
    ReliabilityPolicy,
)
from repro.replication.errors import ReplicaLagError, StateDivergedError
from repro.simnet.kernel import SimTimeoutError
from repro.soap.faults import ReplicaLagFault, ServerBusyFault, SoapFault
from repro.supervision.health import HealthMonitor
from repro.transport.base import TransportBusyError
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import new_message_id

#: completion callback: (result, error) — exactly one is non-None,
#: except void results where both may be None.
InvokeCallback = Callable[[Any, Optional[Exception]], None]

#: verdicts from :func:`classify_error`
FINAL = "final"  # application fault: failing over would not help
BUSY = "busy"  # endpoint shed us: back off there, try elsewhere
FAILOVER = "failover"  # endpoint unreachable/slow: try the next one


def classify_error(error: Exception) -> str:
    """Decide whether *error* ends the call or moves it elsewhere.

    Application-level SOAP faults are *final* — the service executed
    and said no; another replica would say the same.  The one
    exception is ``Server.Busy`` — and its transport-level twin, an
    HTTP 503 from a bounded connection queue — which is an explicit
    "try another endpoint" signal.  Everything else — network errors, node-down,
    transport failures, attempt timeouts, exhausted per-endpoint
    retries, open circuit breakers — is failover-eligible.
    """
    if isinstance(error, (ServerBusyFault, TransportBusyError)):
        return BUSY
    if isinstance(error, (ReplicaLagFault, ReplicaLagError)):
        # the replica did not execute — the session's history lives on
        # a more caught-up member, so move the call there (E15)
        return FAILOVER
    if isinstance(error, StateDivergedError):
        # every member is equally suspect; redirecting would silently
        # pick a side of the conflict
        return FINAL
    if isinstance(error, SoapFault):
        return FINAL
    return FAILOVER


@dataclass(frozen=True)
class FailoverConfig:
    """Shape of the failover loop for one executor."""

    #: maximum passes over the ranked endpoint list; the second and
    #: later rounds re-rank, so a node that recovered mid-call gets
    #: retried before the call gives up
    rounds: int = 2
    #: virtual-time pause between rounds (lets busy cooldowns lapse and
    #: restarted peers come back before the next sweep)
    round_backoff: float = 0.5
    #: total wall-budget for the logical call across every endpoint and
    #: round; ``None`` leaves only per-attempt timeouts
    deadline: Optional[float] = 30.0
    #: treat attempt timeouts as failover-eligible (the safe default —
    #: the shared MessageID keeps a late-executing duplicate suppressed)
    failover_on_timeout: bool = True


class FailoverExecutor(EventSource):
    """Invokes through the healthiest endpoint, failing over on error.

    Register one invoker per URI scheme (``http``/``httpg`` usually
    share an :class:`~repro.core.invocation.HttpInvocation`; ``p2ps``
    gets the :class:`~repro.core.invocation.P2psInvocation`), then call
    ``invoke``/``invoke_async`` with a multi-endpoint handle.  Health
    signals feed back automatically: successes, failures and busy
    sheds from real traffic are exactly the passive telemetry the
    monitor scores.
    """

    def __init__(
        self,
        kernel,
        health: Optional[HealthMonitor] = None,
        parent: Optional[EventSource] = None,
        config: Optional[FailoverConfig] = None,
    ):
        super().__init__("failover", parent)
        self._kernel_ref = kernel
        self.health = health if health is not None else HealthMonitor(
            clock=lambda: kernel.now
        )
        self.config = config if config is not None else FailoverConfig()
        self._invokers: dict[str, Any] = {}
        self.failovers = 0  # endpoint switches across all calls
        #: replication directory (E15); see :meth:`attach_replication`
        self._replication = None
        self.handoffs = 0  # stateful-session redirects to a replica

    def _now(self) -> float:
        return self._kernel_ref.now

    # -- wiring ------------------------------------------------------------
    def register_invoker(self, scheme: str, invocation) -> None:
        """Route *scheme* endpoints through *invocation* (any object
        with the ``invoke_async(handle, operation, args, callback,
        timeout, policy=, endpoint=, message_id=)`` contract)."""
        self._invokers[scheme.lower()] = invocation

    def attach_replication(self, directory) -> None:
        """Consult *directory* when planning (replica-aware failover).

        *directory* is any object with ``caught_up(address) ->
        Optional[int]`` — typically a
        :class:`~repro.replication.group.ReplicationGroup`.  Among
        endpoints of equal health standing, planning then prefers the
        member holding the most applied state, so a redirected stateful
        session lands where its history already lives.
        """
        self._replication = directory

    @property
    def schemes(self) -> list[str]:
        return sorted(self._invokers)

    # -- endpoint planning -------------------------------------------------
    @staticmethod
    def _scheme_of(endpoint: EndpointReference) -> str:
        scheme, _, _ = endpoint.address.partition("://")
        return scheme.lower()

    def candidate_endpoints(
        self, handle: ServiceHandle, operation: str
    ) -> list[EndpointReference]:
        """Every EPR of *handle* this executor can actually invoke:
        request/response endpoints for any registered transport scheme,
        plus p2ps pipe endpoints whose pipe serves *operation*."""
        candidates: list[EndpointReference] = []
        for endpoint in handle.endpoints:
            scheme = self._scheme_of(endpoint)
            if scheme not in self._invokers:
                continue
            if scheme == "p2ps" and endpoint.property_text("PipeName") != operation:
                continue
            candidates.append(endpoint)
        return candidates

    def _plan_queue(
        self, candidates: list[EndpointReference]
    ) -> list[EndpointReference]:
        """Health-ranked order, refined by replication caught-up scores.

        The stable sort preserves the health ranking among endpoints of
        the same liveness class; within a class, members holding more
        applied state come first and non-member endpoints keep their
        health-ranked position (score ``-1`` sorts after any member).
        """
        queue = self.health.rank(candidates)
        if self._replication is None:
            return queue
        scores = {
            e.address: self._replication.caught_up(e.address) for e in queue
        }
        if not any(score is not None for score in scores.values()):
            return queue
        queue.sort(
            key=lambda e: (
                self.health.is_dead(e.address),
                -(scores[e.address] if scores[e.address] is not None else -1),
            )
        )
        return queue

    def plan(self, handle: ServiceHandle, operation: str) -> list[EndpointReference]:
        """The ranked attempt order the next call would use."""
        return self._plan_queue(self.candidate_endpoints(handle, operation))

    # -- invocation --------------------------------------------------------
    def invoke_async(
        self,
        handle: ServiceHandle,
        operation: str,
        args: dict[str, Any],
        callback: InvokeCallback,
        timeout: Optional[float] = None,
        policy: Optional[ReliabilityPolicy] = None,
    ) -> None:
        candidates = self.candidate_endpoints(handle, operation)
        if not candidates:
            callback(
                None,
                InvocationError(
                    f"service {handle.name!r} has no endpoint this executor "
                    f"can reach (schemes {self.schemes})"
                ),
            )
            return

        # One MessageID for the whole logical call: every endpoint and
        # every round retransmits the same identity, so provider dedup
        # keeps execution at-most-once across failover.
        message_id = new_message_id()
        # One trace span for the whole logical call, captured *now* while
        # the caller's ambient context (if any) is still active: attempts
        # run from async completion callbacks, so each re-activates this
        # context and mints a sibling attempt span under it — one trace
        # across every endpoint and round, exactly like the MessageID.
        call_trace = trace_begin_send()
        trace_fields = trace_event_fields(call_trace)
        started = self._now()
        state = {
            "round": 0,
            "queue": self._plan_queue(candidates),
            "attempted": 0,
            "last_endpoint": None,
            "last_error": None,
            "done": False,
        }

        def finish(result: Any, error: Optional[Exception]) -> None:
            if state["done"]:
                return
            state["done"] = True
            if error is not None:
                obs_metrics.inc("failover.exhausted")
                self.fire_client(
                    "failover-exhausted",
                    service=handle.name,
                    operation=operation,
                    attempts=state["attempted"],
                    rounds=state["round"] + 1,
                    message_id=message_id,
                    reason=str(error),
                    **trace_fields,
                )
            callback(result, error)

        def budget_left() -> Optional[float]:
            if self.config.deadline is None:
                return None
            return self.config.deadline - (self._now() - started)

        def next_endpoint() -> None:
            if state["done"]:
                return
            remaining = budget_left()
            if remaining is not None and remaining <= 0:
                finish(
                    None,
                    state["last_error"]
                    or DeadlineExceededError(
                        f"failover deadline of {self.config.deadline}s "
                        f"exhausted for {operation!r}"
                    ),
                )
                return
            if not state["queue"]:
                state["round"] += 1
                if state["round"] >= self.config.rounds:
                    finish(
                        None,
                        state["last_error"]
                        or InvocationError(
                            f"all endpoints failed for {operation!r} after "
                            f"{state['attempted']} attempt(s)"
                        ),
                    )
                    return
                # next round: re-rank what we know now, after a breather
                def start_round() -> None:
                    state["queue"] = self._plan_queue(candidates)
                    next_endpoint()

                if self.config.round_backoff > 0:
                    self._kernel_ref.schedule(self.config.round_backoff, start_round)
                else:
                    start_round()
                return
            endpoint = state["queue"].pop(0)
            attempt(endpoint, remaining)

        def attempt(endpoint: EndpointReference, remaining: Optional[float]) -> None:
            scheme = self._scheme_of(endpoint)
            invoker = self._invokers[scheme]
            previous = state["last_endpoint"]
            if previous is not None and previous != endpoint.address:
                self.failovers += 1
                obs_metrics.inc("failover.hops")
                self.fire_client(
                    "failover",
                    service=handle.name,
                    operation=operation,
                    from_endpoint=previous,
                    to_endpoint=endpoint.address,
                    message_id=message_id,
                    reason=str(state["last_error"]),
                    **trace_fields,
                )
                caught_up = (
                    self._replication.caught_up(endpoint.address)
                    if self._replication is not None
                    else None
                )
                if caught_up is not None:
                    # a stateful session is moving to a replication
                    # member: annotate the span tree and count the
                    # handoff (the same MessageID keeps it at-most-once)
                    self.handoffs += 1
                    obs_metrics.inc("replication.handoffs")
                    self.fire_client(
                        "session-handoff",
                        service=handle.name,
                        operation=operation,
                        from_endpoint=previous,
                        to_endpoint=endpoint.address,
                        message_id=message_id,
                        caught_up=caught_up,
                        **trace_fields,
                    )
            state["last_endpoint"] = endpoint.address
            state["attempted"] += 1
            attempt_timeout = timeout
            if remaining is not None:
                attempt_timeout = (
                    remaining
                    if attempt_timeout is None
                    else min(attempt_timeout, remaining)
                )
            sent_at = self._now()

            def on_done(result: Any, error: Optional[Exception]) -> None:
                if state["done"]:
                    return
                if error is None:
                    self.health.record_success(
                        endpoint.address, latency=self._now() - sent_at
                    )
                    finish(result, None)
                    return
                state["last_error"] = error
                verdict = classify_error(error)
                if verdict == FAILOVER and not self.config.failover_on_timeout:
                    if isinstance(error, (SimTimeoutError, DeadlineExceededError)):
                        verdict = FINAL
                if verdict == FINAL:
                    finish(None, error)
                    return
                if verdict == BUSY:
                    self.health.record_busy(
                        endpoint.address, retry_after=error.retry_after
                    )
                elif isinstance(error, (ReplicaLagFault, ReplicaLagError)):
                    # the member answered — it is alive, just behind;
                    # treat like a shed, not a failure, so its health
                    # score survives the redirect
                    self.health.record_busy(
                        endpoint.address,
                        retry_after=getattr(error, "retry_after", 0.0),
                    )
                elif isinstance(error, CircuitOpenError):
                    # the breaker already holds the failure history; do
                    # not double-count a shed local decision as a fresh
                    # remote failure
                    pass
                else:
                    self.health.record_failure(endpoint.address)
                next_endpoint()

            try:
                with trace_activate(call_trace):
                    invoker.invoke_async(
                        handle,
                        operation,
                        args,
                        on_done,
                        attempt_timeout,
                        policy=policy,
                        endpoint=endpoint,
                        message_id=message_id,
                    )
            except Exception as exc:  # noqa: BLE001 - invoker boundary
                on_done(None, exc)

        next_endpoint()

    def invoke(
        self,
        handle: ServiceHandle,
        operation: str,
        args: Optional[dict[str, Any]] = None,
        timeout: Optional[float] = 5.0,
        policy: Optional[ReliabilityPolicy] = None,
        **kwargs: Any,
    ) -> Any:
        """Synchronous failover invocation: pump virtual time until done."""
        all_args = dict(args or {})
        all_args.update(kwargs)
        box: dict[str, Any] = {}

        def callback(result: Any, error: Optional[Exception]) -> None:
            box["result"] = result
            box["error"] = error

        self.invoke_async(handle, operation, all_args, callback, timeout, policy=policy)
        try:
            self._kernel_ref.pump_until(lambda: "result" in box or "error" in box)
        except SimTimeoutError as exc:
            raise InvocationError(
                f"failover invocation of {operation!r} never completed"
            ) from exc
        if box.get("error") is not None:
            raise box["error"]
        return box.get("result")
