"""Pluggable transports over the simulated network.

The paper treats transports as "incidental to the environment the Web
service is deployed into".  This package makes that concrete: a
:class:`Transport` SPI with three implementations —

``http``
    Request/response with held-open connections (the standard binding's
    default), full message model with status codes and headers.
``httpg``
    The Globus authenticated-HTTP analogue: same message model behind a
    credential handshake validated against a certificate authority.
``datagram``
    Fire-and-forget one-way frames; the raw material P2PS pipes are
    built from.

A :class:`TransportRegistry` maps URI schemes to transports so an
:class:`~repro.core.invocation.Invocation` can pick its wire by looking
at the endpoint address alone.
"""

from repro.transport.uri import Uri, UriError
from repro.transport.base import (
    Transport,
    TransportBusyError,
    TransportError,
    TransportRegistry,
    TransportTimeoutError,
)
from repro.transport.http import (
    HeaderMap,
    HttpClient,
    HttpRequest,
    HttpResponse,
    HttpServer,
    HttpTransport,
)
from repro.transport.httpg import CertificateAuthority, Credential, HttpgTransport
from repro.transport.connection import (
    ConnectionClosedError,
    ConnectionPool,
    HttpConnection,
    PoolConfig,
)
from repro.transport.datagram import DatagramTransport

__all__ = [
    "Uri",
    "UriError",
    "Transport",
    "TransportBusyError",
    "TransportError",
    "TransportTimeoutError",
    "TransportRegistry",
    "HeaderMap",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "HttpClient",
    "HttpTransport",
    "CertificateAuthority",
    "Credential",
    "HttpgTransport",
    "ConnectionClosedError",
    "ConnectionPool",
    "HttpConnection",
    "PoolConfig",
    "DatagramTransport",
]
