"""Connection-oriented HTTP: persistent connections, pooling, pipelining.

The paper faults HTTP for "maintaining an open connection for return
messages" (§III) — but at scale the opposite failure dominates: a
client that opens a throwaway connection per request pays full setup
on every call, and the server has no per-caller unit to bound.  E11
models both remedies of real HTTP/1.1 deployments:

* :class:`HttpConnection` — an explicit client-side connection with a
  lifecycle (``connecting → active → idle → closed``), established by a
  CONNECT/ACCEPT frame handshake.  Once open, requests ride the same
  server-side port with monotonically increasing sequence numbers, so
  a request costs two frame hops instead of four.
* optional *pipelining* — several requests in flight on one connection;
  both ends keep reorder buffers keyed on the sequence number, so
  responses are always delivered back to callers in request order even
  when the simulated wire reorders frames (size-dependent latency).
* :class:`ConnectionPool` — a bounded per-client pool with LRU reuse,
  idle-timeout and max-requests-per-connection recycling, and
  health-aware eviction: wire it to a
  :class:`~repro.supervision.health.HealthMonitor` and a ``dead``
  verdict closes every pooled connection to that endpoint.
* :class:`ServerConnection` — the provider half: a per-connection port
  plus a bounded request queue modelled by the existing
  :class:`~repro.supervision.admission.AdmissionController` leaky
  bucket.  Overflow is answered with ``503`` + ``Retry-After`` before
  any dispatch work happens, which the transport surfaces as
  :class:`~repro.transport.base.TransportBusyError` so failover backs
  off exactly as it does for SOAP ``Server.Busy``.

Every connection frame carries a ``conn`` meta key, which the simnet
trace log copies into its ``sent``/``delivered``/``lost`` records —
whole connections can be replayed from a trace.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.observability import metrics as obs_metrics
from repro.simnet.network import Frame, NetworkError, Node, NodeDownError
from repro.transport.base import TransportError, TransportTimeoutError
from repro.transport.http import (
    DEFAULT_HTTP_PORT,
    BodyStream,
    HttpRequest,
    HttpResponse,
    HttpServer,
    _decoded_body,
    parse_head_block,
)

# connection lifecycle states
CONNECTING = "connecting"
ACTIVE = "active"
IDLE = "idle"
CLOSED = "closed"


class ConnectionClosedError(TransportError):
    """The connection closed (or aborted) before the request completed."""


@dataclass(frozen=True)
class PoolConfig:
    """Shape of a client's connection pool.

    ``pipeline=False`` keeps at most one request in flight per
    connection (later requests queue locally), which is HTTP/1.1
    without pipelining.  ``max_requests_per_connection=1`` degenerates
    to a fresh connection per request — the baseline E11 benchmarks
    against.
    """

    #: total connections the pool keeps open (LRU-evicts idle ones)
    max_connections: int = 8
    #: close a connection this long after its last response (None: never)
    idle_timeout: Optional[float] = 10.0
    #: recycle a connection after this many requests (None: unlimited)
    max_requests_per_connection: Optional[int] = None
    #: allow several in-flight requests per connection
    pipeline: bool = True
    #: abort if the CONNECT/ACCEPT handshake takes longer than this
    connect_timeout: Optional[float] = 5.0
    #: E16: send messages whose wire form exceeds this many bytes as a
    #: sequence of chunk frames instead of one giant frame (None
    #: disables request chunking; BodyStream bodies always stream)
    chunk_threshold: Optional[int] = None
    #: byte size of each chunk frame on the streamed path
    chunk_size: int = 64 * 1024
    #: flow-control window: chunks in flight before awaiting credit
    stream_window: int = 8


ResponseHandler = Callable[[Optional[HttpResponse], Optional[Exception]], None]


# ----------------------------------------------------------------------
# E16 chunked transfer framing.
#
# A message bigger than ``chunk_threshold`` (or one whose body is a
# BodyStream) rides the connection as ``kind="chunk"`` frames — each
# carrying ``seq`` (which exchange), ``idx`` (position), ``last`` — and
# the receiver grants ``kind="credit"`` frames back as it consumes
# them.  The credit window bounds bytes in flight to
# ``stream_window * chunk_size`` no matter how large the payload is,
# and streamed exchanges are exempted from strict in-order delivery so
# a 64 MB envelope never head-of-line blocks pipelined small calls.
# ----------------------------------------------------------------------


def _rechunk(chunks, size: int):
    """Re-buffer an iterable of byte chunks into chunks of exactly
    *size* bytes (the final one may be short) without copying more than
    one chunk's worth at a time — slicing happens on memoryviews."""
    pending = bytearray()
    for chunk in chunks:
        mv = memoryview(chunk)
        if pending:
            take = min(size - len(pending), len(mv))
            pending += mv[:take]
            mv = mv[take:]
            if len(pending) == size:
                yield bytes(pending)
                pending = bytearray()
        while len(mv) >= size:
            yield bytes(mv[:size])
            mv = mv[size:]
        if len(mv):
            pending += mv
    if pending:
        yield bytes(pending)


class _StreamSender:
    """Pushes one message's wire bytes as credit-windowed chunk frames."""

    def __init__(
        self,
        node: Node,
        target: str,
        port: str,
        meta: dict,
        chunks,
        chunk_size: int,
        window: int,
        on_error: Optional[Callable[[Exception], None]] = None,
    ):
        self.node = node
        self.target = target
        self.port = port
        self.meta = meta
        self._iter = _rechunk(chunks, chunk_size)
        self.window = max(1, window)
        self._next_idx = 0
        self._acked = -1
        self._lookahead: Optional[bytes] = None
        self._primed = False
        self.finished = False
        self.on_error = on_error
        obs_metrics.inc("transport.http.streams_started")

    def start(self) -> None:
        self._pump()

    def on_credit(self, idx) -> None:
        if isinstance(idx, int) and idx > self._acked:
            self._acked = idx
        self._pump()

    def _take(self) -> tuple[Optional[bytes], bool]:
        if not self._primed:
            self._lookahead = next(self._iter, None)
            self._primed = True
        chunk = self._lookahead
        if chunk is None:
            return None, True
        self._lookahead = next(self._iter, None)
        return chunk, self._lookahead is None

    def _pump(self) -> None:
        while not self.finished and (self._next_idx - self._acked) <= self.window:
            chunk, last = self._take()
            if chunk is None:
                self.finished = True
                break
            try:
                self.node.send(
                    self.target,
                    self.port,
                    chunk,
                    kind="chunk",
                    idx=self._next_idx,
                    last=last,
                    **self.meta,
                )
            except (NetworkError, NodeDownError) as exc:
                self.finished = True
                if self.on_error is not None:
                    self.on_error(exc)
                return
            obs_metrics.inc("transport.http.chunks_sent")
            obs_metrics.inc("transport.http.bytes_streamed", len(chunk))
            self._next_idx += 1
            if last:
                self.finished = True
                obs_metrics.inc("transport.http.streams_completed")


class _StreamReceiver:
    """Reassembles chunk frames for one exchange, feeding a byte sink
    in index order and granting flow-control credits as it consumes.
    Out-of-order chunks are held, but never more than one window's
    worth — the sender cannot outrun its credits."""

    def __init__(self, sink: Callable[[bytes], None], send_credit: Callable[[int], None]):
        self._sink = sink
        self._send_credit = send_credit
        self._next_idx = 0
        self._held: dict[int, bytes] = {}
        self._last_idx: Optional[int] = None
        self.received_bytes = 0
        self.complete = False

    def feed(self, idx, last: bool, payload) -> None:
        if self.complete or not isinstance(idx, int):
            return
        if idx >= self._next_idx and idx not in self._held:
            data = bytes(payload) if not isinstance(payload, bytes) else payload
            self._held[idx] = data
            if last:
                self._last_idx = idx
        while self._next_idx in self._held:
            data = self._held.pop(self._next_idx)
            obs_metrics.inc("transport.http.chunks_received")
            self.received_bytes += len(data)
            self._sink(data)
            self._next_idx += 1
        self._send_credit(self._next_idx - 1)
        if self._last_idx is not None and self._next_idx > self._last_idx:
            self.complete = True


class _WireAssembler:
    """Incremental splitter for a streamed HTTP wire: accumulates the
    head until the ``\\r\\n\\r\\n`` terminator, then routes body bytes
    either into a caller-provided sink (O(chunk) memory) or an
    in-memory buffer.  *sink_for* is called once with the raw head
    bytes and may return None to keep buffering."""

    def __init__(self, sink_for: Optional[Callable[[bytes], object]] = None):
        self._sink_for = sink_for
        self._buf = bytearray()
        self.head: Optional[bytes] = None
        self.sink = None
        self.body_len = 0

    def write(self, data: bytes) -> None:
        if self.head is None:
            self._buf += data
            pos = self._buf.find(b"\r\n\r\n")
            if pos < 0:
                return
            self.head = bytes(self._buf[:pos])
            rest = bytes(self._buf[pos + 4:])
            self._buf = bytearray()
            if self._sink_for is not None:
                self.sink = self._sink_for(self.head)
            if rest:
                self.write(rest)
            return
        self.body_len += len(data)
        if self.sink is not None:
            self.sink.write(data)
        else:
            self._buf += data

    def finish_message(self, from_parts, decode_body) -> object:
        """Assemble the completed message.  *from_parts* is the message
        class's ``_from_parts``; *decode_body* maps raw buffered bytes
        to the body representation (skipped for sink bodies — the sink
        owns the representation)."""
        if self.head is None:
            raise TransportError("streamed message ended before header terminator")
        start, headers, declared = parse_head_block(self.head)
        if declared is not None and declared != self.body_len:
            raise TransportError(
                f"Content-Length mismatch on streamed message: "
                f"declared {declared}, got {self.body_len} bytes"
            )
        if self.sink is not None:
            return from_parts(start, headers, self.sink.close())
        return from_parts(start, headers, decode_body(bytes(self._buf), headers))


class _BufferSink:
    """The default body sink: accumulate to one bytes object."""

    __slots__ = ("_buf",)

    def __init__(self):
        self._buf = bytearray()

    def write(self, data: bytes) -> None:
        self._buf += data

    def close(self) -> bytes:
        return bytes(self._buf)


class HttpConnection:
    """One persistent client→server HTTP connection.

    Opened eagerly in the constructor: the CONNECT frame leaves
    immediately and requests issued while the handshake is in flight
    queue locally, then flush on ACCEPT.  All responses are delivered
    to callers in request order regardless of frame arrival order.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        node: Node,
        target_node: str,
        port: int = DEFAULT_HTTP_PORT,
        config: Optional[PoolConfig] = None,
        on_closed: Optional[Callable[["HttpConnection"], None]] = None,
    ):
        self.node = node
        self.kernel = node.network.kernel
        self.target_node = target_node
        self.port = port
        self.config = config if config is not None else PoolConfig()
        self.id = f"{node.id}:c{next(HttpConnection._ids)}"
        self.local_port = f"http-conn:{self.id}"
        self.state = CONNECTING
        self.opened_at = self.kernel.now
        self.last_used = self.kernel.now
        self.requests_sent = 0
        #: response frames that arrived ahead of an earlier sequence
        self.out_of_order = 0
        self._on_closed = on_closed
        self._srv_port: Optional[str] = None
        #: seq -> in-flight entry, insertion (= request) order
        self._pending: "OrderedDict[int, dict]" = OrderedDict()
        self._backlog: "deque[dict]" = deque()
        self._reorder: dict[int, HttpResponse] = {}
        #: seqs exempt from in-order delivery (E16 streamed exchanges) —
        #: they deliver on completion and never gate ordered peers
        self._unordered: set[int] = set()
        #: seq -> _WireAssembler+_StreamReceiver for chunked responses
        self._rsp_streams: dict[int, tuple] = {}
        self._next_seq = 0
        self._next_delivery = 0
        self._unanswered = 0
        self._idle_event = None
        self._connect_event = None
        self._close_error: Optional[Exception] = None

        obs_metrics.inc("transport.http.conn_opened")
        self.node.open_port(self.local_port, self._on_frame)
        try:
            self.node.send(
                target_node,
                f"http:{port}",
                "",
                kind="connect",
                conn=self.id,
                reply_port=self.local_port,
            )
        except (NetworkError, NodeDownError) as exc:
            self._teardown(exc)
            return
        if self.config.connect_timeout is not None:
            self._connect_event = self.kernel.schedule(
                self.config.connect_timeout, self._on_connect_timeout
            )

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._pending)

    @property
    def exhausted(self) -> bool:
        limit = self.config.max_requests_per_connection
        return limit is not None and self.requests_sent >= limit

    @property
    def reusable(self) -> bool:
        """Can this connection carry another request?"""
        return self.state != CLOSED and not self.exhausted

    # ------------------------------------------------------------------
    def send(
        self,
        request: HttpRequest,
        callback: ResponseHandler,
        timeout: Optional[float] = None,
        response_sink: Optional[Callable[[], object]] = None,
    ) -> None:
        """Issue *request*; *callback* fires (in request order) with the
        response or error.  A timeout poisons the whole connection —
        later responses on it can no longer be matched trustworthily.

        *response_sink* (optional) is a zero-arg factory of a body sink
        (``write(bytes)`` / ``close() -> body``): if the server streams
        the response as chunk frames, its body bytes flow through the
        sink instead of being buffered, and the delivered response's
        ``body`` is whatever ``close()`` returned.  Streamed exchanges
        are delivered on completion, outside the strict request order.
        """
        if self.state == CLOSED:
            callback(
                None,
                self._close_error
                if self._close_error is not None
                else ConnectionClosedError(f"connection {self.id} is closed"),
            )
            return
        entry: dict[str, Any] = {
            "seq": self._next_seq,
            "request": request,
            "callback": callback,
            "timeout": timeout,
            "timer": None,
            "done": False,
            "response_sink": response_sink,
            "up_sender": None,
        }
        self._next_seq += 1
        self.requests_sent += 1
        self._pending[entry["seq"]] = entry
        if timeout is not None:
            entry["timer"] = self.kernel.schedule(
                timeout, self._on_request_timeout, entry
            )
        self._touch()
        if self.state == CONNECTING:
            self._backlog.append(entry)
        elif self.config.pipeline or self._unanswered == 0:
            self._transmit(entry)
        else:
            self._backlog.append(entry)

    def close(self) -> None:
        """Close the connection; pending requests (if any) fail with
        :class:`ConnectionClosedError`."""
        self._teardown(None)

    # ------------------------------------------------------------------
    def _touch(self) -> None:
        self.last_used = self.kernel.now
        if self._idle_event is not None:
            self._idle_event.cancel()
            self._idle_event = None
        if self.state == IDLE:
            self.state = ACTIVE

    def _transmit(self, entry: dict) -> None:
        self._unanswered += 1
        self.state = ACTIVE
        request = entry["request"]
        threshold = self.config.chunk_threshold
        streamed = isinstance(request.body, BodyStream) or (
            threshold is not None and request.wire_length() > threshold
        )
        if streamed:
            # streamed exchanges opt out of strict ordering: the server
            # dispatches them on completion, so pipelined small calls
            # behind this one are never head-of-line blocked
            self._unordered.add(entry["seq"])
            sender = _StreamSender(
                self.node,
                self.target_node,
                self._srv_port,
                {"conn": self.id, "seq": entry["seq"]},
                request.iter_wire(),
                self.config.chunk_size,
                self.config.stream_window,
                on_error=self._teardown,
            )
            entry["up_sender"] = sender
            sender.start()
            return
        try:
            self.node.send(
                self.target_node,
                self._srv_port,
                request.to_wire(),
                kind="request",
                conn=self.id,
                seq=entry["seq"],
            )
        except (NetworkError, NodeDownError) as exc:
            self._teardown(exc)

    def _pump_backlog(self) -> None:
        while (
            self._backlog
            and self.state == ACTIVE
            and (self.config.pipeline or self._unanswered == 0)
        ):
            entry = self._backlog.popleft()
            if entry["done"]:
                continue
            self._transmit(entry)

    def _maybe_idle(self) -> None:
        if self.state != ACTIVE or self._pending:
            return
        if self.exhausted:
            self.close()
            return
        self.state = IDLE
        if self.config.idle_timeout is not None:
            self._idle_event = self.kernel.schedule(
                self.config.idle_timeout, self._on_idle_timeout
            )

    # -- frame handling -------------------------------------------------
    def _on_frame(self, frame: Frame) -> None:
        kind = frame.meta.get("kind")
        if kind == "accept":
            self._on_accept(frame)
        elif kind == "response":
            self._on_response(frame)
        elif kind == "chunk":
            self._on_response_chunk(frame)
        elif kind == "credit":
            self._on_credit(frame)
        elif kind == "close":
            self._on_remote_close()

    def _on_accept(self, frame: Frame) -> None:
        if self.state != CONNECTING:
            return
        if self._connect_event is not None:
            self._connect_event.cancel()
            self._connect_event = None
        self._srv_port = frame.meta.get("srv_port")
        self.state = ACTIVE
        self._pump_backlog()
        self._maybe_idle()

    def _on_response(self, frame: Frame) -> None:
        seq = frame.meta.get("seq")
        try:
            response = HttpResponse.from_wire(frame.payload)
        except TransportError as exc:
            self._teardown(exc)
            return
        self._complete(seq, response)

    def _on_response_chunk(self, frame: Frame) -> None:
        """A chunk of a streamed response: feed the per-seq assembler,
        deliver (out of order) when the last chunk lands."""
        seq = frame.meta.get("seq")
        if not isinstance(seq, int) or seq not in self._pending:
            return
        stream = self._rsp_streams.get(seq)
        if stream is None:
            entry = self._pending[seq]
            sink_factory = entry.get("response_sink")
            assembler = _WireAssembler(
                (lambda head: sink_factory()) if sink_factory is not None else None
            )
            receiver = _StreamReceiver(
                assembler.write,
                lambda idx, seq=seq: self._send_credit(seq, idx),
            )
            stream = (assembler, receiver)
            self._rsp_streams[seq] = stream
            # a streaming response exempts this seq from strict order —
            # it completes whenever its last chunk lands
            self._unordered.add(seq)
            self._drain()
        assembler, receiver = stream
        try:
            receiver.feed(frame.meta.get("idx"), frame.meta.get("last", False), frame.payload)
        except TransportError as exc:
            self._teardown(exc)
            return
        if not receiver.complete:
            return
        self._rsp_streams.pop(seq, None)
        try:
            response = assembler.finish_message(HttpResponse._from_parts, _decoded_body)
        except TransportError as exc:
            self._teardown(exc)
            return
        self._complete(seq, response)

    def _on_credit(self, frame: Frame) -> None:
        seq = frame.meta.get("seq")
        entry = self._pending.get(seq) if isinstance(seq, int) else None
        if entry is not None and entry.get("up_sender") is not None:
            entry["up_sender"].on_credit(frame.meta.get("idx"))

    def _send_credit(self, seq: int, idx: int) -> None:
        if self._srv_port is None:
            return
        try:
            self.node.send(
                self.target_node, self._srv_port, b"",
                kind="credit", conn=self.id, seq=seq, idx=idx,
            )
        except (NetworkError, NodeDownError):
            pass  # the request timeout owns this failure mode

    def _complete(self, seq, response: HttpResponse) -> None:
        if not isinstance(seq, int) or seq not in self._pending:
            return  # stale or duplicate frame
        if seq == self._next_delivery:
            self._deliver(seq, response)
            self._drain()
        elif seq in self._unordered or seq < self._next_delivery:
            # streamed exchange: deliver on completion, out of band
            self._deliver_oob(seq, response)
            self._drain()
        else:
            # arrived ahead of an earlier response: hold it so callers
            # still see responses in request order
            self.out_of_order += 1
            obs_metrics.inc("transport.http.ooo_frames")
            self._reorder[seq] = response
            return
        if self.state == CLOSED:
            return  # a callback closed us
        self._pump_backlog()
        self._maybe_idle()

    def _drain(self) -> None:
        """Advance ordered delivery: release held responses in order,
        skipping over seqs that opted out of ordering."""
        while True:
            if self._next_delivery in self._reorder:
                self._deliver(
                    self._next_delivery, self._reorder.pop(self._next_delivery)
                )
            elif self._next_delivery in self._unordered:
                self._unordered.discard(self._next_delivery)
                self._next_delivery += 1
            else:
                break

    def _deliver(self, seq: int, response: HttpResponse) -> None:
        entry = self._pending.pop(seq)
        self._unordered.discard(seq)
        self._next_delivery = seq + 1
        self._unanswered -= 1
        self._finish_entry(entry, response, None)

    def _deliver_oob(self, seq: int, response: HttpResponse) -> None:
        entry = self._pending.pop(seq)
        if seq >= self._next_delivery:
            # leave the seq marked so ordered draining skips over it
            self._unordered.add(seq)
        self._unanswered -= 1
        self._finish_entry(entry, response, None)

    def _on_remote_close(self) -> None:
        self._srv_port = None  # the server is gone; no close echo needed
        error = (
            ConnectionClosedError(f"connection {self.id} closed by server")
            if self._pending
            else None
        )
        self._teardown(error)

    # -- timers ---------------------------------------------------------
    def _on_idle_timeout(self) -> None:
        obs_metrics.inc("transport.http.conn_idle_closed")
        self.close()

    def _on_connect_timeout(self) -> None:
        self._teardown(
            TransportTimeoutError(
                f"connect to {self.target_node}:{self.port} timed out "
                f"after {self.config.connect_timeout}s"
            )
        )

    def _on_request_timeout(self, entry: dict) -> None:
        if entry["done"]:
            return
        request = entry["request"]
        self._finish_entry(
            entry,
            None,
            TransportTimeoutError(
                f"no response from {self.target_node}:{self.port}"
                f"{request.path} within {entry['timeout']}s"
            ),
        )
        self._teardown(
            ConnectionClosedError(
                f"connection {self.id} aborted: request {entry['seq']} timed out"
            )
        )

    # -- teardown -------------------------------------------------------
    def _finish_entry(
        self, entry: dict, response: Optional[HttpResponse], error: Optional[Exception]
    ) -> None:
        if entry["done"]:
            return
        entry["done"] = True
        if entry["timer"] is not None:
            entry["timer"].cancel()
            entry["timer"] = None
        entry["callback"](response, error)

    def _teardown(self, error: Optional[Exception]) -> None:
        if self.state == CLOSED:
            return
        self.state = CLOSED
        self._close_error = (
            error
            if error is not None
            else ConnectionClosedError(f"connection {self.id} is closed")
        )
        for event_attr in ("_idle_event", "_connect_event"):
            event = getattr(self, event_attr)
            if event is not None:
                event.cancel()
                setattr(self, event_attr, None)
        if error is not None:
            obs_metrics.inc("transport.http.conn_aborted")
        pending = list(self._pending.values())
        self._pending.clear()
        self._backlog.clear()
        self._reorder.clear()
        self._unordered.clear()
        self._rsp_streams.clear()
        if self._srv_port is not None:
            try:
                self.node.send(
                    self.target_node, self._srv_port, "", kind="close", conn=self.id
                )
            except (NetworkError, NodeDownError):
                pass
        if self.node.has_port(self.local_port):
            self.node.close_port(self.local_port)
        for entry in pending:
            self._finish_entry(entry, None, self._close_error)
        if self._on_closed is not None:
            self._on_closed(self)

    def __repr__(self) -> str:
        return (
            f"<HttpConnection {self.id} -> {self.target_node}:{self.port} "
            f"{self.state} in_flight={self.in_flight} sent={self.requests_sent}>"
        )


class ConnectionPool:
    """Bounded per-client pool of :class:`HttpConnection`\\ s.

    Keyed by ``(target node, port)``.  ``lease`` reuses an open
    connection when one can take another request, preferring a free one
    (no requests in flight); otherwise it opens a new connection,
    LRU-evicting a free one first when the pool is at
    ``config.max_connections``.
    """

    def __init__(self, node: Node, config: Optional[PoolConfig] = None):
        self.node = node
        self.config = config if config is not None else PoolConfig()
        self._conns: dict[tuple[str, int], list[HttpConnection]] = {}
        self._health = None
        self.opened = 0
        self.reused = 0
        self.evicted = 0
        self.evicted_dead = 0

    # ------------------------------------------------------------------
    def lease(self, target_node: str, port: int) -> HttpConnection:
        """A connection to ``target_node:port``, reused when possible.

        Preference order: a *free* reusable connection (nothing in
        flight); a busy pipelined one; a fresh connection while under
        ``max_connections`` (LRU-evicting a free one elsewhere first);
        and at the bound without pipelining, the least-loaded reusable
        connection — requests then serialise on its local backlog,
        which is HTTP/1.1-without-pipelining semantics.
        """
        key = (target_node, port)
        bucket = self._conns.setdefault(key, [])
        bucket[:] = [c for c in bucket if c.state != CLOSED]
        reusable = [c for c in bucket if c.reusable]
        candidate = next((c for c in reusable if c.in_flight == 0), None)
        if candidate is None and self.config.pipeline and reusable:
            candidate = min(reusable, key=lambda c: c.in_flight)
        if candidate is None and self.size >= self.config.max_connections:
            self._evict_lru_free()
            if self.size >= self.config.max_connections and reusable:
                # nothing evictable and no room: serialise on the
                # least-loaded connection rather than overshoot
                candidate = min(reusable, key=lambda c: c.in_flight)
        if candidate is not None:
            self.reused += 1
            obs_metrics.inc("transport.http.conn_reused")
            return candidate
        conn = HttpConnection(
            self.node, target_node, port, self.config, on_closed=self._forget
        )
        self.opened += 1
        if conn.state != CLOSED:  # opening can fail synchronously
            bucket.append(conn)
        self._update_gauge()
        return conn

    @property
    def size(self) -> int:
        return sum(len(bucket) for bucket in self._conns.values())

    def connections(self) -> list[HttpConnection]:
        return [conn for bucket in self._conns.values() for conn in bucket]

    def close_all(self) -> None:
        for conn in self.connections():
            conn.close()

    def stats(self) -> dict[str, int]:
        return {
            "open": self.size,
            "opened": self.opened,
            "reused": self.reused,
            "evicted": self.evicted,
            "evicted_dead": self.evicted_dead,
        }

    # ------------------------------------------------------------------
    def attach_health(self, monitor) -> None:  # type: ignore[no-untyped-def]
        """Evict pooled connections when *monitor* declares their
        endpoint dead — a new lease then starts from a fresh handshake
        instead of queueing on a corpse."""
        self._health = monitor
        monitor.add_verdict_listener(self._on_verdict)

    def _on_verdict(self, address: str, verdict: str) -> None:
        if verdict != "dead":  # repro.supervision.health.DEAD
            return
        from repro.transport.uri import Uri, UriError

        try:
            uri = Uri.parse(address)
        except UriError:
            return
        if uri.scheme == "http":
            port = uri.port if uri.port is not None else DEFAULT_HTTP_PORT
        elif uri.scheme == "httpg":
            from repro.transport.httpg import DEFAULT_HTTPG_PORT

            port = uri.port if uri.port is not None else DEFAULT_HTTPG_PORT
        else:
            return
        for conn in list(self._conns.get((uri.host, port), ())):
            if conn.state != CLOSED:
                self.evicted_dead += 1
                obs_metrics.inc("transport.http.conn_evicted_dead")
                conn.close()

    # ------------------------------------------------------------------
    def _evict_lru_free(self) -> None:
        free = [c for c in self.connections() if c.state != CLOSED and c.in_flight == 0]
        if not free:
            return  # everything is busy: allow a temporary overshoot
        victim = min(free, key=lambda c: c.last_used)
        self.evicted += 1
        obs_metrics.inc("transport.http.conn_evicted")
        victim.close()

    def _forget(self, conn: HttpConnection) -> None:
        bucket = self._conns.get((conn.target_node, conn.port))
        if bucket is not None and conn in bucket:
            bucket.remove(conn)
        self._update_gauge()

    def _update_gauge(self) -> None:
        obs_metrics.set_gauge("transport.http.pool_size", self.size)

    def __repr__(self) -> str:
        return f"<ConnectionPool open={self.size} opened={self.opened} reused={self.reused}>"


class ServerConnection:
    """The provider half of one persistent connection.

    Owns a dedicated port, restores request order with a reorder buffer
    keyed on the client's sequence numbers, and gates each request
    through a per-connection
    :class:`~repro.supervision.admission.AdmissionController` leaky
    bucket — the bounded request queue.  Overflow answers ``503`` with
    a ``Retry-After`` hint *before* any parse/dispatch work, so a
    saturated connection stays cheap to refuse.
    """

    def __init__(
        self, server: HttpServer, conn_id: str, peer: str, client_port: str
    ):
        self.server = server
        self.node = server.node
        self.kernel = server.node.network.kernel
        self.id = conn_id
        self.peer = peer
        self.client_port = client_port
        self.srv_port = f"http-srv:{server.port}:{conn_id}"
        capacity = server.max_pending_per_connection
        if capacity is not None:
            from repro.supervision.admission import AdmissionController

            self.admission = AdmissionController(
                capacity=capacity,
                drain_rate=server.conn_drain_rate,
                clock=lambda: self.kernel.now,
            )
        else:
            self.admission = None
        self._next_seq = 0
        #: seq -> raw payload, or a ``(None, retry_after)`` marker for a
        #: request the node's worker pool shed before delivery (E13)
        self._held: dict[int, object] = {}
        #: seq -> (assembler, receiver) for in-progress chunked uploads
        self._streams: dict[int, tuple] = {}
        #: seqs handled out-of-band (chunk-streamed) — in-order draining
        #: skips them so they never stall later ordered requests
        self._oob: set[int] = set()
        #: seq -> _StreamSender for chunk-streamed responses
        self._rsp_senders: dict[int, _StreamSender] = {}
        self._idle_event = None
        self.requests_handled = 0
        self.busy_answered = 0
        self.closed = False
        self.node.open_port(self.srv_port, self._on_frame)
        self.node.set_overflow_handler(self.srv_port, self._on_overflow)
        self._arm_idle()

    # ------------------------------------------------------------------
    def _on_frame(self, frame: Frame) -> None:
        kind = frame.meta.get("kind")
        if kind == "close":
            self.close(notify=False)
            return
        if kind == "chunk":
            self._on_chunk(frame)
            self._arm_idle()
            return
        if kind == "credit":
            sender = self._rsp_senders.get(frame.meta.get("seq"))
            if sender is not None:
                sender.on_credit(frame.meta.get("idx"))
                if sender.finished:
                    self._rsp_senders.pop(frame.meta.get("seq"), None)
            return
        if kind != "request":
            return
        seq = frame.meta.get("seq")
        if (
            not isinstance(seq, int)
            or seq < self._next_seq
            or seq in self._held
            or seq in self._oob
        ):
            return  # duplicate or garbage
        self._held[seq] = frame.payload
        self._drain_in_order()
        self._arm_idle()

    def _on_chunk(self, frame: Frame) -> None:
        """One chunk of a streamed request upload.  The seq is handled
        out-of-band: it dispatches when its last chunk lands, and the
        in-order drain skips over it meanwhile."""
        seq = frame.meta.get("seq")
        if not isinstance(seq, int):
            return
        stream = self._streams.get(seq)
        if stream is None:
            if seq < self._next_seq or seq in self._oob:
                return  # duplicate chunk of a finished stream
            assembler = _WireAssembler(self.server._body_sink_for)
            receiver = _StreamReceiver(
                assembler.write,
                lambda idx, seq=seq: self._send_credit(seq, idx),
            )
            stream = (assembler, receiver)
            self._streams[seq] = stream
            self._oob.add(seq)
            self._drain_in_order()  # later ordered requests advance past us
        assembler, receiver = stream
        try:
            receiver.feed(frame.meta.get("idx"), frame.meta.get("last", False), frame.payload)
        except TransportError:
            self.server.bad_requests += 1
            obs_metrics.inc("transport.http.bad_requests")
            self._streams.pop(seq, None)
            self._respond(seq, HttpResponse(400, "malformed chunked request"))
            return
        if not receiver.complete:
            return
        self._streams.pop(seq, None)
        self._dispatch_streamed(seq, assembler)

    def _send_credit(self, seq: int, idx: int) -> None:
        try:
            self.node.send(
                self.peer, self.client_port, b"",
                kind="credit", conn=self.id, seq=seq, idx=idx,
            )
        except (NetworkError, NodeDownError):
            pass  # sender stalls; the client's request timeout owns it

    def _dispatch_streamed(self, seq: int, assembler: _WireAssembler) -> None:
        if self.admission is not None:
            admitted, retry_after = self.admission.try_admit()
            obs_metrics.set_gauge(
                "transport.http.queue_depth", self.admission.level
            )
            if not admitted:
                self.busy_answered += 1
                obs_metrics.inc("transport.http.queue_overflow")
                self._respond(
                    seq,
                    HttpResponse(
                        503,
                        f"connection {self.id}: request queue full",
                        {"Retry-After": f"{retry_after:.6f}"},
                    ),
                )
                return
        self.requests_handled += 1
        try:
            request = assembler.finish_message(HttpRequest._from_parts, _decoded_body)
        except TransportError as exc:
            self.server.bad_requests += 1
            obs_metrics.inc("transport.http.bad_requests")
            self._respond(seq, HttpResponse(400, str(exc)))
            return
        self._respond(seq, self.server._handle(request))

    def _on_overflow(self, frame: Frame, retry_after: float) -> None:
        """The worker pool shed a pipelined request.  It still occupies
        its slot in the sequence — answered 503 in order, so later
        requests on the connection are not stalled waiting for it."""
        if frame.meta.get("kind") != "request":
            return
        seq = frame.meta.get("seq")
        if not isinstance(seq, int) or seq < self._next_seq or seq in self._held:
            return
        self._held[seq] = (None, retry_after)
        self._drain_in_order()
        self._arm_idle()

    def _drain_in_order(self) -> None:
        while True:
            if self._next_seq in self._oob:
                # chunk-streamed seq: dispatched out-of-band on its own
                # completion; ordered requests behind it keep flowing
                self._oob.discard(self._next_seq)
                self._next_seq += 1
                continue
            if self._next_seq not in self._held:
                break
            seq_now = self._next_seq
            self._next_seq += 1
            entry = self._held.pop(seq_now)
            if isinstance(entry, tuple):  # shed by the worker pool
                self.busy_answered += 1
                obs_metrics.inc("transport.http.worker_overflow")
                self._respond(
                    seq_now,
                    HttpResponse(
                        503,
                        f"connection {self.id}: worker pool saturated",
                        {"Retry-After": f"{entry[1]:.6f}"},
                    ),
                )
            else:
                self._process(seq_now, entry)

    def _process(self, seq: int, payload) -> None:
        if self.admission is not None:
            admitted, retry_after = self.admission.try_admit()
            obs_metrics.set_gauge(
                "transport.http.queue_depth", self.admission.level
            )
            if not admitted:
                self.busy_answered += 1
                obs_metrics.inc("transport.http.queue_overflow")
                self._respond(
                    seq,
                    HttpResponse(
                        503,
                        f"connection {self.id}: request queue full",
                        {"Retry-After": f"{retry_after:.6f}"},
                    ),
                )
                return
        self.requests_handled += 1
        self._respond(seq, self.server._response_for(payload))

    def _respond(self, seq: int, response: HttpResponse) -> None:
        threshold = self.server.chunk_threshold
        if isinstance(response.body, BodyStream) or (
            threshold is not None and response.wire_length() > threshold
        ):
            sender = _StreamSender(
                self.node,
                self.peer,
                self.client_port,
                {"conn": self.id, "seq": seq},
                response.iter_wire(),
                self.server.chunk_size,
                self.server.stream_window,
                on_error=self._on_stream_error,
            )
            self._rsp_senders[seq] = sender
            sender.start()
            if sender.finished:
                self._rsp_senders.pop(seq, None)
            return
        try:
            self.node.send(
                self.peer,
                self.client_port,
                response.to_wire(),
                kind="response",
                conn=self.id,
                seq=seq,
            )
        except (NetworkError, NodeDownError):
            self.server.dropped_replies += 1
            obs_metrics.inc("transport.http.dropped_replies")

    def _on_stream_error(self, exc: Exception) -> None:
        self.server.dropped_replies += 1
        obs_metrics.inc("transport.http.dropped_replies")

    # ------------------------------------------------------------------
    def _arm_idle(self) -> None:
        if self._idle_event is not None:
            self._idle_event.cancel()
            self._idle_event = None
        if self.server.conn_idle_timeout is not None:
            self._idle_event = self.kernel.schedule(
                self.server.conn_idle_timeout, self._on_idle
            )

    def _on_idle(self) -> None:
        self.close(notify=True)

    def close(self, notify: bool = True) -> None:
        if self.closed:
            return
        self.closed = True
        self._streams.clear()
        self._rsp_senders.clear()
        if self._idle_event is not None:
            self._idle_event.cancel()
            self._idle_event = None
        if self.node.has_port(self.srv_port):
            self.node.close_port(self.srv_port)
        self.node.set_overflow_handler(self.srv_port, None)
        if notify and self.node.up:
            try:
                self.node.send(
                    self.peer, self.client_port, "", kind="close", conn=self.id
                )
            except (NetworkError, NodeDownError):
                pass
        self.server._forget_connection(self)

    def __repr__(self) -> str:
        return (
            f"<ServerConnection {self.id} peer={self.peer} "
            f"handled={self.requests_handled} busy={self.busy_answered}>"
        )
