"""HTTPG — the authenticated transport.

The paper's standard implementation supports "HTTPG (the transport used
by Globus for authenticated communication)".  Globus HTTPG wraps HTTP
in GSI mutual authentication; we reproduce the *protocol-visible*
behaviour: both ends hold credentials issued by a common
:class:`CertificateAuthority`, every request carries the caller's
credential token, and the listener verifies it (and, for mutual auth,
answers with its own).  Requests with missing/forged/expired
credentials are refused with 401 before any handler runs.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Optional

from repro.simnet.network import Node
from repro.transport.base import (
    ResponseCallback,
    ServerHandler,
    Transport,
    TransportBusyError,
    TransportError,
)
from repro.transport.http import HttpClient, HttpRequest, HttpResponse, HttpServer
from repro.transport.uri import Uri

DEFAULT_HTTPG_PORT = 8443


class AuthenticationError(TransportError):
    """Credential missing, unknown, forged or expired."""


@dataclass(frozen=True)
class Credential:
    """An identity signed by a CA.

    ``token`` is the CA's signature over (subject, serial, expiry); the
    verifier recomputes it, so tampering with any field invalidates the
    credential — a faithful miniature of certificate signatures.
    """

    subject: str
    serial: int
    expires_at: float
    token: str

    def header_value(self) -> str:
        return f"{self.subject};{self.serial};{self.expires_at};{self.token}"

    @classmethod
    def from_header_value(cls, text: str) -> "Credential":
        parts = text.split(";")
        if len(parts) != 4:
            raise AuthenticationError("malformed credential header")
        try:
            return cls(parts[0], int(parts[1]), float(parts[2]), parts[3])
        except ValueError:
            raise AuthenticationError("malformed credential fields") from None


class CertificateAuthority:
    """Issues and verifies credentials with an HMAC-like keyed digest."""

    def __init__(self, name: str = "repro-ca", secret: str = "ca-secret"):
        self.name = name
        self._secret = secret
        self._serials = itertools.count(1)
        self._revoked: set[int] = set()

    def _sign(self, subject: str, serial: int, expires_at: float) -> str:
        material = f"{self._secret}|{subject}|{serial}|{expires_at}"
        return hashlib.sha256(material.encode()).hexdigest()[:32]

    def issue(self, subject: str, expires_at: float = float("inf")) -> Credential:
        serial = next(self._serials)
        return Credential(subject, serial, expires_at, self._sign(subject, serial, expires_at))

    def revoke(self, credential: Credential) -> None:
        self._revoked.add(credential.serial)

    def verify(self, credential: Credential, now: float) -> None:
        """Raise :class:`AuthenticationError` unless valid at time *now*."""
        if credential.serial in self._revoked:
            raise AuthenticationError(f"credential {credential.serial} revoked")
        if credential.expires_at < now:
            raise AuthenticationError(f"credential for {credential.subject} expired")
        expected = self._sign(credential.subject, credential.serial, credential.expires_at)
        if expected != credential.token:
            raise AuthenticationError("credential signature mismatch")


class HttpgTransport(Transport):
    """Authenticated request/response transport (Globus HTTPG analogue)."""

    scheme = "httpg"

    CRED_HEADER = "X-Globus-Credential"
    PEER_CRED_HEADER = "X-Globus-Peer-Credential"

    def __init__(
        self,
        node: Node,
        ca: CertificateAuthority,
        credential: Credential,
        default_timeout: Optional[float] = 30.0,
        mutual: bool = True,
        pool=None,
    ):
        self.node = node
        self.ca = ca
        self.credential = credential
        self.mutual = mutual
        self.client = HttpClient(node, default_timeout, pool=pool)
        self._servers: dict[int, HttpServer] = {}
        self.auth_failures = 0

    @property
    def pool(self):
        return self.client.pool

    def enable_pooling(self, config=None):
        """Persistent pooled connections (E11); the credential handshake
        rides each request unchanged, so pooling composes with auth."""
        return self.client.enable_pooling(config)

    def send(
        self,
        endpoint: Uri,
        body: str,
        headers: Optional[dict[str, str]] = None,
        on_response: Optional[ResponseCallback] = None,
        timeout: Optional[float] = None,
    ) -> None:
        request = HttpRequest("POST", "/" + endpoint.path, body, headers)
        request.headers[self.CRED_HEADER] = self.credential.header_value()
        request.headers.setdefault("Content-Type", "text/xml; charset=utf-8")

        def callback(response: Optional[HttpResponse], error: Optional[Exception]) -> None:
            if on_response is None:
                return
            if error is not None:
                on_response(None, error)
                return
            assert response is not None
            if response.status == 401:
                on_response(None, AuthenticationError(response.body))
                return
            if response.status == 503:
                # shed by the connection queue before the authenticating
                # route ran, so no peer credential accompanies it
                try:
                    retry_after = float(response.headers.get("Retry-After", "0"))
                except ValueError:
                    retry_after = 0.0
                on_response(
                    None,
                    TransportBusyError(
                        f"HTTPG 503: {response.body[:200]}", retry_after=retry_after
                    ),
                )
                return
            if self.mutual:
                peer = response.headers.get(self.PEER_CRED_HEADER)
                if peer is None:
                    on_response(None, AuthenticationError("server did not authenticate"))
                    return
                try:
                    self.ca.verify(
                        Credential.from_header_value(peer), self.node.network.now
                    )
                except AuthenticationError as exc:
                    on_response(None, exc)
                    return
            if not response.ok and response.status != 500:
                on_response(None, TransportError(f"HTTPG {response.status}: {response.body[:200]}"))
                return
            on_response(response.body, None)

        self.client.request_async(
            endpoint.host, endpoint.port or DEFAULT_HTTPG_PORT, request, callback,
            timeout=timeout,
        )

    def listen(self, address: Uri, handler: ServerHandler) -> None:
        port = address.port or DEFAULT_HTTPG_PORT
        if port not in self._servers:
            self._servers[port] = HttpServer(self.node, port)
        server = self._servers[port]
        server.start()

        def route(request: HttpRequest) -> HttpResponse:
            cred_text = request.headers.get(self.CRED_HEADER)
            if cred_text is None:
                self.auth_failures += 1
                return HttpResponse(401, "no credential presented")
            try:
                self.ca.verify(
                    Credential.from_header_value(cred_text), self.node.network.now
                )
            except AuthenticationError as exc:
                self.auth_failures += 1
                return HttpResponse(401, str(exc))
            body, headers = handler(request.body, dict(request.headers))
            status = int(headers.pop("X-Status", "200"))
            headers.setdefault("Content-Type", "text/xml; charset=utf-8")
            headers[self.PEER_CRED_HEADER] = self.credential.header_value()
            return HttpResponse(status, body, headers)

        server.add_route("/" + address.path, route)

    def stop_listening(self, address: Uri) -> None:
        server = self._servers.get(address.port or DEFAULT_HTTPG_PORT)
        if server is not None:
            server.remove_route("/" + address.path)
            # mirror HttpTransport: an installed interceptor keeps the
            # server alive even with no routes left
            if not server.routes and server.interceptor is None:
                server.stop()
