"""HTTP over the simulated network.

The message model is a faithful miniature of HTTP/1.1: request line,
status line, headers, ``Content-Length``-framed bodies, all serialised
to real **bytes** on the wire (E16).  The head is UTF-8 text; the body
is an opaque byte sequence framed by a byte-accurate ``Content-Length``
— character counting mis-frames any non-ASCII envelope, so encoding
happens exactly once, in :meth:`HttpRequest.to_wire` /
:meth:`HttpResponse.to_wire`, and parsing splits head from body on
byte boundaries.  Connection semantics are what matter to the
paper — HTTP "maintains an open connection for return messages" (§III),
which is why standard Web-service stacks ended up synchronous.  Two
connection models coexist:

* the default *ephemeral* model: one throwaway reply port per request,
  held open until the response frame lands;
* the E11 *persistent* model (:mod:`repro.transport.connection`):
  pooled keep-alive connections with optional pipelining and bounded
  per-connection server queues, enabled per client via
  ``HttpClient(pool=...)`` / ``HttpTransport.enable_pooling``.

Headers live in a :class:`HeaderMap` — case-insensitive like real
HTTP field names (RFC 9110 §5.1), preserving the first-seen casing on
render.
"""

from __future__ import annotations

import itertools
import re
from collections.abc import Mapping, MutableMapping
from typing import Callable, Iterable, Iterator, Optional, Union

from repro.observability import metrics as obs_metrics
from repro.simnet.network import Frame, Network, NetworkError, Node, NodeDownError
from repro.transport.base import (
    ResponseCallback,
    ServerHandler,
    Transport,
    TransportBusyError,
    TransportError,
    TransportTimeoutError,
    WirePayload,
)
from repro.transport.uri import Uri

DEFAULT_HTTP_PORT = 80

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

HeadersLike = Union[Mapping[str, str], Iterable[tuple[str, str]], None]


class HeaderMap(MutableMapping):
    """HTTP header fields: case-insensitive lookup, canonical render.

    Field names compare case-insensitively (RFC 9110 §5.1) — a sender
    writing ``content-length`` must hit the same entry as
    ``Content-Length`` — while rendering keeps the casing the field was
    first set with, so wire output is byte-stable.
    """

    __slots__ = ("_entries",)

    def __init__(self, data: HeadersLike = None):
        #: lower-cased name -> (casing as first set, value)
        self._entries: dict[str, tuple[str, str]] = {}
        if data:
            items = data.items() if hasattr(data, "items") else data
            for name, value in items:
                self[name] = value

    def __getitem__(self, name: str) -> str:
        return self._entries[name.lower()][1]

    def __setitem__(self, name: str, value: str) -> None:
        key = name.lower()
        held = self._entries.get(key)
        self._entries[key] = (held[0] if held is not None else name, value)

    def __delitem__(self, name: str) -> None:
        del self._entries[name.lower()]

    def __iter__(self) -> Iterator[str]:
        return iter([canonical for canonical, _ in self._entries.values()])

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._entries

    def copy(self) -> "HeaderMap":
        return HeaderMap(self)

    def __repr__(self) -> str:
        return f"<HeaderMap {dict(self)!r}>"


def _render_headers(headers: Mapping[str, str]) -> str:
    return "".join(f"{k}: {v}\r\n" for k, v in headers.items())


#: body content-types delivered as raw bytes rather than decoded text
_BINARY_CONTENT_PREFIXES = ("multipart/", "application/octet-stream")

#: strict Content-Length field value: optional single leading OWS space,
#: then ASCII digits only — no sign, no padding, no internal whitespace
_CONTENT_LENGTH_RE = re.compile(r" ?([0-9]+)\Z")


def _decoded_body(body: bytes, headers: HeaderMap) -> Union[str, bytes]:
    """Binary content-types keep raw bytes; everything else is UTF-8
    text (a mis-encoded text body is a framing error, not a mojibake)."""
    ctype = headers.get("Content-Type", "").lower()
    if any(ctype.startswith(prefix) for prefix in _BINARY_CONTENT_PREFIXES):
        return body
    try:
        return body.decode("utf-8")
    except UnicodeDecodeError:
        raise TransportError("message body is not valid UTF-8") from None


def parse_head_block(head: Union[bytes, str]) -> tuple[str, HeaderMap, Optional[int]]:
    """Parse a header block (everything before ``\\r\\n\\r\\n``) into
    (start line, headers, declared Content-Length or None).

    ``Content-Length`` is parsed strictly — ``+5``, ``-5``,
    whitespace-padded values, and duplicate ``Content-Length`` lines
    that disagree are all rejected (HeaderMap is last-wins, which would
    otherwise smuggle the conflict through silently).
    """
    if isinstance(head, (bytes, bytearray, memoryview)):
        try:
            head_text = bytes(head).decode("utf-8")
        except UnicodeDecodeError:
            raise TransportError("malformed HTTP head: not valid UTF-8") from None
    else:
        head_text = head
    lines = head_text.split("\r\n")
    start = lines[0]
    headers = HeaderMap()
    declared_length: Optional[int] = None
    for line in lines[1:]:
        if not line:
            continue
        name, colon, value = line.partition(":")
        if not colon:
            raise TransportError(f"malformed HTTP header line: {line!r}")
        if name.strip().lower() == "content-length":
            match = _CONTENT_LENGTH_RE.match(value)
            if match is None:
                raise TransportError(f"bad Content-Length: {value!r}")
            length = int(match.group(1))
            if declared_length is not None and declared_length != length:
                raise TransportError(
                    f"conflicting Content-Length headers: "
                    f"{declared_length} vs {length}"
                )
            declared_length = length
        headers[name.strip()] = value.strip()
    return start, headers, declared_length


def _parse_head(data: Union[bytes, str]) -> tuple[str, HeaderMap, bytes]:
    """Split a raw message into (start line, headers, body bytes).

    Framing is byte-true: the head/body split happens on the raw byte
    sequence and ``Content-Length`` is validated against the *byte*
    length of the body.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    elif isinstance(data, (bytearray, memoryview)):
        data = bytes(data)
    head, sep, body = data.partition(b"\r\n\r\n")
    if not sep:
        raise TransportError("malformed HTTP message: missing header terminator")
    start, headers, declared_length = parse_head_block(head)
    if declared_length is not None and declared_length != len(body):
        raise TransportError(
            f"Content-Length mismatch: declared {declared_length}, "
            f"got {len(body)} bytes"
        )
    return start, headers, body


class BodyStream:
    """A message body supplied as byte chunks instead of one buffer.

    *factory* is a zero-argument callable returning an iterable of
    ``bytes``-like chunks; *length* is the exact total byte count (it
    becomes the declared ``Content-Length``).  A factory — not a bare
    iterator — so retries and re-frames can restart the stream.
    """

    __slots__ = ("factory", "length")

    def __init__(self, factory: Callable[[], Iterable[bytes]], length: int):
        self.factory = factory
        self.length = int(length)

    def chunks(self) -> Iterator[bytes]:
        for chunk in self.factory():
            yield bytes(chunk) if isinstance(chunk, memoryview) else chunk

    def materialise(self) -> bytes:
        return b"".join(self.chunks())

    def __repr__(self) -> str:
        return f"<BodyStream {self.length}B>"


def _body_bytes(body: Union[str, bytes, bytearray, memoryview, BodyStream]) -> bytes:
    if isinstance(body, BodyStream):
        return body.materialise()
    if isinstance(body, str):
        return body.encode("utf-8")
    return bytes(body)


def _text_preview(body, limit: int = 200) -> str:
    """A short printable view of a body for error messages."""
    if isinstance(body, BodyStream):
        return f"<stream {body.length}B>"
    if isinstance(body, (bytes, bytearray, memoryview)):
        return bytes(body)[:limit].decode("utf-8", "replace")
    return body[:limit]


def _body_declared_length(body) -> int:
    if isinstance(body, BodyStream):
        return body.length
    if isinstance(body, str):
        return len(body.encode("utf-8"))
    return len(body)


class HttpRequest:
    """An HTTP request message.

    ``body`` may be ``str`` (encoded to UTF-8 exactly once at frame
    time), raw ``bytes`` (attachments / binary parts go through
    untouched), or a :class:`BodyStream` (the E16 chunked path: the
    body is produced as an iterator of byte chunks and never
    materialised here).
    """

    def __init__(
        self,
        method: str,
        path: str,
        body: Union[str, bytes, BodyStream] = "",
        headers: HeadersLike = None,
    ):
        self.method = method.upper()
        self.path = path if path.startswith("/") else "/" + path
        self.body = body
        self.headers = HeaderMap(headers)

    @property
    def body_bytes(self) -> bytes:
        return _body_bytes(self.body)

    def _head_wire(self) -> bytes:
        headers = self.headers.copy()
        # the transport owns framing: whatever the caller set, the
        # declared length must match the body's byte count or the peer
        # rejects it
        headers["Content-Length"] = str(_body_declared_length(self.body))
        head = f"{self.method} {self.path} HTTP/1.1\r\n{_render_headers(headers)}\r\n"
        return head.encode("utf-8")

    def to_wire(self) -> bytes:
        return self._head_wire() + self.body_bytes

    def iter_wire(self) -> Iterator[bytes]:
        """Yield the message as byte chunks: head first, then the body
        as produced — a :class:`BodyStream` body is never materialised."""
        yield self._head_wire()
        if isinstance(self.body, BodyStream):
            yield from self.body.chunks()
        else:
            yield self.body_bytes

    def wire_length(self) -> int:
        return len(self._head_wire()) + _body_declared_length(self.body)

    @classmethod
    def from_wire(cls, data: Union[bytes, str]) -> "HttpRequest":
        start, headers, body = _parse_head(data)
        return cls._from_parts(start, headers, _decoded_body(body, headers))

    @classmethod
    def _from_parts(cls, start: str, headers: HeaderMap, body) -> "HttpRequest":
        """Build from an already-split head + body (the streamed path
        hands the body straight from its sink, undecoded)."""
        parts = start.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise TransportError(f"malformed request line: {start!r}")
        return cls(parts[0], parts[1], body, headers)

    def __repr__(self) -> str:
        return (
            f"<HttpRequest {self.method} {self.path} "
            f"body={_body_declared_length(self.body)}B>"
        )


class HttpResponse:
    """An HTTP response message."""

    def __init__(
        self,
        status: int,
        body: Union[str, bytes, BodyStream] = "",
        headers: HeadersLike = None,
        reason: Optional[str] = None,
    ):
        self.status = status
        self.body = body
        self.headers = HeaderMap(headers)
        self.reason = reason if reason is not None else _REASONS.get(status, "Unknown")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def body_bytes(self) -> bytes:
        return _body_bytes(self.body)

    def _head_wire(self) -> bytes:
        headers = self.headers.copy()
        headers["Content-Length"] = str(_body_declared_length(self.body))
        head = f"HTTP/1.1 {self.status} {self.reason}\r\n{_render_headers(headers)}\r\n"
        return head.encode("utf-8")

    def to_wire(self) -> bytes:
        return self._head_wire() + self.body_bytes

    def iter_wire(self) -> Iterator[bytes]:
        yield self._head_wire()
        if isinstance(self.body, BodyStream):
            yield from self.body.chunks()
        else:
            yield self.body_bytes

    def wire_length(self) -> int:
        return len(self._head_wire()) + _body_declared_length(self.body)

    @classmethod
    def from_wire(cls, data: Union[bytes, str]) -> "HttpResponse":
        start, headers, body = _parse_head(data)
        return cls._from_parts(start, headers, _decoded_body(body, headers))

    @classmethod
    def _from_parts(cls, start: str, headers: HeaderMap, body) -> "HttpResponse":
        parts = start.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise TransportError(f"malformed status line: {start!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise TransportError(f"malformed status code in {start!r}") from None
        reason = parts[2] if len(parts) == 3 else ""
        return cls(status, body, headers, reason)

    def __repr__(self) -> str:
        return (
            f"<HttpResponse {self.status} {self.reason} "
            f"body={_body_declared_length(self.body)}B>"
        )


RequestHandler = Callable[[HttpRequest], HttpResponse]


class HttpServer:
    """A lightweight HTTP listener on one node.

    Mirrors the paper's server: launched only when something deploys
    (§IV-A: "the HTTP server is only launched once the application has
    deployed a service"), capable of listing what it hosts and routing
    requests to per-path handlers.  A catch-all *interceptor* may claim
    a request before routing — that is WSPeer's "application handles the
    request directly" hook.
    """

    def __init__(self, node: Node, port: int = DEFAULT_HTTP_PORT):
        self.node = node
        self.port = port
        self.routes: dict[str, RequestHandler] = {}
        self.interceptor: Optional[Callable[[HttpRequest], Optional[HttpResponse]]] = None
        self.started = False
        self.requests_served = 0
        self.bad_requests = 0
        self.dropped_replies = 0
        #: requests refused by the node's bounded worker pool (E13) and
        #: answered 503 + Retry-After before any parse/dispatch work
        self.overflow_answered = 0
        # E11 persistent-connection knobs: per-connection request-queue
        # bound (None disables shedding), its drain rate in req/s, and
        # how long an inactive server-side connection lives
        self.max_pending_per_connection: Optional[float] = 32.0
        self.conn_drain_rate: float = 200.0
        self.conn_idle_timeout: Optional[float] = 60.0
        # E16 chunked-framing knobs (persistent connections only):
        # responses whose wire form exceeds chunk_threshold bytes are
        # sent as a flow-controlled sequence of chunk frames instead of
        # one giant frame.  None disables response chunking.
        self.chunk_threshold: Optional[int] = None
        self.chunk_size: int = 64 * 1024
        self.stream_window: int = 8
        #: path -> zero-arg factory of a body sink (``write(bytes)`` /
        #: ``close() -> body``) consuming a chunk-streamed request body
        #: incrementally instead of buffering the full wire
        self.stream_sinks: dict[str, Callable[[], object]] = {}
        self._connections: dict[str, object] = {}

    @property
    def wire_port(self) -> str:
        return f"http:{self.port}"

    @property
    def connections(self) -> list:
        """Open server-side persistent connections (E11)."""
        return list(self._connections.values())

    def start(self) -> None:
        if self.started:
            return
        self.node.open_port(self.wire_port, self._on_frame)
        self.node.set_overflow_handler(self.wire_port, self._on_overflow)
        self.started = True

    def stop(self) -> None:
        if not self.started:
            return
        for conn in list(self._connections.values()):
            conn.close(notify=True)
        self.node.close_port(self.wire_port)
        self.node.set_overflow_handler(self.wire_port, None)
        self.started = False

    def add_route(self, path: str, handler: RequestHandler) -> None:
        path = path if path.startswith("/") else "/" + path
        self.routes[path] = handler

    def remove_route(self, path: str) -> None:
        path = path if path.startswith("/") else "/" + path
        self.routes.pop(path, None)
        self.stream_sinks.pop(path, None)

    def add_stream_sink(self, path: str, factory: Callable[[], object]) -> None:
        """Consume chunk-streamed request bodies for *path* through
        ``factory()`` sinks (O(chunk) server-side memory) instead of
        reassembling the full wire before dispatch."""
        path = path if path.startswith("/") else "/" + path
        self.stream_sinks[path] = factory

    def _body_sink_for(self, head: bytes):
        """Pick the stream sink for an incoming chunked request, from
        its parsed head.  None means: buffer the whole wire."""
        if not self.stream_sinks:
            return None
        try:
            start, _, _ = parse_head_block(head)
            parts = start.split(" ")
            path = parts[1] if len(parts) == 3 else ""
        except TransportError:
            return None
        factory = self.stream_sinks.get(path)
        return factory() if factory is not None else None

    def _on_frame(self, frame: Frame) -> None:
        if frame.meta.get("kind") == "connect":
            self._on_connect(frame)
            return
        reply_port = frame.meta.get("reply_port")
        response = self._response_for(frame.payload)
        if reply_port:
            try:
                self.node.send(frame.src, reply_port, response.to_wire())
            except (NetworkError, NodeDownError):
                # the serving node died while processing (e.g. a crash
                # injected mid-dispatch): the executed response is lost
                # on the wire, which must be visible, not an unhandled
                # kernel exception
                self.dropped_replies += 1
                obs_metrics.inc("transport.http.dropped_replies")
        else:
            # nowhere to answer: the reply is lost, which must be
            # visible, not silent
            self.dropped_replies += 1
            obs_metrics.inc("transport.http.dropped_replies")

    def _on_overflow(self, frame: Frame, retry_after: float) -> None:
        """The node's bounded worker pool rejected *frame*: answer 503 +
        Retry-After without parsing or dispatching — the whole point is
        that a saturated provider refuses cheaply (the E9 admission
        vocabulary at the transport layer)."""
        if frame.meta.get("kind") == "connect":
            # control frame: no reply channel contract; the client's
            # connect timeout (and its retry policy) handles it
            return
        reply_port = frame.meta.get("reply_port")
        if not reply_port:
            self.dropped_replies += 1
            obs_metrics.inc("transport.http.dropped_replies")
            return
        self.overflow_answered += 1
        obs_metrics.inc("transport.http.worker_overflow")
        response = HttpResponse(
            503,
            f"server {self.node.id}: worker pool saturated",
            {"Retry-After": f"{retry_after:.6f}"},
        )
        try:
            self.node.send(frame.src, reply_port, response.to_wire())
        except (NetworkError, NodeDownError):
            self.dropped_replies += 1
            obs_metrics.inc("transport.http.dropped_replies")

    def _response_for(self, payload: Union[bytes, str]) -> HttpResponse:
        """Parse and dispatch one raw request (shared with E11
        per-connection delivery)."""
        try:
            request = HttpRequest.from_wire(payload)
        except TransportError as exc:
            self.bad_requests += 1
            obs_metrics.inc("transport.http.bad_requests")
            return HttpResponse(400, str(exc))
        return self._handle(request)

    def _on_connect(self, frame: Frame) -> None:
        from repro.transport.connection import ServerConnection

        conn_id = frame.meta.get("conn")
        reply_port = frame.meta.get("reply_port")
        if not conn_id or not reply_port:
            return
        conn = self._connections.get(conn_id)
        if conn is None:  # a re-sent CONNECT re-uses the live connection
            conn = ServerConnection(self, conn_id, frame.src, reply_port)
            self._connections[conn_id] = conn
            obs_metrics.inc("transport.http.conn_accepted")
            obs_metrics.set_gauge(
                "transport.http.server_connections", len(self._connections)
            )
        self.node.send(
            frame.src, reply_port, "", kind="accept", conn=conn_id,
            srv_port=conn.srv_port,
        )

    def _forget_connection(self, conn) -> None:
        self._connections.pop(conn.id, None)
        obs_metrics.set_gauge(
            "transport.http.server_connections", len(self._connections)
        )

    def _handle(self, request: HttpRequest) -> HttpResponse:
        self.requests_served += 1
        obs_metrics.inc("transport.http.requests_served")
        if self.interceptor is not None:
            intercepted = self.interceptor(request)
            if intercepted is not None:
                return intercepted
        if request.method == "GET" and request.path == "/":
            listing = "\n".join(sorted(self.routes))
            return HttpResponse(200, listing, {"Content-Type": "text/plain"})
        handler = self.routes.get(request.path)
        if handler is None:
            return HttpResponse(404, f"no service at {request.path}")
        if request.method not in ("POST", "GET"):
            return HttpResponse(405, f"method {request.method} not allowed")
        try:
            return handler(request)
        except Exception as exc:  # noqa: BLE001 - server boundary
            return HttpResponse(500, f"{type(exc).__name__}: {exc}")


class HttpClient:
    """Issues requests from a node.

    By default each request opens an ephemeral reply port (the paper's
    throwaway "open connection for return messages").  With a pool
    enabled (:meth:`enable_pooling` or the ``pool=`` constructor
    argument), requests ride persistent pooled connections instead —
    same callback contract, two frame hops instead of four.
    """

    _conn_ids = itertools.count(1)

    def __init__(
        self,
        node: Node,
        default_timeout: Optional[float] = 30.0,
        pool=None,
    ):
        self.node = node
        self.network: Network = node.network
        self.default_timeout = default_timeout
        self.pool = None
        if pool is not None:
            self.enable_pooling(pool)

    def enable_pooling(self, config=None):
        """Route requests over pooled persistent connections (E11).

        *config* may be a :class:`~repro.transport.connection.PoolConfig`,
        an existing :class:`~repro.transport.connection.ConnectionPool`
        (to share one pool between clients on the same node), or None
        for defaults.  Returns the pool.
        """
        from repro.transport.connection import ConnectionPool

        if isinstance(config, ConnectionPool):
            self.pool = config
        else:
            self.pool = ConnectionPool(self.node, config)
        return self.pool

    def request_async(
        self,
        target_node: str,
        port: int,
        request: HttpRequest,
        callback: Callable[[Optional[HttpResponse], Optional[Exception]], None],
        timeout: Optional[float] = None,
    ) -> None:
        """Send *request*; *callback* fires with the response or error."""
        timeout = timeout if timeout is not None else self.default_timeout
        if self.pool is not None:
            self._request_pooled(target_node, port, request, callback, timeout)
            return
        conn = f"http-conn:{next(self._conn_ids)}"
        done: dict = {"fired": False, "timeout_event": None}

        def finish(response: Optional[HttpResponse], error: Optional[Exception]) -> None:
            if done["fired"]:
                return
            done["fired"] = True
            if done["timeout_event"] is not None:
                done["timeout_event"].cancel()
            if self.node.has_port(conn):
                self.node.close_port(conn)
            if error is not None:
                obs_metrics.inc(
                    "transport.http.timeouts"
                    if isinstance(error, TransportTimeoutError)
                    else "transport.http.errors"
                )
            callback(response, error)

        def on_reply(frame: Frame) -> None:
            try:
                response = HttpResponse.from_wire(frame.payload)
            except TransportError as exc:
                finish(None, exc)
                return
            finish(response, None)

        self.node.open_port(conn, on_reply)
        if timeout is not None:
            done["timeout_event"] = self.network.kernel.schedule(
                timeout,
                finish,
                None,
                TransportTimeoutError(
                    f"no response from {target_node}:{port}{request.path} within {timeout}s"
                ),
            )
        obs_metrics.inc("transport.http.requests_sent")
        try:
            self.node.send(target_node, f"http:{port}", request.to_wire(), reply_port=conn)
        except (NetworkError, NodeDownError) as exc:
            finish(None, exc)

    def _request_pooled(
        self,
        target_node: str,
        port: int,
        request: HttpRequest,
        callback: Callable[[Optional[HttpResponse], Optional[Exception]], None],
        timeout: Optional[float],
    ) -> None:
        def finish(response: Optional[HttpResponse], error: Optional[Exception]) -> None:
            if error is not None:
                obs_metrics.inc(
                    "transport.http.timeouts"
                    if isinstance(error, TransportTimeoutError)
                    else "transport.http.errors"
                )
            callback(response, error)

        obs_metrics.inc("transport.http.requests_sent")
        self.pool.lease(target_node, port).send(request, finish, timeout=timeout)

    def request(
        self,
        target_node: str,
        port: int,
        request: HttpRequest,
        timeout: Optional[float] = None,
    ) -> HttpResponse:
        """Synchronous request: pumps the kernel until the reply arrives.

        This is the paper's "HTTP maintains an open connection": virtual
        time advances inside this call until the response or timeout.
        """
        box: dict[str, object] = {}

        def callback(response: Optional[HttpResponse], error: Optional[Exception]) -> None:
            box["response"] = response
            box["error"] = error

        self.request_async(target_node, port, request, callback, timeout)
        self.network.kernel.pump_until(lambda: "response" in box or "error" in box)
        if box.get("error") is not None:
            raise box["error"]  # type: ignore[misc]
        return box["response"]  # type: ignore[return-value]


class HttpTransport(Transport):
    """Transport SPI adapter: SOAP-over-HTTP POST."""

    scheme = "http"

    def __init__(
        self,
        node: Node,
        default_timeout: Optional[float] = 30.0,
        pool=None,
    ):
        self.node = node
        self.client = HttpClient(node, default_timeout, pool=pool)
        self._servers: dict[int, HttpServer] = {}

    @property
    def pool(self):
        return self.client.pool

    def enable_pooling(self, config=None):
        """Persistent pooled connections for this transport's client
        (E11); see :meth:`HttpClient.enable_pooling`."""
        return self.client.enable_pooling(config)

    def server_for(self, port: int = DEFAULT_HTTP_PORT) -> HttpServer:
        """Get (lazily starting) the HTTP server on *port* of this node."""
        if port not in self._servers:
            self._servers[port] = HttpServer(self.node, port)
        return self._servers[port]

    def send(
        self,
        endpoint: Uri,
        body: WirePayload,
        headers: Optional[dict[str, str]] = None,
        on_response: Optional[ResponseCallback] = None,
        timeout: Optional[float] = None,
    ) -> None:
        request = HttpRequest("POST", "/" + endpoint.path, body, headers)
        request.headers.setdefault("Content-Type", "text/xml; charset=utf-8")
        request.headers.setdefault("Host", endpoint.authority)

        def callback(response: Optional[HttpResponse], error: Optional[Exception]) -> None:
            if on_response is None:
                return
            if error is not None:
                on_response(None, error)
            elif response is not None and response.status == 503:
                # explicit shed: surface the Retry-After hint so
                # supervision backs off this endpoint precisely
                try:
                    retry_after = float(response.headers.get("Retry-After", "0"))
                except ValueError:
                    retry_after = 0.0
                on_response(
                    None,
                    TransportBusyError(
                        f"HTTP 503: {_text_preview(response.body)}",
                        retry_after=retry_after,
                    ),
                )
            elif response is not None and not response.ok and response.status != 500:
                # 500 carries a SOAP fault body the engine will decode;
                # other failure codes are transport-level errors.
                on_response(
                    None,
                    TransportError(
                        f"HTTP {response.status}: {_text_preview(response.body)}"
                    ),
                )
            else:
                on_response(response.body if response else None, None)

        self.client.request_async(
            endpoint.host, endpoint.port or DEFAULT_HTTP_PORT, request, callback,
            timeout=timeout,
        )

    def listen(self, address: Uri, handler: ServerHandler) -> None:
        server = self.server_for(address.port or DEFAULT_HTTP_PORT)
        server.start()

        def route(request: HttpRequest) -> HttpResponse:
            body, headers = handler(request.body, dict(request.headers))
            status = int(headers.pop("X-Status", "200"))
            headers.setdefault("Content-Type", "text/xml; charset=utf-8")
            return HttpResponse(status, body, headers)

        server.add_route("/" + address.path, route)

    def stop_listening(self, address: Uri) -> None:
        server = self._servers.get(address.port or DEFAULT_HTTP_PORT)
        if server is not None:
            server.remove_route("/" + address.path)
            # an installed interceptor still answers requests with no
            # routes left — only a fully idle server shuts down
            if not server.routes and server.interceptor is None:
                server.stop()
