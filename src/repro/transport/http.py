"""HTTP over the simulated network.

The message model is a faithful miniature of HTTP/1.1: request line,
status line, headers, ``Content-Length``-framed bodies, all serialised
to real text on the wire.  Connection semantics are what matter to the
paper — HTTP "maintains an open connection for return messages" (§III),
which is why standard Web-service stacks ended up synchronous.  Here a
connection is an ephemeral reply port the client holds open until the
response frame lands.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.observability import metrics as obs_metrics
from repro.simnet.network import Frame, Network, NetworkError, Node, NodeDownError
from repro.transport.base import (
    ResponseCallback,
    ServerHandler,
    Transport,
    TransportError,
    TransportTimeoutError,
)
from repro.transport.uri import Uri

DEFAULT_HTTP_PORT = 80

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


def _render_headers(headers: dict[str, str]) -> str:
    return "".join(f"{k}: {v}\r\n" for k, v in headers.items())


def _parse_head(text: str) -> tuple[str, dict[str, str], str]:
    """Split raw message into (start line, headers, body)."""
    head, sep, body = text.partition("\r\n\r\n")
    if not sep:
        raise TransportError("malformed HTTP message: missing header terminator")
    lines = head.split("\r\n")
    start = lines[0]
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, colon, value = line.partition(":")
        if not colon:
            raise TransportError(f"malformed HTTP header line: {line!r}")
        headers[name.strip()] = value.strip()
    if "Content-Length" in headers:
        try:
            length = int(headers["Content-Length"])
        except ValueError:
            raise TransportError("bad Content-Length") from None
        if length != len(body):
            raise TransportError(
                f"Content-Length mismatch: declared {length}, got {len(body)}"
            )
    return start, headers, body


class HttpRequest:
    """An HTTP request message."""

    def __init__(
        self,
        method: str,
        path: str,
        body: str = "",
        headers: Optional[dict[str, str]] = None,
    ):
        self.method = method.upper()
        self.path = path if path.startswith("/") else "/" + path
        self.body = body
        self.headers = dict(headers or {})

    def to_wire(self) -> str:
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        return f"{self.method} {self.path} HTTP/1.1\r\n{_render_headers(headers)}\r\n{self.body}"

    @classmethod
    def from_wire(cls, text: str) -> "HttpRequest":
        start, headers, body = _parse_head(text)
        parts = start.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise TransportError(f"malformed request line: {start!r}")
        return cls(parts[0], parts[1], body, headers)

    def __repr__(self) -> str:
        return f"<HttpRequest {self.method} {self.path} body={len(self.body)}B>"


class HttpResponse:
    """An HTTP response message."""

    def __init__(
        self,
        status: int,
        body: str = "",
        headers: Optional[dict[str, str]] = None,
        reason: Optional[str] = None,
    ):
        self.status = status
        self.body = body
        self.headers = dict(headers or {})
        self.reason = reason if reason is not None else _REASONS.get(status, "Unknown")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def to_wire(self) -> str:
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        return f"HTTP/1.1 {self.status} {self.reason}\r\n{_render_headers(headers)}\r\n{self.body}"

    @classmethod
    def from_wire(cls, text: str) -> "HttpResponse":
        start, headers, body = _parse_head(text)
        parts = start.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise TransportError(f"malformed status line: {start!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise TransportError(f"malformed status code in {start!r}") from None
        reason = parts[2] if len(parts) == 3 else ""
        return cls(status, body, headers, reason)

    def __repr__(self) -> str:
        return f"<HttpResponse {self.status} {self.reason} body={len(self.body)}B>"


RequestHandler = Callable[[HttpRequest], HttpResponse]


class HttpServer:
    """A lightweight HTTP listener on one node.

    Mirrors the paper's server: launched only when something deploys
    (§IV-A: "the HTTP server is only launched once the application has
    deployed a service"), capable of listing what it hosts and routing
    requests to per-path handlers.  A catch-all *interceptor* may claim
    a request before routing — that is WSPeer's "application handles the
    request directly" hook.
    """

    def __init__(self, node: Node, port: int = DEFAULT_HTTP_PORT):
        self.node = node
        self.port = port
        self.routes: dict[str, RequestHandler] = {}
        self.interceptor: Optional[Callable[[HttpRequest], Optional[HttpResponse]]] = None
        self.started = False
        self.requests_served = 0

    @property
    def wire_port(self) -> str:
        return f"http:{self.port}"

    def start(self) -> None:
        if self.started:
            return
        self.node.open_port(self.wire_port, self._on_frame)
        self.started = True

    def stop(self) -> None:
        if self.started:
            self.node.close_port(self.wire_port)
            self.started = False

    def add_route(self, path: str, handler: RequestHandler) -> None:
        path = path if path.startswith("/") else "/" + path
        self.routes[path] = handler

    def remove_route(self, path: str) -> None:
        path = path if path.startswith("/") else "/" + path
        self.routes.pop(path, None)

    def _on_frame(self, frame: Frame) -> None:
        reply_port = frame.meta.get("reply_port")
        try:
            request = HttpRequest.from_wire(frame.payload)
        except TransportError as exc:
            response = HttpResponse(400, str(exc))
        else:
            response = self._handle(request)
        if reply_port:
            self.node.send(frame.src, reply_port, response.to_wire())

    def _handle(self, request: HttpRequest) -> HttpResponse:
        self.requests_served += 1
        obs_metrics.inc("transport.http.requests_served")
        if self.interceptor is not None:
            intercepted = self.interceptor(request)
            if intercepted is not None:
                return intercepted
        if request.method == "GET" and request.path == "/":
            listing = "\n".join(sorted(self.routes))
            return HttpResponse(200, listing, {"Content-Type": "text/plain"})
        handler = self.routes.get(request.path)
        if handler is None:
            return HttpResponse(404, f"no service at {request.path}")
        if request.method not in ("POST", "GET"):
            return HttpResponse(405, f"method {request.method} not allowed")
        try:
            return handler(request)
        except Exception as exc:  # noqa: BLE001 - server boundary
            return HttpResponse(500, f"{type(exc).__name__}: {exc}")


class HttpClient:
    """Issues requests from a node; one ephemeral reply port per request."""

    _conn_ids = itertools.count(1)

    def __init__(self, node: Node, default_timeout: Optional[float] = 30.0):
        self.node = node
        self.network: Network = node.network
        self.default_timeout = default_timeout

    def request_async(
        self,
        target_node: str,
        port: int,
        request: HttpRequest,
        callback: Callable[[Optional[HttpResponse], Optional[Exception]], None],
        timeout: Optional[float] = None,
    ) -> None:
        """Send *request*; *callback* fires with the response or error."""
        conn = f"http-conn:{next(self._conn_ids)}"
        timeout = timeout if timeout is not None else self.default_timeout
        done: dict = {"fired": False, "timeout_event": None}

        def finish(response: Optional[HttpResponse], error: Optional[Exception]) -> None:
            if done["fired"]:
                return
            done["fired"] = True
            if done["timeout_event"] is not None:
                done["timeout_event"].cancel()
            if self.node.has_port(conn):
                self.node.close_port(conn)
            if error is not None:
                obs_metrics.inc(
                    "transport.http.timeouts"
                    if isinstance(error, TransportTimeoutError)
                    else "transport.http.errors"
                )
            callback(response, error)

        def on_reply(frame: Frame) -> None:
            try:
                response = HttpResponse.from_wire(frame.payload)
            except TransportError as exc:
                finish(None, exc)
                return
            finish(response, None)

        self.node.open_port(conn, on_reply)
        if timeout is not None:
            done["timeout_event"] = self.network.kernel.schedule(
                timeout,
                finish,
                None,
                TransportTimeoutError(
                    f"no response from {target_node}:{port}{request.path} within {timeout}s"
                ),
            )
        obs_metrics.inc("transport.http.requests_sent")
        try:
            self.node.send(target_node, f"http:{port}", request.to_wire(), reply_port=conn)
        except (NetworkError, NodeDownError) as exc:
            finish(None, exc)

    def request(
        self,
        target_node: str,
        port: int,
        request: HttpRequest,
        timeout: Optional[float] = None,
    ) -> HttpResponse:
        """Synchronous request: pumps the kernel until the reply arrives.

        This is the paper's "HTTP maintains an open connection": virtual
        time advances inside this call until the response or timeout.
        """
        box: dict[str, object] = {}

        def callback(response: Optional[HttpResponse], error: Optional[Exception]) -> None:
            box["response"] = response
            box["error"] = error

        self.request_async(target_node, port, request, callback, timeout)
        self.network.kernel.pump_until(lambda: "response" in box or "error" in box)
        if box.get("error") is not None:
            raise box["error"]  # type: ignore[misc]
        return box["response"]  # type: ignore[return-value]


class HttpTransport(Transport):
    """Transport SPI adapter: SOAP-over-HTTP POST."""

    scheme = "http"

    def __init__(self, node: Node, default_timeout: Optional[float] = 30.0):
        self.node = node
        self.client = HttpClient(node, default_timeout)
        self._servers: dict[int, HttpServer] = {}

    def server_for(self, port: int = DEFAULT_HTTP_PORT) -> HttpServer:
        """Get (lazily starting) the HTTP server on *port* of this node."""
        if port not in self._servers:
            self._servers[port] = HttpServer(self.node, port)
        return self._servers[port]

    def send(
        self,
        endpoint: Uri,
        body: str,
        headers: Optional[dict[str, str]] = None,
        on_response: Optional[ResponseCallback] = None,
        timeout: Optional[float] = None,
    ) -> None:
        request = HttpRequest("POST", "/" + endpoint.path, body, headers)
        request.headers.setdefault("Content-Type", "text/xml; charset=utf-8")
        request.headers.setdefault("Host", endpoint.authority)

        def callback(response: Optional[HttpResponse], error: Optional[Exception]) -> None:
            if on_response is None:
                return
            if error is not None:
                on_response(None, error)
            elif response is not None and not response.ok and response.status != 500:
                # 500 carries a SOAP fault body the engine will decode;
                # other failure codes are transport-level errors.
                on_response(None, TransportError(f"HTTP {response.status}: {response.body[:200]}"))
            else:
                on_response(response.body if response else None, None)

        self.client.request_async(
            endpoint.host, endpoint.port or DEFAULT_HTTP_PORT, request, callback,
            timeout=timeout,
        )

    def listen(self, address: Uri, handler: ServerHandler) -> None:
        server = self.server_for(address.port or DEFAULT_HTTP_PORT)
        server.start()

        def route(request: HttpRequest) -> HttpResponse:
            body, headers = handler(request.body, dict(request.headers))
            status = int(headers.pop("X-Status", "200"))
            headers.setdefault("Content-Type", "text/xml; charset=utf-8")
            return HttpResponse(status, body, headers)

        server.add_route("/" + address.path, route)

    def stop_listening(self, address: Uri) -> None:
        server = self._servers.get(address.port or DEFAULT_HTTP_PORT)
        if server is not None:
            server.remove_route("/" + address.path)
            if not server.routes:
                server.stop()
