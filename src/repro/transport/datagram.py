"""One-way datagram transport — the raw material of P2PS pipes.

P2PS pipes are "generally unidirectional" (§IV-B); at the wire level a
pipe write is a single fire-and-forget frame to the resolved endpoint.
No delivery report exists: an unreachable peer simply never hears the
message, exactly the unreliability the paper's asynchronous design
copes with.
"""

from __future__ import annotations

from typing import Optional

from repro.simnet.network import Node, NodeDownError
from repro.transport.base import ResponseCallback, ServerHandler, Transport, TransportError
from repro.transport.uri import Uri


class DatagramTransport(Transport):
    """Fire-and-forget frames addressed by ``dgram://node/port-name``."""

    scheme = "dgram"

    def __init__(self, node: Node):
        self.node = node

    def send(
        self,
        endpoint: Uri,
        body: str,
        headers: Optional[dict[str, str]] = None,
        on_response: Optional[ResponseCallback] = None,
        timeout: Optional[float] = None,
    ) -> None:
        try:
            self.node.send(endpoint.host, f"dgram:{endpoint.path}", body, **(headers or {}))
        except NodeDownError as exc:
            if on_response is not None:
                on_response(None, exc)
            return
        if on_response is not None:
            # one-way: completion means "it left the node"
            on_response(None, None)

    def listen(self, address: Uri, handler: ServerHandler) -> None:
        if not address.path:
            raise TransportError("datagram listen address needs a path (port name)")

        def on_frame(frame):  # type: ignore[no-untyped-def]
            handler(frame.payload, {str(k): str(v) for k, v in frame.meta.items()})

        self.node.open_port(f"dgram:{address.path}", on_frame)

    def stop_listening(self, address: Uri) -> None:
        self.node.close_port(f"dgram:{address.path}")
