"""A small URI model.

Hand-rolled rather than :mod:`urllib.parse` because the ``p2ps`` scheme
(§IV-B of the paper) leans on exact control of the host / path /
fragment split: ``p2ps://<peer-id>/<service>#<pipe>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.caching import ArtifactCache


class UriError(ValueError):
    """Raised for text that does not parse as a URI we accept."""


@dataclass(frozen=True)
class Uri:
    """scheme://host[:port]/path[#fragment]

    ``path`` never includes the leading slash; '' means no path.
    ``port`` is None when absent.  Query strings are not modelled —
    nothing in the 2004-era SOAP stack we reproduce uses them.
    """

    scheme: str
    host: str
    port: Optional[int] = None
    path: str = ""
    fragment: str = ""

    @classmethod
    def parse(cls, text: str) -> "Uri":
        if "://" not in text:
            raise UriError(f"not an absolute URI: {text!r}")
        scheme, _, rest = text.partition("://")
        if not scheme or not scheme.replace("+", "").replace("-", "").isalnum():
            raise UriError(f"bad scheme in {text!r}")
        fragment = ""
        if "#" in rest:
            rest, _, fragment = rest.partition("#")
        authority, slash, path = rest.partition("/")
        if not authority:
            raise UriError(f"missing host in {text!r}")
        port: Optional[int] = None
        host = authority
        if ":" in authority:
            host, _, port_text = authority.rpartition(":")
            try:
                port = int(port_text)
            except ValueError:
                raise UriError(f"bad port in {text!r}") from None
            if not 0 < port < 65536:
                raise UriError(f"port out of range in {text!r}")
        if not host:
            raise UriError(f"missing host in {text!r}")
        del slash
        return cls(scheme.lower(), host, port, path, fragment)

    def __str__(self) -> str:
        authority = self.host if self.port is None else f"{self.host}:{self.port}"
        text = f"{self.scheme}://{authority}"
        if self.path:
            text += f"/{self.path}"
        if self.fragment:
            text += f"#{self.fragment}"
        return text

    def with_fragment(self, fragment: str) -> "Uri":
        return Uri(self.scheme, self.host, self.port, self.path, fragment)

    def without_fragment(self) -> "Uri":
        return Uri(self.scheme, self.host, self.port, self.path, "")

    @property
    def authority(self) -> str:
        return self.host if self.port is None else f"{self.host}:{self.port}"


_uri_cache = ArtifactCache("uris", max_entries=512)


def parse_uri_cached(text: str) -> Uri:
    """Like :meth:`Uri.parse`, but memoised on the exact input text.

    Endpoint addresses repeat on every call and retransmission; Uri is
    frozen, so one parsed instance is safely shared.  Parse *errors*
    are not cached — malformed addresses stay on the raising path.
    """
    uri = _uri_cache.get(text)
    if uri is None:
        uri = _uri_cache.put(text, Uri.parse(text))
    return uri
