"""Transport SPI and scheme registry."""

from __future__ import annotations

import abc
from typing import Callable, Optional, Union

from repro.transport.uri import Uri

#: a message payload on either side of a transport: decoded text for
#: XML envelopes, raw bytes for E16 multipart/binary wires
WirePayload = Union[str, bytes]


class TransportError(Exception):
    """Base class for transport failures (connection refused, auth, ...)."""


class TransportTimeoutError(TransportError):
    """No response arrived within the caller's (virtual-time) timeout."""


class TransportBusyError(TransportError):
    """The server explicitly shed the request (HTTP 503).

    Carries the server's ``Retry-After`` hint so supervision can back
    off this endpoint for the right amount of time instead of guessing
    — the transport-level twin of the SOAP ``Server.Busy`` fault.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


# A server-side handler: (request_body, headers) -> (response_body, headers).
# Bodies are text for XML envelopes, bytes for E16 binary/multipart wires.
ServerHandler = Callable[[WirePayload, dict[str, str]], tuple[WirePayload, dict[str, str]]]
# Completion callback for async requests: (response_body | None, error | None).
ResponseCallback = Callable[[Optional[WirePayload], Optional[Exception]], None]


class Transport(abc.ABC):
    """A way of moving a request message to an endpoint URI and
    (for request/response transports) getting a reply back.

    Implementations are bound to one :class:`~repro.simnet.network.Node`
    — the paper's peer is simultaneously client and server, so a single
    node typically holds several transports.
    """

    #: URI scheme this transport serves, e.g. ``"http"``.
    scheme: str = ""

    @abc.abstractmethod
    def send(
        self,
        endpoint: Uri,
        body: WirePayload,
        headers: Optional[dict[str, str]] = None,
        on_response: Optional[ResponseCallback] = None,
        timeout: Optional[float] = None,
    ) -> None:
        """Send *body* to *endpoint*.

        Asynchronous: *on_response* fires when the reply (or failure)
        arrives.  One-way transports invoke it immediately with
        ``(None, None)`` after the frame leaves.  *timeout* bounds this
        one exchange only — it must never mutate shared client state.
        """

    @abc.abstractmethod
    def listen(self, address: Uri, handler: ServerHandler) -> None:
        """Start accepting requests addressed to *address*."""

    @abc.abstractmethod
    def stop_listening(self, address: Uri) -> None:
        """Stop accepting requests at *address*."""


class TransportRegistry:
    """scheme → :class:`Transport` lookup used by invocation machinery."""

    def __init__(self) -> None:
        self._by_scheme: dict[str, Transport] = {}

    def register(self, transport: Transport) -> None:
        if not transport.scheme:
            raise TransportError("transport has no scheme")
        self._by_scheme[transport.scheme] = transport

    def lookup(self, scheme: str) -> Transport:
        try:
            return self._by_scheme[scheme]
        except KeyError:
            raise TransportError(f"no transport registered for scheme {scheme!r}") from None

    def for_uri(self, uri: Uri) -> Transport:
        return self.lookup(uri.scheme)

    @property
    def schemes(self) -> list[str]:
        return sorted(self._by_scheme)
