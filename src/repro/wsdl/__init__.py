"""WSDL 1.1 — service description.

WSPeer "uses ... WSDL for service description"; deploying a service
means "taking a code source, generating a service interface description
from it" (§III).  This package provides:

``model``
    The WSDL object model: definitions, messages, port types,
    operations, bindings, ports, services — and its XML (de)serialisation.
``generator``
    Python object → :class:`WsdlDefinition` via signature introspection
    (the "generate WSDL from a code source" step of deployment).
``parser``
    WSDL text → :class:`WsdlDefinition` (the client side of "locating a
    service involves retrieving ... its interface description").
``validate``
    Referential-integrity checks over a definition.

A definition converts to a :class:`~repro.soap.stubs.StubSpec` with
:func:`to_stub_spec`, which is how discovered WSDL turns into a live
client proxy.
"""

from repro.wsdl.model import (
    Binding,
    Message,
    Operation,
    Part,
    Port,
    PortType,
    Service,
    WsdlDefinition,
    WsdlError,
    SOAP_HTTP_TRANSPORT,
    SOAP_P2PS_TRANSPORT,
)
from repro.wsdl.generator import generate_wsdl
from repro.wsdl.parser import parse_wsdl
from repro.wsdl.validate import validate_wsdl
from repro.wsdl.stubspec import to_stub_spec

__all__ = [
    "WsdlDefinition",
    "WsdlError",
    "Message",
    "Part",
    "PortType",
    "Operation",
    "Binding",
    "Service",
    "Port",
    "SOAP_HTTP_TRANSPORT",
    "SOAP_P2PS_TRANSPORT",
    "generate_wsdl",
    "parse_wsdl",
    "validate_wsdl",
    "to_stub_spec",
]
