"""The WSDL 1.1 object model and its XML form."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.xmlkit import Element, QName, ns, parse, serialize

#: soap:binding transport URIs.  The HTTP one is the standard constant;
#: the P2PS one is this reproduction's identifier for pipe transport.
SOAP_HTTP_TRANSPORT = "http://schemas.xmlsoap.org/soap/http"
SOAP_HTTPG_TRANSPORT = "http://repro.wspeer/transports/httpg"
SOAP_P2PS_TRANSPORT = "http://repro.wspeer/transports/p2ps"


class WsdlError(ValueError):
    """Structurally invalid or unresolvable WSDL."""


@dataclass
class Part:
    """A message part: a named, typed slot."""

    name: str
    type_text: str  # e.g. "xsd:int", "tns:Point", "soapenc:Array"


@dataclass
class Message:
    name: str
    parts: list[Part] = field(default_factory=list)


@dataclass
class Operation:
    """An operation of a portType: input message → output message.

    ``output`` of None models a one-way (notification-style) operation.
    """

    name: str
    input: str  # message name (local, in target namespace)
    output: Optional[str] = None
    documentation: str = ""


@dataclass
class PortType:
    name: str
    operations: list[Operation] = field(default_factory=list)

    def operation(self, name: str) -> Optional[Operation]:
        for op in self.operations:
            if op.name == name:
                return op
        return None


@dataclass
class Binding:
    """Concrete protocol binding of a portType."""

    name: str
    port_type: str  # portType name
    transport: str = SOAP_HTTP_TRANSPORT
    style: str = "rpc"


@dataclass
class Port:
    """An endpoint: binding + address."""

    name: str
    binding: str  # binding name
    location: str  # endpoint URI text (http://..., p2ps://...)


@dataclass
class Service:
    name: str
    ports: list[Port] = field(default_factory=list)

    def port(self, name: str) -> Optional[Port]:
        for p in self.ports:
            if p.name == name:
                return p
        return None


class WsdlDefinition:
    """A complete WSDL document."""

    def __init__(self, name: str, target_namespace: str):
        self.name = name
        self.target_namespace = target_namespace
        self.messages: dict[str, Message] = {}
        self.port_types: dict[str, PortType] = {}
        self.bindings: dict[str, Binding] = {}
        self.services: dict[str, Service] = {}
        #: named complexTypes (the <wsdl:types> schema):
        #: type name -> ordered (field name, type text) pairs
        self.schema_types: dict[str, list[tuple[str, str]]] = {}

    def add_schema_type(self, name: str, fields: list[tuple[str, str]]) -> None:
        if name in self.schema_types:
            raise WsdlError(f"duplicate schema type {name!r}")
        self.schema_types[name] = list(fields)

    # -- construction helpers ------------------------------------------------
    def add_message(self, message: Message) -> Message:
        if message.name in self.messages:
            raise WsdlError(f"duplicate message {message.name!r}")
        self.messages[message.name] = message
        return message

    def add_port_type(self, port_type: PortType) -> PortType:
        if port_type.name in self.port_types:
            raise WsdlError(f"duplicate portType {port_type.name!r}")
        self.port_types[port_type.name] = port_type
        return port_type

    def add_binding(self, binding: Binding) -> Binding:
        if binding.name in self.bindings:
            raise WsdlError(f"duplicate binding {binding.name!r}")
        self.bindings[binding.name] = binding
        return binding

    def add_service(self, service: Service) -> Service:
        if service.name in self.services:
            raise WsdlError(f"duplicate service {service.name!r}")
        self.services[service.name] = service
        return service

    # -- navigation ------------------------------------------------------------
    def first_service(self) -> Service:
        if not self.services:
            raise WsdlError("definition has no service")
        return next(iter(self.services.values()))

    def port_type_for_port(self, port: Port) -> PortType:
        binding = self.bindings.get(port.binding)
        if binding is None:
            raise WsdlError(f"port {port.name!r} references unknown binding {port.binding!r}")
        port_type = self.port_types.get(binding.port_type)
        if port_type is None:
            raise WsdlError(
                f"binding {binding.name!r} references unknown portType {binding.port_type!r}"
            )
        return port_type

    # -- XML form ------------------------------------------------------------
    def to_element(self) -> Element:
        root = Element(
            QName(ns.WSDL, "definitions", "wsdl"),
            attributes={"name": self.name, "targetNamespace": self.target_namespace},
            nsdecls={
                "wsdl": ns.WSDL,
                "soap": ns.WSDL_SOAP,
                "xsd": ns.XSD,
                "soapenc": ns.SOAP_ENC,
                "tns": self.target_namespace,
            },
        )
        if self.schema_types:
            types = root.add(QName(ns.WSDL, "types", "wsdl"))
            schema = types.add(
                QName(ns.XSD, "schema", "xsd"),
                targetNamespace=self.target_namespace,
            )
            for type_name, fields in self.schema_types.items():
                complex_type = schema.add(
                    QName(ns.XSD, "complexType", "xsd"), name=type_name
                )
                sequence = complex_type.add(QName(ns.XSD, "sequence", "xsd"))
                for field_name, field_type in fields:
                    sequence.add(
                        QName(ns.XSD, "element", "xsd"),
                        name=field_name,
                        type=field_type,
                    )
        for message in self.messages.values():
            m = root.add(QName(ns.WSDL, "message", "wsdl"), name=message.name)
            for part in message.parts:
                m.add(QName(ns.WSDL, "part", "wsdl"), name=part.name, type=part.type_text)
        for port_type in self.port_types.values():
            pt = root.add(QName(ns.WSDL, "portType", "wsdl"), name=port_type.name)
            for op in port_type.operations:
                o = pt.add(QName(ns.WSDL, "operation", "wsdl"), name=op.name)
                if op.documentation:
                    o.add(QName(ns.WSDL, "documentation", "wsdl"), text=op.documentation)
                o.add(QName(ns.WSDL, "input", "wsdl"), message=f"tns:{op.input}")
                if op.output is not None:
                    o.add(QName(ns.WSDL, "output", "wsdl"), message=f"tns:{op.output}")
        for binding in self.bindings.values():
            b = root.add(
                QName(ns.WSDL, "binding", "wsdl"),
                name=binding.name,
                type=f"tns:{binding.port_type}",
            )
            b.add(
                QName(ns.WSDL_SOAP, "binding", "soap"),
                transport=binding.transport,
                style=binding.style,
            )
        for service in self.services.values():
            s = root.add(QName(ns.WSDL, "service", "wsdl"), name=service.name)
            for port in service.ports:
                p = s.add(
                    QName(ns.WSDL, "port", "wsdl"),
                    name=port.name,
                    binding=f"tns:{port.binding}",
                )
                p.add(QName(ns.WSDL_SOAP, "address", "soap"), location=port.location)
        return root

    def to_wire(self, pretty: bool = False) -> str:
        return serialize(self.to_element(), pretty=pretty, xml_declaration=True)

    def __repr__(self) -> str:
        return (
            f"<WsdlDefinition {self.name!r} messages={len(self.messages)} "
            f"portTypes={len(self.port_types)} services={len(self.services)}>"
        )
