"""WSDL parsing: document text → :class:`WsdlDefinition`."""

from __future__ import annotations

import hashlib

from repro.caching import ArtifactCache
from repro.wsdl.model import (
    Binding,
    Message,
    Operation,
    Part,
    Port,
    PortType,
    Service,
    WsdlDefinition,
    WsdlError,
    SOAP_HTTP_TRANSPORT,
)
from repro.xmlkit import Element, QName, XmlError, ns, parse


def _local_ref(text: str) -> str:
    """Strip the prefix off a ``tns:name`` reference."""
    _, _, local = text.rpartition(":")
    return local


def parse_wsdl(text: str) -> WsdlDefinition:
    try:
        root = parse(text)
    except XmlError as exc:
        raise WsdlError(f"WSDL is not well-formed XML: {exc}") from exc
    return parse_wsdl_element(root)


_wsdl_cache = ArtifactCache("wsdl-definitions", max_entries=128)


def parse_wsdl_cached(text: str) -> WsdlDefinition:
    """Parse WSDL, reusing the definition for repeated document text.

    Keyed by content hash so identical documents served by different
    providers share one parsed :class:`WsdlDefinition` (discovery
    sweeps fetch the same WSDL once per provider).  The shared
    definition is immutable by convention; a provider that redeploys
    serves different text, which hashes to a fresh entry — stale
    definitions age out of the LRU rather than being served.
    """
    key = hashlib.sha256(text.encode("utf-8", "surrogatepass")).hexdigest()
    definition = _wsdl_cache.get(key)
    if definition is None:
        definition = _wsdl_cache.put(key, parse_wsdl(text))
    return definition


def parse_wsdl_element(root: Element) -> WsdlDefinition:
    if root.name != QName(ns.WSDL, "definitions"):
        raise WsdlError(f"not a WSDL document: root is {root.name}")
    target_namespace = root.get("targetNamespace")
    if not target_namespace:
        raise WsdlError("definitions element lacks targetNamespace")
    definition = WsdlDefinition(root.get("name", ""), target_namespace)

    types_elem = root.find(QName(ns.WSDL, "types"))
    if types_elem is not None:
        for schema in types_elem.find_all(QName(ns.XSD, "schema")):
            for complex_type in schema.find_all(QName(ns.XSD, "complexType")):
                type_name = complex_type.get("name")
                if not type_name:
                    continue
                fields: list[tuple[str, str]] = []
                sequence = complex_type.find(QName(ns.XSD, "sequence"))
                if sequence is not None:
                    for field in sequence.find_all(QName(ns.XSD, "element")):
                        fields.append(
                            (field.get("name", ""), field.get("type", "xsd:anyType"))
                        )
                definition.add_schema_type(type_name, fields)

    for m in root.find_all(QName(ns.WSDL, "message")):
        name = m.get("name")
        if not name:
            raise WsdlError("message without a name")
        parts = []
        for p in m.find_all(QName(ns.WSDL, "part")):
            part_name = p.get("name")
            part_type = p.get("type", "xsd:anyType")
            if not part_name:
                raise WsdlError(f"part without a name in message {name!r}")
            parts.append(Part(part_name, part_type))
        definition.add_message(Message(name, parts))

    for pt in root.find_all(QName(ns.WSDL, "portType")):
        name = pt.get("name")
        if not name:
            raise WsdlError("portType without a name")
        port_type = PortType(name)
        for o in pt.find_all(QName(ns.WSDL, "operation")):
            op_name = o.get("name")
            if not op_name:
                raise WsdlError(f"operation without a name in portType {name!r}")
            input_elem = o.find(QName(ns.WSDL, "input"))
            if input_elem is None:
                raise WsdlError(f"operation {op_name!r} has no input message")
            output_elem = o.find(QName(ns.WSDL, "output"))
            doc_elem = o.find(QName(ns.WSDL, "documentation"))
            port_type.operations.append(
                Operation(
                    op_name,
                    input=_local_ref(input_elem.get("message", "")),
                    output=(
                        _local_ref(output_elem.get("message", ""))
                        if output_elem is not None
                        else None
                    ),
                    documentation=doc_elem.text if doc_elem is not None else "",
                )
            )
        definition.add_port_type(port_type)

    for b in root.find_all(QName(ns.WSDL, "binding")):
        name = b.get("name")
        if not name:
            raise WsdlError("binding without a name")
        soap_binding = b.find(QName(ns.WSDL_SOAP, "binding"))
        transport = SOAP_HTTP_TRANSPORT
        style = "rpc"
        if soap_binding is not None:
            transport = soap_binding.get("transport", transport)
            style = soap_binding.get("style", style)
        definition.add_binding(
            Binding(name, _local_ref(b.get("type", "")), transport=transport, style=style)
        )

    for s in root.find_all(QName(ns.WSDL, "service")):
        name = s.get("name")
        if not name:
            raise WsdlError("service without a name")
        service = Service(name)
        for p in s.find_all(QName(ns.WSDL, "port")):
            port_name = p.get("name")
            if not port_name:
                raise WsdlError(f"port without a name in service {name!r}")
            address = p.find(QName(ns.WSDL_SOAP, "address"))
            location = address.get("location", "") if address is not None else ""
            service.ports.append(Port(port_name, _local_ref(p.get("binding", "")), location))
        definition.add_service(service)

    return definition
