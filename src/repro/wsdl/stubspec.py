"""Bridge: WSDL definition → stub specification.

Turning a discovered interface description into a callable client proxy
is the heart of WSPeer's client side; this module extracts the
operation shapes the stub builders need.
"""

from __future__ import annotations

import weakref
from typing import Optional

from repro.caching import ArtifactCache
from repro.soap.stubs import OperationSpec, StubSpec
from repro.wsdl.model import Port, WsdlDefinition, WsdlError


def to_stub_spec(
    definition: WsdlDefinition,
    service_name: Optional[str] = None,
    port_name: Optional[str] = None,
) -> StubSpec:
    """Build a :class:`StubSpec` for one port of one service.

    Defaults to the first service and its first port; for a portless
    (abstract) service, falls back to the definition's first portType.
    """
    if service_name is not None:
        service = definition.services.get(service_name)
        if service is None:
            raise WsdlError(f"no service {service_name!r} in definition")
    else:
        service = definition.first_service()

    port: Optional[Port] = None
    if port_name is not None:
        port = service.port(port_name)
        if port is None:
            raise WsdlError(f"no port {port_name!r} in service {service.name!r}")
    elif service.ports:
        port = service.ports[0]

    if port is not None:
        port_type = definition.port_type_for_port(port)
    else:
        if not definition.port_types:
            raise WsdlError("definition has no portType")
        port_type = next(iter(definition.port_types.values()))

    operations = []
    for op in port_type.operations:
        message = definition.messages.get(op.input)
        if message is None:
            raise WsdlError(f"operation {op.name!r}: unknown input message {op.input!r}")
        operations.append(
            OperationSpec(
                op.name,
                tuple(part.name for part in message.parts),
                doc=op.documentation,
            )
        )
    return StubSpec(service.name, tuple(operations))


_spec_cache = ArtifactCache("stub-specs", max_entries=256)


def stub_spec_cached(
    definition: WsdlDefinition,
    service_name: Optional[str] = None,
    port_name: Optional[str] = None,
) -> StubSpec:
    """Memoised :func:`to_stub_spec` keyed on the definition object.

    Entries pair the spec with a weak reference to the definition they
    were derived from: ``id()`` reuse after garbage collection cannot
    serve a stale spec, because the guard reference no longer matches
    (or has died) and the entry is invalidated.
    """
    key = (id(definition), service_name, port_name)
    entry = _spec_cache.get(key)
    if entry is not None:
        guard, spec = entry
        if guard() is definition:
            return spec
        _spec_cache.invalidate(key)
    spec = to_stub_spec(definition, service_name, port_name)
    _spec_cache.put(key, (weakref.ref(definition), spec))
    return spec
