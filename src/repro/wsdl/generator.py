"""WSDL generation from live Python objects.

This is the deployment-time half of WSPeer's lightweight hosting:
"deploying a service involves taking a code source [and] generating a
service interface description from it" (§III).  Operation signatures
come from :mod:`inspect`; parameter/return annotations map to XSD type
names via :func:`repro.soap.encoding.python_type_to_xsd` (unannotated
parameters become ``xsd:anyType``).
"""

from __future__ import annotations

import inspect
from typing import Optional

from repro.soap.encoding import python_type_to_xsd
from repro.soap.rpc import ServiceObject
from repro.wsdl.model import (
    Binding,
    Message,
    Operation,
    Part,
    Port,
    PortType,
    Service,
    WsdlDefinition,
    SOAP_HTTP_TRANSPORT,
)


def generate_wsdl(
    service: ServiceObject,
    locations: Optional[dict[str, str]] = None,
    transport: str = SOAP_HTTP_TRANSPORT,
    registry=None,
) -> WsdlDefinition:
    """Generate the WSDL definition describing *service*.

    *locations* maps port name → endpoint URI text; by convention the
    deployer passes one port per transport it exposes.  When omitted, a
    service element with no ports is produced (an *abstract* WSDL, which
    P2PS publication later concretises with pipe endpoints).

    *registry* (a :class:`~repro.soap.encoding.StructRegistry`) adds a
    ``<wsdl:types>`` schema declaring every registered dataclass as a
    named complexType, so clients learn the struct field layout from the
    description alone.
    """
    import dataclasses

    definition = WsdlDefinition(service.name, service.namespace)
    if registry is not None:
        for type_name in registry.names:
            cls = registry.type_of(type_name)
            fields = [
                (field.name, python_type_to_xsd(field.type))
                for field in dataclasses.fields(cls)
            ]
            definition.add_schema_type(type_name, fields)

    port_type = PortType(f"{service.name}PortType")
    for op_name in service.operation_names:
        operation = service.operations[op_name]
        request_parts: list[Part] = []
        if operation.signature is not None:
            for param in operation.signature.parameters.values():
                if param.kind not in (param.POSITIONAL_OR_KEYWORD, param.KEYWORD_ONLY):
                    continue
                annotated = (
                    param.annotation
                    if param.annotation is not inspect.Parameter.empty
                    else None
                )
                request_parts.append(Part(param.name, python_type_to_xsd(annotated)))
            return_annotation = operation.signature.return_annotation
            return_type = python_type_to_xsd(
                return_annotation
                if return_annotation is not inspect.Signature.empty
                else None
            )
        else:
            return_type = "xsd:anyType"

        request_message = Message(f"{op_name}Request", request_parts)
        response_message = Message(f"{op_name}Response", [Part("return", return_type)])
        definition.add_message(request_message)
        definition.add_message(response_message)

        doc = inspect.getdoc(operation.callable) or ""
        port_type.operations.append(
            Operation(
                op_name,
                input=request_message.name,
                output=response_message.name,
                documentation=doc.splitlines()[0] if doc else "",
            )
        )
    definition.add_port_type(port_type)

    binding = Binding(f"{service.name}SoapBinding", port_type.name, transport=transport)
    definition.add_binding(binding)

    svc = Service(service.name)
    for port_name, location in (locations or {}).items():
        svc.ports.append(Port(port_name, binding.name, location))
    definition.add_service(svc)
    return definition
