"""Referential-integrity validation for WSDL definitions."""

from __future__ import annotations

from repro.wsdl.model import WsdlDefinition


def validate_wsdl(definition: WsdlDefinition) -> list[str]:
    """Return a list of problems (empty = valid).

    Checks: operations reference existing messages; bindings reference
    existing portTypes; ports reference existing bindings and have
    addresses; duplicate operation names within a portType.
    """
    problems: list[str] = []

    for port_type in definition.port_types.values():
        seen: set[str] = set()
        for op in port_type.operations:
            if op.name in seen:
                problems.append(
                    f"portType {port_type.name!r}: duplicate operation {op.name!r}"
                )
            seen.add(op.name)
            if op.input not in definition.messages:
                problems.append(
                    f"operation {op.name!r}: unknown input message {op.input!r}"
                )
            if op.output is not None and op.output not in definition.messages:
                problems.append(
                    f"operation {op.name!r}: unknown output message {op.output!r}"
                )

    for binding in definition.bindings.values():
        if binding.port_type not in definition.port_types:
            problems.append(
                f"binding {binding.name!r}: unknown portType {binding.port_type!r}"
            )

    for service in definition.services.values():
        for port in service.ports:
            if port.binding not in definition.bindings:
                problems.append(
                    f"port {port.name!r} in service {service.name!r}: "
                    f"unknown binding {port.binding!r}"
                )
            if not port.location:
                problems.append(
                    f"port {port.name!r} in service {service.name!r}: missing address"
                )

    return problems
