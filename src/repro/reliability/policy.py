"""Reliability policy objects: retry schedules, deadlines, bundles.

The paper's event model assumes networks where "components ... are
notified when and if responses are returned" (§III) — *if* is the
operative word.  A :class:`RetryPolicy` turns one attempt into a
bounded, backed-off schedule of attempts; a :class:`Deadline` caps the
total virtual time a logical invocation may consume across all of
them; a :class:`ReliabilityPolicy` bundles both with the
acknowledgement and circuit-breaker switches the bindings understand.

Everything is deterministic: jitter comes from a seeded generator, so
a seeded simulation run always produces the same retransmission
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Type

import numpy as np


class ReliabilityError(Exception):
    """Base class for reliability-layer failures."""


class DeadlineExceededError(ReliabilityError):
    """The invocation's total time budget lapsed before completion."""


class RetryPolicy:
    """Exponential backoff with seeded jitter.

    Attempt *k* (0-based) that fails is followed, when retryable, by a
    wait of ``min(base_delay * multiplier**k, max_delay)`` stretched by
    a seeded jitter factor in ``[1 - jitter, 1 + jitter]``.  With
    ``base_delay=0`` the policy degenerates to immediate retransmission
    (the legacy P2PS ``default_retries`` behaviour).
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        max_delay: float = 2.0,
        jitter: float = 0.1,
        seed: int = 0,
        retry_on: Optional[Tuple[Type[BaseException], ...]] = None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        #: exception types that justify another attempt; None means the
        #: caller's default classification applies.
        self.retry_on = retry_on
        self._rng = np.random.default_rng(seed)

    def delay(self, attempt: int) -> float:
        """Backoff delay after failed attempt *attempt* (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        raw = min(self.base_delay * (self.multiplier ** attempt), self.max_delay)
        if raw <= 0 or self.jitter == 0:
            return max(raw, 0.0)
        factor = 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return raw * factor

    def schedule(self) -> list[float]:
        """The full backoff schedule (one delay per possible retry)."""
        return [self.delay(k) for k in range(self.max_attempts - 1)]

    def retryable(self, error: BaseException) -> bool:
        """Whether *error* justifies another attempt under this policy.

        Without an explicit ``retry_on`` filter, transport-level trouble
        is retried but application-level SOAP faults are not — the
        provider *did* answer, it just said no, and a retransmitted
        request would only be deduplicated into the same fault.  The
        one fault exception is ``Server.Busy``: the provider explicitly
        did *not* execute, so retrying (after its retry-after hint) is
        always safe.
        """
        from repro.soap.faults import ServerBusyFault, SoapFault
        from repro.transport.base import TransportBusyError

        if isinstance(error, (ServerBusyFault, TransportBusyError)):
            return True
        if self.retry_on is not None:
            return isinstance(error, self.retry_on)
        return not isinstance(error, SoapFault)

    def reset(self) -> None:
        """Re-seed the jitter stream (restores determinism for reruns)."""
        self._rng = np.random.default_rng(self.seed)

    def __repr__(self) -> str:
        return (
            f"<RetryPolicy attempts={self.max_attempts} "
            f"base={self.base_delay}s x{self.multiplier} cap={self.max_delay}s>"
        )


class Deadline:
    """A total-time budget across all attempts of one invocation.

    Started against the simulation clock at the first attempt; the
    executor refuses to start further attempts once the budget is
    spent, and trims per-attempt timeouts to the remaining budget.
    """

    def __init__(self, budget: float):
        if budget <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget = budget
        self._started_at: Optional[float] = None

    def start(self, now: float) -> "Deadline":
        if self._started_at is None:
            self._started_at = now
        return self

    @property
    def started(self) -> bool:
        return self._started_at is not None

    def remaining(self, now: float) -> float:
        if self._started_at is None:
            return self.budget
        return max(0.0, self._started_at + self.budget - now)

    def expired(self, now: float) -> bool:
        return self.remaining(now) <= 0.0

    def __repr__(self) -> str:
        state = f"started@{self._started_at}" if self.started else "unstarted"
        return f"<Deadline {self.budget}s {state}>"


@dataclass
class BreakerConfig:
    """Tunables for one :class:`~repro.reliability.breaker.CircuitBreaker`."""

    window: int = 16            #: sliding window of recent call outcomes
    failure_threshold: float = 0.5  #: open when failure rate >= this ...
    min_calls: int = 4          #: ... and at least this many calls observed
    open_timeout: float = 5.0   #: seconds open before probing (half-open)
    half_open_max: int = 1      #: concurrent probes allowed while half-open
    #: a half-open probe slot taken by :meth:`CircuitBreaker.allow` is
    #: reclaimed after this many seconds if the caller never reports an
    #: outcome (crashed caller), so the breaker cannot wedge half-open
    half_open_lease_timeout: float = 30.0


@dataclass
class ReliabilityPolicy:
    """The bundle an invocation node consults for one logical call.

    ``retry`` drives the attempt schedule; ``deadline`` (seconds)
    bounds total time across attempts; ``ack`` requests explicit
    acknowledgement frames for one-way pipe sends; ``breaker``
    (a :class:`BreakerConfig`) sheds load from endpoints whose recent
    failure rate crossed the threshold.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    deadline: Optional[float] = None
    ack: bool = False
    breaker: Optional[BreakerConfig] = None

    def new_deadline(self) -> Optional[Deadline]:
        return Deadline(self.deadline) if self.deadline is not None else None

    # ------------------------------------------------------------------
    # canonical bundles
    # ------------------------------------------------------------------
    @classmethod
    def naive(cls) -> "ReliabilityPolicy":
        """One attempt, no ack, no breaker — the pre-reliability client."""
        return cls(retry=RetryPolicy(max_attempts=1))

    @classmethod
    def standard_default(cls) -> "ReliabilityPolicy":
        """Standard-binding default: retry connection-level errors only.

        HTTP holds a connection open, so a timed-out exchange may have
        executed server-side; only errors raised before the request left
        (down/unroutable source, refused connections) are retried
        unconditionally.
        """
        from repro.simnet.network import NetworkError

        return cls(
            retry=RetryPolicy(
                max_attempts=3, base_delay=0.025, multiplier=2.0,
                max_delay=0.5, jitter=0.1, retry_on=(NetworkError,),
            )
        )

    @classmethod
    def p2ps_default(cls) -> "ReliabilityPolicy":
        """P2PS-binding default: retransmission over fire-and-forget pipes.

        Pipes give no delivery signal, so lapsed attempt timers trigger
        retransmission of the same MessageID; the provider-side dedup
        window makes that safe for non-idempotent operations.  Explicit
        acks remain opt-in (``assured()``) because bare one-way sends
        must not grow a reply channel.
        """
        return cls(retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0))

    @classmethod
    def assured(
        cls,
        attempts: int = 6,
        deadline: Optional[float] = None,
        seed: int = 0,
    ) -> "ReliabilityPolicy":
        """Retry + ack + breaker: the full WS-ReliableMessaging-lite bundle."""
        return cls(
            retry=RetryPolicy(
                max_attempts=attempts, base_delay=0.05, multiplier=2.0,
                max_delay=1.0, jitter=0.1, seed=seed,
            ),
            deadline=deadline,
            ack=True,
            breaker=BreakerConfig(),
        )
