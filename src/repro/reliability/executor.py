"""The attempt driver: one logical call over many physical attempts.

:class:`ReliableCall` owns the control flow the policies describe —
consult the endpoint's breaker, run an attempt, classify the failure,
wait out the backoff on the simulation kernel, try again, and give up
when attempts or the deadline budget run out.  It is transport-neutral:
the caller supplies an ``attempt`` callable that performs one physical
try and reports back through a completion callback, which is exactly
the shape of both ``Transport.send`` and a pipe send-plus-timer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.reliability.breaker import CircuitBreaker, CircuitOpenError
from repro.reliability.policy import (
    Deadline,
    DeadlineExceededError,
    ReliabilityPolicy,
)

#: attempt(on_done, attempt_no, remaining_budget): perform one physical
#: try; call on_done(result, error) exactly once when it concludes.
AttemptFn = Callable[[Callable[[Any, Optional[Exception]], None], int, Optional[float]], None]
#: final completion callback: (result, error).
DoneFn = Callable[[Any, Optional[Exception]], None]


class ReliableCall:
    """Drives one logical invocation to completion under a policy."""

    def __init__(
        self,
        kernel,
        policy: ReliabilityPolicy,
        attempt: AttemptFn,
        callback: DoneFn,
        breaker: Optional[CircuitBreaker] = None,
        on_retry: Optional[Callable[[int, float, Exception], None]] = None,
        describe: str = "call",
    ):
        self._kernel = kernel
        self.policy = policy
        self._attempt = attempt
        self._callback = callback
        self._breaker = breaker
        self._on_retry = on_retry
        self._describe = describe
        self._deadline: Optional[Deadline] = policy.new_deadline()
        self.attempts_made = 0
        self._finished = False
        self._retry_event = None  # pending backoff timer, if any

    # ------------------------------------------------------------------
    def start(self) -> "ReliableCall":
        if self._deadline is not None:
            self._deadline.start(self._kernel.now)
        self._run_attempt()
        return self

    def _finish(self, result: Any, error: Optional[Exception]) -> None:
        if self._finished:
            return
        self._finished = True
        # a concluded call must not leave its backoff timer armed: the
        # cancel releases the kernel's heap slot immediately (E13), so
        # retry-heavy workloads do not accumulate dead timers
        if self._retry_event is not None:
            self._retry_event.cancel()
            self._retry_event = None
        self._callback(result, error)

    def _remaining_budget(self) -> Optional[float]:
        if self._deadline is None:
            return None
        return self._deadline.remaining(self._kernel.now)

    # ------------------------------------------------------------------
    def _run_attempt(self) -> None:
        self._retry_event = None
        if self._finished:
            return
        if self._breaker is not None and not self._breaker.allow():
            self._finish(
                None,
                CircuitOpenError(
                    f"circuit open for {self._describe}: shedding call "
                    f"(recent failure rate "
                    f"{self._breaker.failure_rate:.0%})"
                ),
            )
            return
        budget = self._remaining_budget()
        if budget is not None and budget <= 0:
            self._finish(
                None,
                DeadlineExceededError(
                    f"deadline of {self._deadline.budget}s exhausted before "
                    f"attempt {self.attempts_made + 1} of {self._describe}"
                ),
            )
            return
        attempt_no = self.attempts_made
        self.attempts_made += 1
        concluded = {"done": False}

        def on_done(result: Any, error: Optional[Exception]) -> None:
            if concluded["done"] or self._finished:
                return
            concluded["done"] = True
            if error is None:
                if self._breaker is not None:
                    self._breaker.record_success()
                self._finish(result, None)
                return
            if self._breaker is not None:
                self._breaker.record_failure()
            self._maybe_retry(attempt_no, error)

        try:
            self._attempt(on_done, attempt_no, budget)
        except Exception as exc:  # noqa: BLE001 - attempt boundary
            on_done(None, exc)

    def _maybe_retry(self, attempt_no: int, error: Exception) -> None:
        retry = self.policy.retry
        if self.attempts_made >= retry.max_attempts or not retry.retryable(error):
            self._finish(None, error)
            return
        delay = retry.delay(attempt_no)
        budget = self._remaining_budget()
        if budget is not None and delay >= budget:
            self._finish(
                None,
                DeadlineExceededError(
                    f"deadline of {self._deadline.budget}s leaves no room to "
                    f"retry {self._describe} after {self.attempts_made} "
                    f"attempt(s): {error}"
                ),
            )
            return
        if self._on_retry is not None:
            self._on_retry(self.attempts_made + 1, delay, error)
        self._retry_event = self._kernel.schedule(delay, self._run_attempt)


@dataclass
class OnewayStatus:
    """Live status of one acknowledged one-way send.

    Returned immediately by ``invoke_oneway`` when acks are requested;
    fields fill in as the simulation advances.
    """

    message_id: str
    acked: bool = False
    attempts: int = 0
    acked_at: Optional[float] = None
    error: Optional[Exception] = None
    _listeners: list = field(default_factory=list, repr=False)

    @property
    def done(self) -> bool:
        return self.acked or self.error is not None

    def on_done(self, fn: Callable[["OnewayStatus"], None]) -> None:
        if self.done:
            fn(self)
        else:
            self._listeners.append(fn)

    def _conclude(self) -> None:
        listeners, self._listeners = self._listeners, []
        for fn in listeners:
            fn(self)
