"""Duplicate suppression keyed on ``wsa:MessageID``.

Client retries deliberately reuse the MessageID of the original send,
so a provider that remembers recently-answered ids can guarantee
at-most-once *execution* under at-least-once *delivery* — the property
that makes retransmission safe for non-idempotent stateful services
(the paper's hosted "code sources" hold state, §III).

The window is bounded two ways: ``max_entries`` (FIFO eviction, a ring
over *first-insertion* order — re-remembering an id refreshes its
retained value but never its place in the ring) and an optional
``ttl`` in virtual seconds.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Iterator, Optional


class DedupWindow:
    """Recently-seen MessageIDs with their retained responses."""

    def __init__(
        self,
        max_entries: int = 256,
        ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive")
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock or (lambda: 0.0)
        #: message id -> (retained value, stored-at time)
        self._entries: "OrderedDict[str, tuple[Any, float]]" = OrderedDict()
        self.duplicates = 0  #: hits observed via seen()/get()/__contains__
        self.evicted = 0

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self._clock()

    def _expire(self) -> None:
        if self.ttl is None:
            return
        horizon = self._now() - self.ttl
        while self._entries:
            key, (_, stored_at) = next(iter(self._entries.items()))
            if stored_at >= horizon:
                break
            self._entries.popitem(last=False)
            self.evicted += 1

    # ------------------------------------------------------------------
    def remember(self, message_id: str, value: Any = None) -> None:
        """Record *message_id* (optionally with a retained response).

        Re-remembering a live id only refreshes its retained value —
        the entry keeps its original slot (and stored-at time) in the
        FIFO ring, so a chatty retransmitter cannot indefinitely shield
        its id from eviction.
        """
        self._expire()
        if message_id in self._entries:
            self._entries[message_id] = (value, self._entries[message_id][1])
            return
        while len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.evicted += 1
        self._entries[message_id] = (value, self._now())

    def seen(self, message_id: Optional[str]) -> bool:
        """Is *message_id* a live (non-expired) duplicate?  Counts hits."""
        if message_id is None:
            return False
        self._expire()
        hit = message_id in self._entries
        if hit:
            self.duplicates += 1
        return hit

    def get(self, message_id: str) -> Any:
        """The retained value for *message_id* (None when absent).
        A present id counts as a duplicate hit."""
        self._expire()
        entry = self._entries.get(message_id)
        if entry is None:
            return None
        self.duplicates += 1
        return entry[0]

    def __contains__(self, message_id: object) -> bool:
        self._expire()
        hit = message_id in self._entries
        if hit:
            self.duplicates += 1
        return hit

    def __len__(self) -> int:
        self._expire()
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        self._expire()
        return iter(list(self._entries))

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"<DedupWindow {len(self._entries)}/{self.max_entries} "
            f"ttl={self.ttl} dups={self.duplicates}>"
        )
