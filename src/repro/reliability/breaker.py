"""Per-endpoint circuit breakers: shed load from dead peers.

On an unreliable substrate a dead provider soaks up full retry
schedules from every caller — exactly the load amplification the
paper's P2P robustness argument (§II/§VI) warns about.  A breaker
watches the recent outcome window per endpoint and, once the failure
rate crosses the threshold, fails calls *fast* (no frames sent) until
an ``open_timeout`` has passed; then a limited number of half-open
probes decide whether to close again.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.reliability.policy import BreakerConfig, ReliabilityError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitOpenError(ReliabilityError):
    """Fail-fast: the endpoint's breaker is open, no attempt was made."""


class CircuitBreaker:
    """Closed → open → half-open → {closed, open} state machine.

    Driven entirely by the caller-supplied *clock* (the simnet kernel's
    virtual time), so transitions are deterministic and testable.
    """

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ):
        self.config = config or BreakerConfig()
        self._clock = clock or (lambda: 0.0)
        self.on_transition = on_transition
        self.state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=self.config.window)
        self._opened_at = 0.0
        #: expiry times of outstanding half-open probe leases.  A lease
        #: is taken by :meth:`allow` and released by the next outcome
        #: report; a caller that never reports (crash, lost completion)
        #: leaks its lease, so leases self-expire after
        #: ``config.half_open_lease_timeout`` instead of wedging the
        #: breaker in half-open forever.
        self._half_open_leases: list[float] = []
        self.leases_expired = 0  #: probe slots reclaimed from silent callers
        self.rejected = 0  #: calls shed while open
        self.transitions: list[tuple[float, str]] = []

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self._clock()

    def _move(self, state: str) -> None:
        if state == self.state:
            return
        old, self.state = self.state, state
        self.transitions.append((self._now(), state))
        if state == OPEN:
            self._opened_at = self._now()
        if state == HALF_OPEN:
            self._half_open_leases.clear()
        if state == CLOSED:
            self._outcomes.clear()
        if self.on_transition is not None:
            self.on_transition(old, state)

    @property
    def failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return 1.0 - sum(self._outcomes) / len(self._outcomes)

    def _prune_leases(self) -> None:
        now = self._now()
        alive = [expiry for expiry in self._half_open_leases if expiry > now]
        self.leases_expired += len(self._half_open_leases) - len(alive)
        self._half_open_leases = alive

    def _release_lease(self) -> None:
        if self._half_open_leases:
            self._half_open_leases.pop(0)

    @property
    def half_open_inflight(self) -> int:
        """Unexpired probe leases currently outstanding."""
        self._prune_leases()
        return len(self._half_open_leases)

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a call proceed right now?  (Counts shed calls.)"""
        if self.state == OPEN:
            if self._now() - self._opened_at >= self.config.open_timeout:
                self._move(HALF_OPEN)
            else:
                self.rejected += 1
                return False
        if self.state == HALF_OPEN:
            self._prune_leases()
            if len(self._half_open_leases) >= self.config.half_open_max:
                self.rejected += 1
                return False
            self._half_open_leases.append(
                self._now() + self.config.half_open_lease_timeout
            )
        return True

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            self._release_lease()
            self._move(CLOSED)
        self._outcomes.append(True)

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            self._release_lease()
            self._move(OPEN)
            return
        self._outcomes.append(False)
        if (
            self.state == CLOSED
            and len(self._outcomes) >= self.config.min_calls
            and self.failure_rate >= self.config.failure_threshold
        ):
            self._move(OPEN)

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.state} rate={self.failure_rate:.2f} "
            f"rejected={self.rejected}>"
        )


class CircuitBreakerRegistry:
    """endpoint key → breaker, shared by all calls through one invoker."""

    def __init__(
        self,
        clock: Callable[[], float],
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ):
        self._clock = clock
        self._on_transition = on_transition
        self._breakers: dict[str, CircuitBreaker] = {}

    def for_endpoint(self, key: str, config: Optional[BreakerConfig] = None) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            callback = None
            if self._on_transition is not None:
                on_transition = self._on_transition

                def callback(old: str, new: str, _key: str = key) -> None:
                    on_transition(_key, old, new)

            breaker = CircuitBreaker(config, clock=self._clock, on_transition=callback)
            self._breakers[key] = breaker
        return breaker

    def get(self, key: str) -> Optional[CircuitBreaker]:
        return self._breakers.get(key)

    def __len__(self) -> int:
        return len(self._breakers)
