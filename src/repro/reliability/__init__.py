"""WS-ReliableMessaging-lite: retries, acks, dedup, deadlines, breakers.

The paper builds WSPeer for networks where "components ... are
notified when and if responses are returned" (§III).  This package
supplies the *if*: bounded retransmission with exponential backoff
(:mod:`~repro.reliability.policy`), acknowledgement frames over
fire-and-forget P2PS pipes (:mod:`~repro.reliability.ack`),
provider-side duplicate suppression keyed on ``wsa:MessageID``
(:mod:`~repro.reliability.dedup`), per-endpoint circuit breakers that
shed load from dead peers (:mod:`~repro.reliability.breaker`), and the
attempt driver that ties them together
(:mod:`~repro.reliability.executor`).

Both bindings consume it through
:class:`~repro.reliability.policy.ReliabilityPolicy` bundles passed to
``invoke`` / ``invoke_async`` / ``invoke_oneway`` or installed as
binding defaults.
"""

from repro.reliability.ack import (
    ACK_ACTION,
    RM_NS,
    ack_relates_to,
    ack_requested,
    build_ack,
    is_ack,
    mark_ack_requested,
)
from repro.reliability.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitBreakerRegistry,
    CircuitOpenError,
)
from repro.reliability.dedup import DedupWindow
from repro.reliability.executor import OnewayStatus, ReliableCall
from repro.reliability.policy import (
    BreakerConfig,
    Deadline,
    DeadlineExceededError,
    ReliabilityError,
    ReliabilityPolicy,
    RetryPolicy,
)

__all__ = [
    "ACK_ACTION",
    "RM_NS",
    "ack_relates_to",
    "ack_requested",
    "build_ack",
    "is_ack",
    "mark_ack_requested",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "CircuitBreakerRegistry",
    "CircuitOpenError",
    "DedupWindow",
    "OnewayStatus",
    "ReliableCall",
    "BreakerConfig",
    "Deadline",
    "DeadlineExceededError",
    "ReliabilityError",
    "ReliabilityPolicy",
    "RetryPolicy",
]
