"""Acknowledgement frames for one-way P2PS pipes (WS-RM-lite).

P2PS pipes are fire-and-forget: a bare ``invoke_oneway`` gives the
sender no delivery signal at all.  This module adds the minimal
WS-ReliableMessaging-style handshake on top of the existing
WS-Addressing headers:

- the sender marks the request with an ``rm:AckRequested`` header and
  supplies a ``wsa:ReplyTo`` naming its ack pipe;
- the provider, *on receipt* (before and independent of execution),
  answers with a tiny ack envelope whose ``wsa:RelatesTo`` carries the
  request's ``wsa:MessageID``;
- an ack-requested request is treated as one-way: the operation result
  is discarded rather than streamed back, so the only return traffic
  is the ack frame.

Duplicate deliveries (retransmissions) are re-acked but not
re-executed — the provider's dedup window guarantees that.
"""

from __future__ import annotations

from typing import Optional

from repro.soap.envelope import SoapEnvelope
from repro.wsa.headers import MessageAddressingProperties
from repro.xmlkit import Element, QName

#: The reliability header/body namespace (stands in for wsrm).
RM_NS = "urn:repro:reliability"
#: wsa:Action of every ack frame.
ACK_ACTION = f"{RM_NS}/ack"

_ACK_REQUESTED = QName(RM_NS, "AckRequested", "rm")
_ACKNOWLEDGEMENT = QName(RM_NS, "Acknowledgement", "rm")


def mark_ack_requested(envelope: SoapEnvelope) -> SoapEnvelope:
    """Ask the receiver to acknowledge receipt of *envelope*."""
    if envelope.find_header(_ACK_REQUESTED) is None:
        envelope.add_header(
            Element(_ACK_REQUESTED, text="1", nsdecls={"rm": RM_NS})
        )
    return envelope


def ack_requested(envelope: SoapEnvelope) -> bool:
    """Did the sender of *envelope* ask for an acknowledgement?"""
    block = envelope.find_header(_ACK_REQUESTED)
    return block is not None and (block.text or "").strip() in ("1", "true")


def build_ack(message_id: str, to: str) -> SoapEnvelope:
    """The ack frame for the request identified by *message_id*.

    Correlation travels in ``wsa:RelatesTo`` (the paper's §IV-B header
    binding rule 5); the body carries a single ``rm:Acknowledgement``
    block repeating the id for handlers that never see headers.
    """
    ack = SoapEnvelope(
        body_content=Element(
            _ACKNOWLEDGEMENT, text=message_id, nsdecls={"rm": RM_NS}
        )
    )
    maps = MessageAddressingProperties(
        to=to, action=ACK_ACTION, relates_to=message_id
    )
    maps.apply_to(ack)
    return ack


def is_ack(envelope: SoapEnvelope) -> bool:
    """Is *envelope* an acknowledgement frame?"""
    return (
        envelope.body_content is not None
        and envelope.body_content.name == _ACKNOWLEDGEMENT
    )


def ack_relates_to(envelope: SoapEnvelope) -> Optional[str]:
    """The MessageID an ack frame acknowledges (None for non-acks)."""
    if not is_ack(envelope):
        return None
    try:
        maps = MessageAddressingProperties.extract_from(envelope)
    except Exception:  # noqa: BLE001 - malformed ack: fall back to body
        maps = None
    if maps is not None and maps.relates_to:
        return maps.relates_to
    body = envelope.body_content
    return (body.text or None) if body is not None else None
