"""Locator/publisher adapters: the plane behind the classic interfaces.

Application code never sees the ring, the replicas or the cache — it
calls ``wspeer.locate`` / ``wspeer.publish`` exactly as before.  These
adapters subclass the same :class:`~repro.core.locator.ServiceLocator`
/ :class:`~repro.core.publisher.ServicePublisher` bases the standard
binding uses, so they slot into the interface tree via
``register_locator`` / ``register_publisher`` (the paper's "insert
variations into the tree at any level").
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.errors import DeploymentError
from repro.core.errors import DiscoveryError as CoreDiscoveryError
from repro.core.events import EventSource
from repro.core.handle import ServiceHandle
from repro.core.hosting import DeployedService
from repro.core.locator import ServiceLocator
from repro.core.publisher import ServicePublisher
from repro.core.query import ServiceQuery, UDDIServiceQuery
from repro.discovery.client import DiscoveryClient, DiscoveryError, ResolvedService
from repro.wsa.epr import EndpointReference
from repro.wsdl.parser import parse_wsdl_cached


class DistributedUddiLocator(ServiceLocator):
    """Locates through the discovery plane (cache → replicas → repair)."""

    def __init__(
        self,
        discovery: DiscoveryClient,
        parent: Optional[EventSource] = None,
    ):
        super().__init__(lambda: discovery.node.network.kernel.now, parent)
        self.discovery = discovery
        discovery.on_event = self.fire_discovery

    # -- endpoint staleness: quarantine also evicts from the cache -----
    def mark_endpoint_dead(self, address: str) -> None:
        super().mark_endpoint_dead(address)
        self.discovery.cache.invalidate_endpoint(address)

    # ------------------------------------------------------------------
    def _handle_from(self, item: ResolvedService) -> Optional[ServiceHandle]:
        if not item.wsdl_text:
            self.fire_discovery(
                "service-skipped", service=item.name, reason="no wsdl in record"
            )
            return None
        return self._filter_quarantined(
            ServiceHandle(
                item.name,
                parse_wsdl_cached(item.wsdl_text),
                [EndpointReference(address) for address in item.endpoints],
                source="uddi",
            )
        )

    def locate(
        self, query: ServiceQuery, timeout: float = 10.0, expect: int = 1
    ) -> list[ServiceHandle]:
        categories = query.categories if isinstance(query, UDDIServiceQuery) else []
        self.fire_discovery("query-issued", query=query.describe(), via="discovery")
        try:
            resolved = self.discovery.resolve(query.name_pattern, categories)
        except DiscoveryError as exc:
            self.fire_discovery("query-failed", reason=str(exc))
            raise CoreDiscoveryError(f"discovery plane unreachable: {exc}") from exc
        handles: list[ServiceHandle] = []
        for item in resolved:
            handle = self._handle_from(item)
            if handle is None:
                continue
            handles.append(handle)
            self.fire_discovery(
                "service-found", service=item.name,
                via="discovery-cache" if item.from_cache else "discovery",
                endpoints=[e.address for e in handle.endpoints],
            )
        if not handles:
            self.fire_discovery("query-empty", query=query.describe())
        return handles

    def locate_async(
        self,
        query: ServiceQuery,
        on_found: Callable[[ServiceHandle], None],
        on_complete: Optional[Callable[[int, Optional[Exception]], None]] = None,
    ) -> None:
        """Event-driven locate; cache hits complete without any frame."""
        self.fire_discovery(
            "query-issued", query=query.describe(), via="discovery-async"
        )

        def on_resolved(items: list[ResolvedService], error) -> None:
            if error is not None:
                self.fire_discovery("query-failed", reason=str(error))
                if on_complete is not None:
                    on_complete(0, error)
                return
            found = 0
            for item in items:
                handle = self._handle_from(item)
                if handle is None:
                    continue
                found += 1
                self.fire_discovery(
                    "service-found", service=item.name,
                    via="discovery-cache" if item.from_cache else "discovery",
                    endpoints=[e.address for e in handle.endpoints],
                )
                on_found(handle)
            if found == 0:
                self.fire_discovery("query-empty", query=query.describe())
            if on_complete is not None:
                on_complete(found, None)

        self.discovery.resolve_async(query.name_pattern, on_resolved)


class DistributedUddiPublisher(ServicePublisher):
    """Publishes into the plane: home shard + replicas + gossip."""

    def __init__(
        self,
        discovery: DiscoveryClient,
        business_name: str = "WSPeer",
        lease_ttl: Optional[float] = None,
        parent: Optional[EventSource] = None,
    ):
        super().__init__(lambda: discovery.node.network.kernel.now, parent)
        self.discovery = discovery
        self.business_name = business_name
        #: default registration lease applied to every publish
        self.lease_ttl = lease_ttl

    def publish(
        self,
        deployed: DeployedService,
        categories: Optional[list[dict]] = None,
        description: str = "",
        ttl: Optional[float] = None,
        **kwargs,
    ) -> None:
        http_endpoint = next(
            (e for e in deployed.endpoints
             if e.address.startswith(("http://", "httpg://"))),
            None,
        )
        if http_endpoint is None:
            raise DeploymentError(
                f"service {deployed.name!r} has no HTTP endpoint to publish"
            )
        wsdl_url = http_endpoint.address + ".wsdl"
        try:
            record = self.discovery.publish(
                self.business_name,
                deployed.name,
                http_endpoint.address,
                wsdl_url=wsdl_url,
                description=description,
                categories=categories,
                ttl=ttl if ttl is not None else self.lease_ttl,
            )
        except DiscoveryError as exc:
            self.fire_publish("publish-failed", service=deployed.name, reason=str(exc))
            raise DeploymentError(f"discovery publication failed: {exc}") from exc
        self.fire_publish(
            "published", service=deployed.name, via="discovery",
            access_point=http_endpoint.address, wsdl=wsdl_url,
            replicas=self.discovery.replicas_for(deployed.name),
            revision=int(record.get("revision", 1)),
        )

    def withdraw(self, deployed: DeployedService) -> None:
        self.discovery.withdraw(deployed.name)
        self.fire_publish("withdrawn", service=deployed.name, via="discovery")
