"""Epidemic service announcements with monotonic freshness counters.

The registry shards answer *queries*; gossip answers *staleness*.  Each
provider announces its service as a TTL'd advertisement carrying a
per-origin sequence number — the ``valid_time``/``available_index``
idiom of ATDECC's discovery protocol.  A re-announcement with a higher
sequence supersedes whatever a peer holds, so freshness is decided by
counter comparison, never by comparing clocks across nodes.  A stale
announcement (sequence ≤ what the receiver already has) is dropped and
*not* re-forwarded, which is what terminates the epidemic.

Withdrawal is an announcement with no endpoints: a tombstone that rides
the same freshness rule.

Frames travel on the dedicated :data:`GOSSIP_PORT` with a ``gossip``
meta tag, so simnet traces can filter the gossip overlay from service
traffic.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.discovery.ring import stable_hash
from repro.observability import metrics as obs_metrics
from repro.simnet.network import Frame, NetworkError, Node, NodeDownError
from repro.xmlkit import Element, QName, ns, parse, serialize

GOSSIP_PORT = "gossip"
DISCOVERY_NS = ns.DISCOVERY

DEFAULT_VALID_TIME = 30.0
DEFAULT_FANOUT = 3
DEFAULT_HOPS = 4


def _q(local: str) -> QName:
    return QName(DISCOVERY_NS, local, "disco")


class ServiceAnnouncement:
    """One gossiped fact: *origin* offers *service* at *endpoints*.

    ``seq`` is the origin's monotonic freshness counter; ``valid_time``
    is how long (seconds) a receiver may believe the fact.  Empty
    ``endpoints`` makes it a withdrawal tombstone.
    """

    def __init__(
        self,
        service: str,
        origin: str,
        seq: int,
        valid_time: float = DEFAULT_VALID_TIME,
        endpoints: Optional[list[str]] = None,
        service_key: str = "",
        wsdl_url: str = "",
        hops: int = DEFAULT_HOPS,
    ):
        self.service = service
        self.origin = origin
        self.seq = int(seq)
        self.valid_time = float(valid_time)
        self.endpoints = list(endpoints or [])
        self.service_key = service_key
        self.wsdl_url = wsdl_url
        self.hops = int(hops)

    @property
    def is_withdrawal(self) -> bool:
        return not self.endpoints

    def key(self) -> tuple[str, str]:
        return (self.service, self.origin)

    def to_element(self) -> Element:
        root = Element(
            _q("ServiceAnnouncement"),
            attributes={"seq": str(self.seq), "hops": str(self.hops)},
            nsdecls={"disco": DISCOVERY_NS},
        )
        root.add(_q("Service"), text=self.service)
        root.add(_q("Origin"), text=self.origin)
        root.add(_q("ValidTime"), text=f"{self.valid_time:g}")
        if self.service_key:
            root.add(_q("ServiceKey"), text=self.service_key)
        if self.wsdl_url:
            root.add(_q("WsdlUrl"), text=self.wsdl_url)
        for endpoint in self.endpoints:
            root.add(_q("Endpoint"), text=endpoint)
        return root

    def to_wire(self) -> str:
        return serialize(self.to_element())

    @classmethod
    def from_element(cls, elem: Element) -> "ServiceAnnouncement":
        return cls(
            elem.find_text("Service"),
            elem.find_text("Origin"),
            int(elem.get("seq") or 0),
            float(elem.find_text("ValidTime") or DEFAULT_VALID_TIME),
            [e.text for e in elem.find_all("Endpoint")],
            elem.find_text("ServiceKey"),
            elem.find_text("WsdlUrl"),
            int(elem.get("hops") or 0),
        )

    @classmethod
    def from_wire(cls, text: str) -> "ServiceAnnouncement":
        return cls.from_element(parse(text))

    def __repr__(self) -> str:
        kind = "withdraw" if self.is_withdrawal else "announce"
        return f"<ServiceAnnouncement {kind} {self.service}@{self.origin} seq={self.seq}>"


AnnouncementListener = Callable[[ServiceAnnouncement], None]


class MetricDigest:
    """A piggybacked metrics summary riding the gossip overlay (E17).

    The payload is opaque text (JSON, by convention of
    :mod:`repro.observability.cluster`) — gossip only guarantees the
    epidemic mechanics: per-origin monotonic ``seq`` freshness, hop
    budget, stale-drop termination.  One digest per origin is current
    at a time; a fresher one supersedes it everywhere.
    """

    def __init__(self, origin: str, seq: int, payload: str,
                 hops: int = DEFAULT_HOPS):
        self.origin = origin
        self.seq = int(seq)
        self.payload = payload
        self.hops = int(hops)

    def to_element(self) -> Element:
        root = Element(
            _q("MetricDigest"),
            attributes={"seq": str(self.seq), "hops": str(self.hops)},
            nsdecls={"disco": DISCOVERY_NS},
        )
        root.add(_q("Origin"), text=self.origin)
        root.add(_q("Payload"), text=self.payload)
        return root

    def to_wire(self) -> str:
        return serialize(self.to_element())

    @classmethod
    def from_element(cls, elem: Element) -> "MetricDigest":
        return cls(
            elem.find_text("Origin"),
            int(elem.get("seq") or 0),
            elem.find_text("Payload"),
            int(elem.get("hops") or 0),
        )

    def __repr__(self) -> str:
        return f"<MetricDigest {self.origin} seq={self.seq}>"


DigestListener = Callable[[MetricDigest], None]


class GossipNode:
    """The gossip agent on one network node.

    Peers form an explicit overlay (``link``); each accepted fresh
    announcement is re-forwarded to ``fanout`` neighbours picked
    round-robin (deterministic under the simulation kernel), with a hop
    budget bounding worst-case spread.
    """

    def __init__(
        self,
        node: Node,
        origin: Optional[str] = None,
        fanout: int = DEFAULT_FANOUT,
        hops: int = DEFAULT_HOPS,
        valid_time: float = DEFAULT_VALID_TIME,
    ):
        self.node = node
        self.origin = origin or node.id
        self.fanout = fanout
        self.hops = hops
        self.valid_time = valid_time
        self.peers: list[str] = []
        self._seqs: dict[str, int] = {}  # service -> last seq we announced
        #: (service, origin) -> (announcement, absolute expiry)
        self._store: dict[tuple[str, str], tuple[ServiceAnnouncement, float]] = {}
        self._listeners: list[AnnouncementListener] = []
        self._digest_seq = 0  # our own digest freshness counter
        self._digest_seqs: dict[str, int] = {}  # origin -> freshest seen
        self._digest_listeners: list[DigestListener] = []
        node.open_port(GOSSIP_PORT, self._on_frame)

    def _now(self) -> float:
        return self.node.network.kernel.now

    # -- membership ----------------------------------------------------
    def link(self, *node_ids: str) -> None:
        for node_id in node_ids:
            if node_id != self.node.id and node_id not in self.peers:
                self.peers.append(node_id)

    def unlink(self, node_id: str) -> None:
        if node_id in self.peers:
            self.peers.remove(node_id)

    def add_listener(self, listener: AnnouncementListener) -> None:
        self._listeners.append(listener)

    def add_digest_listener(self, listener: DigestListener) -> None:
        self._digest_listeners.append(listener)

    # -- announcing ----------------------------------------------------
    def announce(
        self,
        service: str,
        endpoints: list[str],
        service_key: str = "",
        wsdl_url: str = "",
        valid_time: Optional[float] = None,
        seq: Optional[int] = None,
    ) -> ServiceAnnouncement:
        """Announce (or re-announce) *service* from this origin.

        Without an explicit *seq* the per-service counter bumps; pass
        the registry revision as *seq* to keep gossip and replication
        freshness aligned.
        """
        if seq is None:
            seq = self._seqs.get(service, 0) + 1
        self._seqs[service] = max(seq, self._seqs.get(service, 0))
        announcement = ServiceAnnouncement(
            service,
            self.origin,
            seq,
            valid_time if valid_time is not None else self.valid_time,
            endpoints,
            service_key,
            wsdl_url,
            self.hops,
        )
        self._accept(announcement)
        self._forward(announcement, exclude=None)
        return announcement

    def withdraw(self, service: str) -> ServiceAnnouncement:
        """Tombstone: an announcement with no endpoints."""
        return self.announce(service, [], valid_time=self.valid_time)

    def announce_digest(self, payload: str,
                        seq: Optional[int] = None) -> MetricDigest:
        """Gossip a fresh metrics digest from this origin."""
        if seq is None:
            seq = self._digest_seq + 1
        self._digest_seq = max(seq, self._digest_seq)
        digest = MetricDigest(self.origin, seq, payload, self.hops)
        self._accept_digest(digest)
        self._forward_digest(digest, exclude=None)
        return digest

    # -- receiving -----------------------------------------------------
    def _on_frame(self, frame: Frame) -> None:
        try:
            root = parse(frame.payload)
        except Exception:
            obs_metrics.inc("discovery.gossip.malformed")
            return
        if root.name.local == "MetricDigest":
            digest = MetricDigest.from_element(root)
            if not digest.origin:
                obs_metrics.inc("discovery.gossip.malformed")
                return
            if not self._accept_digest(digest):
                return
            if digest.hops > 0:
                self._forward_digest(digest, exclude=frame.src)
            return
        announcement = ServiceAnnouncement.from_element(root)
        if not announcement.service or not announcement.origin:
            obs_metrics.inc("discovery.gossip.malformed")
            return
        if not self._accept(announcement):
            return  # stale: drop, do not re-forward (epidemic terminates)
        if announcement.hops > 0:
            self._forward(announcement, exclude=frame.src)

    def _accept(self, announcement: ServiceAnnouncement) -> bool:
        """Apply the freshness rule; True when the store advanced."""
        self._purge()
        held = self._store.get(announcement.key())
        if held is not None and announcement.seq <= held[0].seq:
            obs_metrics.inc("discovery.gossip.stale")
            return False
        expires = self._now() + announcement.valid_time
        self._store[announcement.key()] = (announcement, expires)
        obs_metrics.inc("discovery.gossip.accepted")
        for listener in list(self._listeners):
            listener(announcement)
        return True

    def _purge(self) -> None:
        now = self._now()
        expired = [key for key, (_, expires) in self._store.items() if expires <= now]
        for key in expired:
            del self._store[key]
            obs_metrics.inc("discovery.gossip.expired")

    # -- spreading -----------------------------------------------------
    def _forward(self, announcement: ServiceAnnouncement, exclude: Optional[str]) -> None:
        if not self.peers or not self.node.up:
            return
        forwarded = ServiceAnnouncement(
            announcement.service,
            announcement.origin,
            announcement.seq,
            announcement.valid_time,
            announcement.endpoints,
            announcement.service_key,
            announcement.wsdl_url,
            announcement.hops - 1,
        )
        wire = forwarded.to_wire()
        # deterministic but decorrelated neighbour choice: each node
        # starts its fanout window at a hash of (itself, announcement),
        # so different nodes spread one announcement through different
        # peers — aligned windows would leave parts of the overlay
        # permanently shadowed behind the stale-drop rule
        start = stable_hash(
            f"{self.node.id}|{announcement.service}|{announcement.origin}|{announcement.seq}"
        ) % len(self.peers)
        sent = 0
        for i in range(len(self.peers)):
            if sent >= self.fanout:
                break
            peer = self.peers[(start + i) % len(self.peers)]
            if peer == exclude or peer == announcement.origin:
                continue
            try:
                self.node.send(peer, GOSSIP_PORT, wire, gossip="announce")
                sent += 1
                obs_metrics.inc("discovery.gossip.sent")
            except (NodeDownError, NetworkError):
                break  # we are down; nothing more goes out this round

    def _accept_digest(self, digest: MetricDigest) -> bool:
        """Per-origin freshness rule for digests."""
        if digest.seq <= self._digest_seqs.get(digest.origin, 0):
            obs_metrics.inc("discovery.gossip.digest_stale")
            return False
        self._digest_seqs[digest.origin] = digest.seq
        obs_metrics.inc("discovery.gossip.digest_accepted")
        for listener in list(self._digest_listeners):
            listener(digest)
        return True

    def _forward_digest(self, digest: MetricDigest, exclude: Optional[str]) -> None:
        if not self.peers or not self.node.up:
            return
        forwarded = MetricDigest(
            digest.origin, digest.seq, digest.payload, digest.hops - 1)
        wire = forwarded.to_wire()
        start = stable_hash(
            f"{self.node.id}|digest|{digest.origin}|{digest.seq}"
        ) % len(self.peers)
        sent = 0
        for i in range(len(self.peers)):
            if sent >= self.fanout:
                break
            peer = self.peers[(start + i) % len(self.peers)]
            if peer == exclude or peer == digest.origin:
                continue
            try:
                self.node.send(peer, GOSSIP_PORT, wire, gossip="digest")
                sent += 1
                obs_metrics.inc("discovery.gossip.digest_sent")
            except (NodeDownError, NetworkError):
                break

    # -- reading -------------------------------------------------------
    def entries_for(self, service: str) -> list[ServiceAnnouncement]:
        """Live (unexpired, non-tombstone) announcements for *service*."""
        self._purge()
        return [
            announcement
            for (name, _), (announcement, _) in sorted(self._store.items())
            if name == service and not announcement.is_withdrawal
        ]

    def freshest_for(self, service: str) -> Optional[ServiceAnnouncement]:
        entries = self.entries_for(service)
        return max(entries, key=lambda a: a.seq) if entries else None

    @property
    def store_size(self) -> int:
        self._purge()
        return len(self._store)
