"""DiscoveryPlane — deploys and wires the whole discovery plane.

One object owns the registry shards (each a
:class:`~repro.uddi.service.UddiRegistryNode` on its own network node),
hands out :class:`~repro.discovery.client.DiscoveryClient` windows to
peers, and manages the gossip overlay membership.  ``attach`` swaps a
:class:`~repro.core.wspeer.WSPeer`'s locator and publisher for the
plane's facades, which is all an application needs to migrate.

``seed_service`` loads registries in-process (no SOAP frames), so
benchmarks can populate tens of thousands of services without paying
per-publish wire time.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.discovery.cache import RendezvousCache
from repro.discovery.client import DiscoveryClient
from repro.discovery.facade import DistributedUddiLocator, DistributedUddiPublisher
from repro.discovery.gossip import GossipNode
from repro.discovery.ring import HashRing
from repro.simnet.network import Network, Node
from repro.uddi.service import UddiRegistryNode


class DiscoveryPlane:
    """The deployed discovery plane: shards + replication + gossip."""

    def __init__(
        self,
        network: Network,
        shards: int = 4,
        replication: int = 2,
        registry_service_time: float = 0.0,
        gossip_fanout: int = 3,
        gossip_hops: int = 4,
        advert_valid_time: float = 30.0,
        cache_lifetime: float = 30.0,
        client_timeout: float = 30.0,
        node_prefix: str = "registry",
    ):
        self.network = network
        self.replication = min(max(1, replication), shards)
        self.gossip_fanout = gossip_fanout
        self.gossip_hops = gossip_hops
        self.advert_valid_time = advert_valid_time
        self.cache_lifetime = cache_lifetime
        self.client_timeout = client_timeout
        self.registries: dict[str, UddiRegistryNode] = {}
        self.registry_uris: dict[str, str] = {}
        for i in range(shards):
            node_id = f"{node_prefix}-{i}"
            node = network.add_node(node_id)
            node.service_time = registry_service_time
            registry_node = UddiRegistryNode(node)
            self.registries[node_id] = registry_node
            self.registry_uris[node_id] = registry_node.endpoint
        self.ring = HashRing(self.registry_uris)
        self._gossip: dict[str, GossipNode] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def join_gossip(self, node: Node, origin: Optional[str] = None) -> GossipNode:
        """Give *node* a gossip agent, fully meshed with existing members
        (the round-robin fanout keeps actual traffic bounded)."""
        existing = self._gossip.get(node.id)
        if existing is not None:
            return existing
        agent = GossipNode(
            node,
            origin=origin,
            fanout=self.gossip_fanout,
            hops=self.gossip_hops,
            valid_time=self.advert_valid_time,
        )
        for member in self._gossip.values():
            member.link(node.id)
            agent.link(member.node.id)
        self._gossip[node.id] = agent
        return agent

    def gossip_member(self, node_id: str) -> Optional[GossipNode]:
        return self._gossip.get(node_id)

    # ------------------------------------------------------------------
    # client windows
    # ------------------------------------------------------------------
    def client_for(self, node: Node, with_gossip: bool = True) -> DiscoveryClient:
        gossip = self.join_gossip(node) if with_gossip else None
        return DiscoveryClient(
            node,
            self.registry_uris,
            replication=self.replication,
            cache=RendezvousCache(
                lambda: node.network.kernel.now, lifetime=self.cache_lifetime
            ),
            gossip=gossip,
            timeout=self.client_timeout,
        )

    def attach(
        self,
        wspeer,
        business_name: str = "WSPeer",
        lease_ttl: Optional[float] = None,
        with_gossip: bool = True,
    ) -> DiscoveryClient:
        """Swap *wspeer*'s locator and publisher for the plane's facades.

        Existing ``locate``/``publish`` call-sites keep working; if the
        peer has failover enabled, health verdicts flow into both the
        quarantine and the rendezvous cache.
        """
        client = self.client_for(wspeer.node, with_gossip=with_gossip)
        locator = DistributedUddiLocator(client)
        publisher = DistributedUddiPublisher(
            client, business_name=business_name, lease_ttl=lease_ttl
        )
        wspeer.client.register_locator(locator)
        wspeer.server.register_publisher(publisher)
        if wspeer.failover is not None:
            locator.watch_health(wspeer.failover.health)
        wspeer.discovery = client
        return client

    # ------------------------------------------------------------------
    # bulk seeding (benchmarks)
    # ------------------------------------------------------------------
    def seed_service(
        self,
        name: str,
        access_point: str,
        wsdl_url: str = "",
        business_name: str = "WSPeer",
        ttl: Optional[float] = None,
    ) -> dict[str, Any]:
        """Register *name* straight into its replica set, in-process."""
        replicas = self.ring.nodes_for(name, self.replication)
        primary = self.registries[replicas[0]].registry
        businesses = primary.find_business(business_name)
        if businesses:
            business_key = businesses[0]["businessKey"]
        else:
            business_key = primary.save_business(business_name)["businessKey"]
        tmodel_keys = []
        if wsdl_url:
            tmodel = primary.save_tmodel(
                f"{name}-wsdlSpec", overview_url=wsdl_url, description="wsdlSpec"
            )
            tmodel_keys.append(tmodel["tModelKey"])
        service = primary.save_service(business_key, name, ttl=ttl)
        primary.save_binding(service["serviceKey"], access_point, tmodel_keys)
        record = primary.export_service(service["serviceKey"])
        for shard in replicas[1:]:
            self.registries[shard].registry.import_service(record)
        return record

    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> list[str]:
        return sorted(self.registries)

    def shard_node(self, shard_id: str) -> Node:
        return self.registries[shard_id].node

    def total_services(self) -> int:
        return sum(r.registry.service_count for r in self.registries.values())

    def __repr__(self) -> str:
        return (
            f"<DiscoveryPlane shards={len(self.registries)} "
            f"R={self.replication} gossip={len(self._gossip)}>"
        )
