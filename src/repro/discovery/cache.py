"""RendezvousCache — hot lookups never leave the peer.

A client-side cache of resolved services (endpoints + WSDL text +
revision), consulted before any registry round-trip.  Three freshness
signals keep it honest:

- **TTL**: entries expire after ``lifetime`` seconds (the soft-state
  rule every discovery artefact in this stack follows);
- **gossip**: an accepted announcement with a higher freshness counter
  updates the cached endpoints in place; a tombstone or an unknown
  service key drops the entry so the next lookup refetches;
- **supervision**: a dead-health verdict for an endpoint strips it from
  every cached entry (and drops entries left empty).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.observability import metrics as obs_metrics


class CachedService:
    """One resolved service instance (a provider of a service name)."""

    __slots__ = ("service_key", "endpoints", "wsdl_text", "revision")

    def __init__(
        self, service_key: str, endpoints: list[str], wsdl_text: str, revision: int
    ):
        self.service_key = service_key
        self.endpoints = list(endpoints)
        self.wsdl_text = wsdl_text
        self.revision = revision


class RendezvousCache:
    """Per-client cache of resolved service names."""

    def __init__(self, clock: Callable[[], float], lifetime: float = 30.0):
        self._clock = clock
        self.lifetime = lifetime
        #: service name -> {service_key -> CachedService}
        self._entries: dict[str, dict[str, CachedService]] = {}
        self._expires: dict[str, float] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def _now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    def get(self, service: str) -> Optional[list[CachedService]]:
        """Cached resolutions of *service*, or None on miss/expiry."""
        expires = self._expires.get(service)
        if expires is None or expires <= self._now():
            self._drop(service)
            self.misses += 1
            obs_metrics.inc("discovery.cache.misses")
            return None
        items = self._entries.get(service)
        if not items:
            self.misses += 1
            obs_metrics.inc("discovery.cache.misses")
            return None
        self.hits += 1
        obs_metrics.inc("discovery.cache.hits")
        return [items[key] for key in sorted(items)]

    def put(
        self,
        service: str,
        service_key: str,
        endpoints: list[str],
        wsdl_text: str,
        revision: int,
    ) -> None:
        items = self._entries.setdefault(service, {})
        held = items.get(service_key)
        if held is not None and revision < held.revision:
            return  # never cache something staler than what we hold
        items[service_key] = CachedService(service_key, endpoints, wsdl_text, revision)
        self._expires[service] = self._now() + self.lifetime
        obs_metrics.set_gauge("discovery.cache.size", len(self._entries))

    # ------------------------------------------------------------------
    def invalidate(self, service: str) -> None:
        if self._drop(service):
            self.invalidations += 1
            obs_metrics.inc("discovery.cache.invalidations")

    def _drop(self, service: str) -> bool:
        had = service in self._entries
        self._entries.pop(service, None)
        self._expires.pop(service, None)
        if had:
            obs_metrics.set_gauge("discovery.cache.size", len(self._entries))
        return had

    def invalidate_endpoint(self, address: str) -> None:
        """Strip *address* everywhere (supervision said it is dead)."""
        emptied: list[str] = []
        touched = False
        for service, items in self._entries.items():
            for cached in items.values():
                if address in cached.endpoints:
                    cached.endpoints = [e for e in cached.endpoints if e != address]
                    touched = True
            dead_keys = [k for k, c in items.items() if not c.endpoints]
            for key in dead_keys:
                del items[key]
            if not items:
                emptied.append(service)
        for service in emptied:
            self._drop(service)
        if touched:
            self.invalidations += 1
            obs_metrics.inc("discovery.cache.invalidations")

    # ------------------------------------------------------------------
    def on_announcement(self, announcement: Any) -> None:
        """Gossip feed: reconcile a cached entry with fresher news.

        Same service key with a higher counter updates endpoints in
        place (and re-arms the TTL); a tombstone removes the provider; a
        service key we have never resolved invalidates the whole entry,
        forcing the next lookup to refetch the WSDL from the registry.
        """
        items = self._entries.get(announcement.service)
        if items is None:
            return  # not cached: nothing to reconcile
        held = items.get(announcement.service_key) if announcement.service_key else None
        if held is None:
            # news about a provider we don't hold — our picture of this
            # service is incomplete, so refetch on next lookup
            self.invalidate(announcement.service)
            return
        if announcement.seq <= held.revision:
            return  # not fresher than what we hold
        if announcement.is_withdrawal:
            del items[announcement.service_key]
            if not items:
                self._drop(announcement.service)
            self.invalidations += 1
            obs_metrics.inc("discovery.cache.invalidations")
            return
        held.endpoints = list(announcement.endpoints)
        held.revision = announcement.seq
        self._expires[announcement.service] = self._now() + max(
            self.lifetime, announcement.valid_time
        )
        obs_metrics.inc("discovery.cache.refreshed")

    def watch_health(self, monitor) -> None:
        """Dead-health verdicts invalidate cached endpoints."""
        from repro.supervision.health import DEAD

        def on_verdict(address: str, verdict: str) -> None:
            if verdict == DEAD:
                self.invalidate_endpoint(address)

        monitor.add_verdict_listener(on_verdict)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._expires.clear()
