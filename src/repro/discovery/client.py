"""DiscoveryClient — sharded, replicated, cached UDDI access.

One client object per peer.  It owns the consistent-hash ring over the
registry shards, a :class:`~repro.discovery.cache.RendezvousCache`, and
(optionally) the peer's gossip agent, and it implements the plane's
three verbs:

``publish``
    Routes to the service's replica set (primary first, failing over to
    the next replica when the primary is unreachable), replicates the
    resulting record to the remaining replicas, and gossips an
    announcement whose freshness counter is the registry revision.

``resolve``
    Cache first; on a miss, queries all R replicas of the home shard,
    merges replies by revision, read-repairs stale or missing replicas,
    fetches WSDL, and caches the result.  Wildcard patterns scatter to
    every shard instead (no single shard owns a pattern).

``withdraw``
    Deletes from every replica and gossips a tombstone.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.discovery.cache import RendezvousCache
from repro.discovery.gossip import GossipNode
from repro.discovery.ring import HashRing
from repro.observability import metrics as obs_metrics
from repro.simnet.network import Node
from repro.transport.base import TransportError
from repro.transport.http import HttpClient, HttpRequest
from repro.transport.uri import Uri
from repro.uddi.client import UddiClient

EventHook = Callable[..., None]


class DiscoveryError(Exception):
    """The plane could not serve a request (all replicas unreachable)."""


class ResolvedService:
    """One provider of a service name, fully resolved."""

    __slots__ = ("name", "service_key", "endpoints", "wsdl_text", "revision", "from_cache")

    def __init__(self, name, service_key, endpoints, wsdl_text, revision, from_cache):
        self.name = name
        self.service_key = service_key
        self.endpoints = list(endpoints)
        self.wsdl_text = wsdl_text
        self.revision = revision
        self.from_cache = from_cache

    def __repr__(self) -> str:
        via = "cache" if self.from_cache else "registry"
        return f"<ResolvedService {self.name} rev={self.revision} via {via}>"


class DiscoveryClient:
    """A peer's window onto the discovery plane."""

    def __init__(
        self,
        node: Node,
        registry_uris: dict[str, str],
        replication: int = 2,
        cache: Optional[RendezvousCache] = None,
        gossip: Optional[GossipNode] = None,
        timeout: float = 30.0,
        cache_lifetime: float = 30.0,
    ):
        self.node = node
        self.registry_uris = dict(registry_uris)
        self.replication = max(1, replication)
        self.ring = HashRing(self.registry_uris)
        self.cache = cache if cache is not None else RendezvousCache(
            lambda: node.network.kernel.now, lifetime=cache_lifetime
        )
        self.gossip = gossip
        if gossip is not None:
            gossip.add_listener(self.cache.on_announcement)
        self.http = HttpClient(node, timeout)
        self._clients: dict[str, UddiClient] = {}
        self._timeout = timeout
        #: set by the locator facade so plane activity lands in the
        #: discovery event stream / trace like every other locator's
        self.on_event: Optional[EventHook] = None

    def _emit(self, kind: str, **fields: Any) -> None:
        if self.on_event is not None:
            self.on_event(kind, **fields)

    def _client(self, shard: str) -> UddiClient:
        client = self._clients.get(shard)
        if client is None:
            client = UddiClient(self.node, self.registry_uris[shard], self._timeout)
            self._clients[shard] = client
        return client

    def replicas_for(self, service_name: str) -> list[str]:
        """The replica set (shard ids, primary first) owning *service_name*."""
        return self.ring.nodes_for(service_name, self.replication)

    # ------------------------------------------------------------------
    # publish
    # ------------------------------------------------------------------
    def publish(
        self,
        business_name: str,
        service_name: str,
        access_point: str,
        wsdl_url: str = "",
        description: str = "",
        categories: Optional[list[dict]] = None,
        ttl: Optional[float] = None,
    ) -> dict[str, Any]:
        """Publish to the home shard, replicate, announce.

        The first reachable replica acts as primary (so a dead shard
        never blocks publication); the record it mints — revision
        included — is imported verbatim by the surviving replicas.
        """
        replicas = self.replicas_for(service_name)
        obs_metrics.inc("discovery.publishes")
        record: Optional[dict[str, Any]] = None
        acting_primary: Optional[str] = None
        last_error: Optional[Exception] = None
        for shard in replicas:
            client = self._client(shard)
            try:
                detail = client.publish_service(
                    business_name,
                    service_name,
                    access_point,
                    wsdl_url=wsdl_url,
                    description=description,
                    categories=categories,
                    ttl=ttl,
                )
                record = client.export_service(detail["serviceKey"])
                acting_primary = shard
                break
            except TransportError as exc:
                last_error = exc
                obs_metrics.inc("discovery.publish_failovers")
                continue
        if record is None or acting_primary is None:
            raise DiscoveryError(
                f"no replica of {service_name!r} reachable: {last_error}"
            )
        for shard in replicas:
            if shard == acting_primary:
                continue
            try:
                self._client(shard).import_service(record)
            except TransportError:
                pass  # a dead replica catches up via read-repair later
        if self.gossip is not None:
            service = record["service"]
            self.gossip.announce(
                service_name,
                [b["accessPoint"] for b in service.get("bindingTemplates", [])],
                service_key=service["serviceKey"],
                wsdl_url=wsdl_url,
                seq=int(record.get("revision", 1)),
            )
        return record

    def withdraw(self, service_name: str) -> int:
        """Delete *service_name* from every replica; gossip a tombstone."""
        removed = 0
        for shard in self.replicas_for(service_name):
            client = self._client(shard)
            try:
                for found in client.call("find_service", name_pattern=service_name):
                    client.call("delete_service", service_key=found["serviceKey"])
                    removed += 1
            except TransportError:
                continue
        self.cache.invalidate(service_name)
        if self.gossip is not None:
            self.gossip.withdraw(service_name)
        return removed

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup_records(
        self,
        name_pattern: str,
        categories: Optional[list[dict]] = None,
        max_rows: int = 0,
    ) -> list[dict[str, Any]]:
        """Replication records for *name_pattern*, replica-merged.

        Exact names query the home shard's replica set and read-repair
        divergent replies; wildcard patterns scatter to every shard.
        """
        obs_metrics.inc("discovery.lookups")
        if "%" in name_pattern:
            return self._scatter(name_pattern, categories, max_rows)
        replicas = self.replicas_for(name_pattern)
        replies: dict[str, list[dict[str, Any]]] = {}
        last_error: Optional[Exception] = None
        for shard in replicas:
            try:
                replies[shard] = self._client(shard).find_service_records(
                    name_pattern, categories, max_rows
                )
            except TransportError as exc:
                last_error = exc
        if not replies:
            raise DiscoveryError(
                f"no replica of {name_pattern!r} reachable: {last_error}"
            )
        merged = self._merge(replies)
        self._read_repair(name_pattern, replies, merged)
        return list(merged.values())

    def _scatter(
        self,
        name_pattern: str,
        categories: Optional[list[dict]],
        max_rows: int,
    ) -> list[dict[str, Any]]:
        replies: dict[str, list[dict[str, Any]]] = {}
        for shard in self.ring.nodes:
            try:
                replies[shard] = self._client(shard).find_service_records(
                    name_pattern, categories, max_rows
                )
            except TransportError:
                continue
        if not replies:
            raise DiscoveryError(f"no registry shard reachable for {name_pattern!r}")
        return list(self._merge(replies).values())

    @staticmethod
    def _merge(
        replies: dict[str, list[dict[str, Any]]]
    ) -> dict[str, dict[str, Any]]:
        """serviceKey -> freshest record across all replying shards."""
        merged: dict[str, dict[str, Any]] = {}
        for records in replies.values():
            for record in records:
                key = record["service"]["serviceKey"]
                held = merged.get(key)
                if held is None or int(record.get("revision", 0)) > int(
                    held.get("revision", 0)
                ):
                    merged[key] = record
        return merged

    def _read_repair(
        self,
        service_name: str,
        replies: dict[str, list[dict[str, Any]]],
        merged: dict[str, dict[str, Any]],
    ) -> None:
        """Write the freshest record back to stale or missing replicas."""
        for shard, records in replies.items():
            held = {
                r["service"]["serviceKey"]: int(r.get("revision", 0)) for r in records
            }
            client = self._client(shard)
            for key, record in merged.items():
                if held.get(key, -1) >= int(record.get("revision", 0)):
                    continue
                try:
                    client.import_service(record)
                    obs_metrics.inc("discovery.read_repairs")
                    self._emit(
                        "read-repair", service=service_name, shard=shard,
                        revision=int(record.get("revision", 0)),
                    )
                except TransportError:
                    continue

    # ------------------------------------------------------------------
    # resolve (records + WSDL + cache)
    # ------------------------------------------------------------------
    def resolve(
        self, service_name: str, categories: Optional[list[dict]] = None
    ) -> list[ResolvedService]:
        """Fully resolve *service_name*: endpoints + WSDL text.

        Exact, uncategorised names are answered from the rendezvous
        cache when possible — zero network frames on a hit.
        """
        cacheable = "%" not in service_name and not categories
        if cacheable:
            cached = self.cache.get(service_name)
            if cached is not None:
                self._emit("cache-hit", service=service_name, providers=len(cached))
                return [
                    ResolvedService(
                        service_name, c.service_key, c.endpoints, c.wsdl_text,
                        c.revision, True,
                    )
                    for c in cached
                ]
        resolved: list[ResolvedService] = []
        for record in self._dedupe(self.lookup_records(service_name, categories)):
            item = self._resolve_record(record)
            if item is None:
                continue
            resolved.append(item)
            if cacheable:
                self.cache.put(
                    item.name, item.service_key, item.endpoints,
                    item.wsdl_text, item.revision,
                )
        return resolved

    @staticmethod
    def _dedupe(records: list[dict[str, Any]]) -> list[dict[str, Any]]:
        """Collapse records that describe the same provider under
        different keys (a publish that failed over mints a new key);
        identity is (name, endpoint set), freshest revision wins."""
        best: dict[tuple, dict[str, Any]] = {}
        for record in records:
            service = record["service"]
            identity = (
                service["name"],
                tuple(sorted(
                    b["accessPoint"] for b in service.get("bindingTemplates", [])
                )),
            )
            held = best.get(identity)
            if held is None or int(record.get("revision", 0)) > int(
                held.get("revision", 0)
            ):
                best[identity] = record
        return [best[k] for k in sorted(best)]

    def _resolve_record(self, record: dict[str, Any]) -> Optional[ResolvedService]:
        service = record["service"]
        endpoints = [
            b["accessPoint"] for b in service.get("bindingTemplates", [])
        ]
        if not endpoints:
            return None
        wsdl_url = next(
            (t["overviewURL"] for t in record.get("tModels", []) if t.get("overviewURL")),
            "",
        )
        wsdl_text = ""
        if wsdl_url:
            try:
                wsdl_text = self._fetch(wsdl_url)
            except TransportError:
                return None
        return ResolvedService(
            service["name"], service["serviceKey"], endpoints, wsdl_text,
            int(record.get("revision", 0)), False,
        )

    def _fetch(self, url: str) -> str:
        uri = Uri.parse(url)
        response = self.http.request(
            uri.host, uri.port or 80, HttpRequest("GET", "/" + uri.path)
        )
        if not response.ok:
            raise TransportError(f"GET {url} -> {response.status}")
        return response.body

    # ------------------------------------------------------------------
    # async resolve (the event-driven path benchmarks drive)
    # ------------------------------------------------------------------
    def resolve_async(
        self,
        service_name: str,
        callback: Callable[[list[ResolvedService], Optional[Exception]], None],
    ) -> None:
        """Event-driven :meth:`resolve` for exact names.

        A cache hit completes via ``kernel.call_soon`` (still zero
        network frames, but never re-entrantly under the caller).
        """
        cached = self.cache.get(service_name)
        if cached is not None:
            self._emit("cache-hit", service=service_name, providers=len(cached))
            items = [
                ResolvedService(
                    service_name, c.service_key, c.endpoints, c.wsdl_text,
                    c.revision, True,
                )
                for c in cached
            ]
            self.node.network.kernel.call_soon(callback, items, None)
            return
        obs_metrics.inc("discovery.lookups")
        replicas = self.replicas_for(service_name)
        state: dict[str, Any] = {"replies": {}, "outstanding": len(replicas)}

        def on_records(shard: str, records, error) -> None:
            if error is None and records is not None:
                state["replies"][shard] = records
            state["outstanding"] -= 1
            if state["outstanding"] == 0:
                self._finish_lookup_async(service_name, state["replies"], callback)

        for shard in replicas:
            self._client(shard).call_async(
                "find_service_records",
                (lambda s: lambda records, error: on_records(s, records, error))(shard),
                name_pattern=service_name,
                category_bag=[],
                max_rows=0,
            )

    def _finish_lookup_async(self, service_name, replies, callback) -> None:
        if not replies:
            callback([], DiscoveryError(f"no replica of {service_name!r} reachable"))
            return
        merged = self._merge(replies)
        # repair in the background; the caller's answer doesn't wait on it
        for shard, records in replies.items():
            held = {
                r["service"]["serviceKey"]: int(r.get("revision", 0)) for r in records
            }
            for key, record in merged.items():
                if held.get(key, -1) >= int(record.get("revision", 0)):
                    continue
                obs_metrics.inc("discovery.read_repairs")
                self._emit(
                    "read-repair", service=service_name, shard=shard,
                    revision=int(record.get("revision", 0)),
                )
                self._client(shard).call_async(
                    "import_service", lambda result, error: None, record=record
                )
        records = self._dedupe(list(merged.values()))
        items: list[ResolvedService] = []
        pending = {"count": 0, "done_listing": False}

        def finish_one() -> None:
            pending["count"] -= 1
            maybe_done()

        def maybe_done() -> None:
            if pending["done_listing"] and pending["count"] == 0:
                for item in items:
                    self.cache.put(
                        item.name, item.service_key, item.endpoints,
                        item.wsdl_text, item.revision,
                    )
                callback(items, None)

        for record in records:
            service = record["service"]
            endpoints = [b["accessPoint"] for b in service.get("bindingTemplates", [])]
            if not endpoints:
                continue
            wsdl_url = next(
                (t["overviewURL"] for t in record.get("tModels", [])
                 if t.get("overviewURL")),
                "",
            )
            if not wsdl_url:
                continue
            pending["count"] += 1
            uri = Uri.parse(wsdl_url)

            def on_wsdl(response, error, _record=record, _eps=endpoints) -> None:
                if error is None and response.ok:
                    items.append(
                        ResolvedService(
                            _record["service"]["name"],
                            _record["service"]["serviceKey"],
                            _eps,
                            response.body,
                            int(_record.get("revision", 0)),
                            False,
                        )
                    )
                finish_one()

            self.http.request_async(
                uri.host, uri.port or 80, HttpRequest("GET", "/" + uri.path), on_wsdl
            )
        pending["done_listing"] = True
        if pending["count"] == 0:
            callback([], None)
