"""Consistent-hash ring: which registry shard owns a service name.

Every client hashes the same way, so publisher and locator agree on a
service's home shard without coordination.  Virtual nodes smooth the
key distribution; replica sets walk clockwise from the owning point so
each shard's data survives R-1 node losses.

The property that matters (and that the tests pin): adding a shard to
an N-node ring remaps only ~1/(N+1) of the keyspace — everything else
keeps its owner, so a scale-out does not invalidate the cluster.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable


def stable_hash(value: str) -> int:
    """A process-independent 64-bit hash (``hash()`` is salted per run,
    which would scatter keys differently on every peer)."""
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing with virtual nodes.

    ``vnodes`` points per physical node keeps the per-node share of the
    keyspace within a few percent of 1/N.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 64):
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._hashes: list[int] = []  # sorted vnode positions
        self._owners: list[str] = []  # owner per position (parallel list)
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.vnodes):
            position = stable_hash(f"{node}#{i}")
            at = bisect.bisect(self._hashes, position)
            self._hashes.insert(at, position)
            self._owners.insert(at, node)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [(h, o) for h, o in zip(self._hashes, self._owners) if o != node]
        self._hashes = [h for h, _ in keep]
        self._owners = [o for _, o in keep]

    # ------------------------------------------------------------------
    def node_for(self, key: str) -> str:
        """The shard owning *key* (first vnode clockwise of its hash)."""
        if not self._hashes:
            raise ValueError("empty ring")
        at = bisect.bisect(self._hashes, stable_hash(key)) % len(self._hashes)
        return self._owners[at]

    def nodes_for(self, key: str, n: int) -> list[str]:
        """The replica set for *key*: the first *n* distinct shards met
        walking clockwise from its hash (primary first)."""
        if not self._hashes:
            raise ValueError("empty ring")
        n = min(n, len(self._nodes))
        start = bisect.bisect(self._hashes, stable_hash(key))
        replicas: list[str] = []
        for i in range(len(self._hashes)):
            owner = self._owners[(start + i) % len(self._hashes)]
            if owner not in replicas:
                replicas.append(owner)
                if len(replicas) == n:
                    break
        return replicas
