"""repro.discovery — the distributed discovery plane (E12).

The paper's discovery story is a single UDDI registry on the HTTP side
and flooded advertisements on the P2PS side; E1 measured the registry
as the centralised bottleneck it is.  This package scales discovery out
while keeping every existing ``locate``/``publish`` call-site intact:

- :mod:`ring` — a consistent-hash ring shards service names across N
  registry nodes; each shard is replicated R-ways.
- :mod:`gossip` — TTL'd service announcements with monotonic freshness
  counters spread epidemically between peers, so re-announcements
  supersede stale entries without any clock comparison.
- :mod:`cache` — a client-side :class:`RendezvousCache` consulted
  before any registry round-trip, kept fresh by gossip and invalidated
  by supervision dead-health verdicts.
- :mod:`client` — :class:`DiscoveryClient`, the replication-aware
  publish/lookup engine (read-repair on divergent replicas).
- :mod:`facade` — locator/publisher adapters that slot into
  :class:`~repro.core.wspeer.WSPeer` unchanged.
- :mod:`plane` — :class:`DiscoveryPlane`, the deployment harness that
  builds registries + gossip mesh and attaches peers.
"""

from repro.discovery.cache import RendezvousCache
from repro.discovery.client import DiscoveryClient
from repro.discovery.facade import DistributedUddiLocator, DistributedUddiPublisher
from repro.discovery.gossip import GOSSIP_PORT, GossipNode, ServiceAnnouncement
from repro.discovery.plane import DiscoveryPlane
from repro.discovery.ring import HashRing, stable_hash

__all__ = [
    "DiscoveryClient",
    "DiscoveryPlane",
    "DistributedUddiLocator",
    "DistributedUddiPublisher",
    "GossipNode",
    "GOSSIP_PORT",
    "HashRing",
    "RendezvousCache",
    "ServiceAnnouncement",
    "stable_hash",
]
