"""The Triana analogue: discover → toolbox → wire → choreograph.

"Users discover and search for Web services by quizzing repositories
(e.g., UDDI) or searching through P2P networks for WSDL files.  When
the matching Web services are located, they appear as standard tools
within a Triana toolbox.  Users can drag these icons onto a scratchpad
and wire them together to create Web service workflows." (§V)

Here the scratchpad is a :class:`Workflow` DAG; each task binds a
:class:`Tool` (service handle + operation) and maps its parameters to
constants or upstream task outputs.  The :class:`WorkflowEngine`
topologically orders the graph and invokes each task through WSPeer —
independent tasks are dispatched asynchronously in the same wave, so
parallel branches overlap on the (virtual) wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.handle import ServiceHandle
from repro.core.query import ServiceQuery
from repro.core.wspeer import WSPeer


class WorkflowError(Exception):
    """Workflow construction or execution failure."""


@dataclass(frozen=True)
class Tool:
    """One operation of one discovered service — a toolbox icon."""

    name: str
    handle: ServiceHandle
    operation: str

    @property
    def qualified_name(self) -> str:
        return f"{self.handle.name}.{self.operation}"


class Toolbox:
    """Discovered services presented as invocable tools."""

    def __init__(self, wspeer: WSPeer):
        self.wspeer = wspeer
        self._tools: dict[str, Tool] = {}

    def discover(self, query: ServiceQuery | str, timeout: float = 10.0) -> list[Tool]:
        """Locate services and register every operation as a tool."""
        new_tools = []
        for handle in self.wspeer.locate(query, timeout=timeout, expect=1):
            for op_name in handle.operation_names():
                tool = Tool(f"{handle.name}.{op_name}", handle, op_name)
                self._tools[tool.name] = tool
                new_tools.append(tool)
        return new_tools

    def add_local(self, service_name: str) -> list[Tool]:
        """Register this peer's own deployed service as tools."""
        handle = self.wspeer.local_handle(service_name)
        tools = []
        for op_name in handle.operation_names():
            tool = Tool(f"{handle.name}.{op_name}", handle, op_name)
            self._tools[tool.name] = tool
            tools.append(tool)
        return tools

    def tool(self, name: str) -> Tool:
        tool = self._tools.get(name)
        if tool is None:
            raise WorkflowError(f"no tool named {name!r} in the toolbox")
        return tool

    @property
    def tool_names(self) -> list[str]:
        return sorted(self._tools)


@dataclass
class TaskSpec:
    """One node on the scratchpad."""

    task_id: str
    tool: Tool
    # parameter name -> constant value
    constants: dict[str, Any] = field(default_factory=dict)
    # parameter name -> upstream task id (wired connection)
    wires: dict[str, str] = field(default_factory=dict)


class Workflow:
    """A DAG of service invocations."""

    def __init__(self, name: str = "workflow"):
        self.name = name
        self.tasks: dict[str, TaskSpec] = {}

    def add_task(
        self,
        task_id: str,
        tool: Tool,
        constants: Optional[dict[str, Any]] = None,
        wires: Optional[dict[str, str]] = None,
    ) -> TaskSpec:
        """Add a task; *wires* maps parameters to upstream task ids."""
        if task_id in self.tasks:
            raise WorkflowError(f"duplicate task id {task_id!r}")
        spec = TaskSpec(task_id, tool, dict(constants or {}), dict(wires or {}))
        for upstream in spec.wires.values():
            if upstream not in self.tasks:
                raise WorkflowError(
                    f"task {task_id!r} wires to unknown task {upstream!r} "
                    "(add upstream tasks first)"
                )
        self.tasks[task_id] = spec
        return spec

    def waves(self) -> list[list[TaskSpec]]:
        """Topological order, grouped into parallel waves."""
        remaining = dict(self.tasks)
        done: set[str] = set()
        waves: list[list[TaskSpec]] = []
        while remaining:
            wave = [
                spec
                for spec in remaining.values()
                if all(up in done for up in spec.wires.values())
            ]
            if not wave:
                raise WorkflowError("workflow contains a dependency cycle")
            for spec in wave:
                del remaining[spec.task_id]
                done.add(spec.task_id)
            waves.append(wave)
        return waves

    @property
    def task_count(self) -> int:
        return len(self.tasks)


class WorkflowEngine:
    """Choreographs a workflow through one WSPeer client."""

    def __init__(self, wspeer: WSPeer, timeout: float = 30.0):
        self.wspeer = wspeer
        self.timeout = timeout

    def run(self, workflow: Workflow) -> dict[str, Any]:
        """Execute; returns task id → result.

        Tasks inside a wave are dispatched asynchronously together and
        awaited as a group, so parallel branches overlap in time.
        """
        results: dict[str, Any] = {}
        kernel = self.wspeer.node.network.kernel
        for wave in workflow.waves():
            pending: dict[str, dict[str, Any]] = {}
            for spec in wave:
                args = dict(spec.constants)
                for param, upstream in spec.wires.items():
                    args[param] = results[upstream]
                box: dict[str, Any] = {}
                pending[spec.task_id] = box

                def callback(result: Any, error: Optional[Exception], box=box) -> None:
                    box["result"] = result
                    box["error"] = error

                self.wspeer.invoke_async(
                    spec.tool.handle, spec.tool.operation, args, callback,
                    timeout=self.timeout,
                )
            kernel.pump_until(
                lambda: all("result" in box or "error" in box for box in pending.values()),
                timeout=self.timeout * max(1, len(wave)),
            )
            for task_id, box in pending.items():
                if box.get("error") is not None:
                    raise WorkflowError(
                        f"task {task_id!r} failed: {box['error']}"
                    ) from box["error"]
                results[task_id] = box.get("result")
        return results
