"""The SC2004 Cactus scenario (§V).

"A Triana unit was created that used WSPeer to launch a Web service,
having first launched a Cactus simulation on a distributed resource.
Cactus generated output files ... which showed state changes during the
solving of a hyperbolic partial differential equation using finite
differences.  These were passed back to Triana via the WSPeer generated
Web service in real-time as the simulation iterated through its time
steps."

Reproduction: :class:`CactusSimulation` solves the 1-D wave equation
(a hyperbolic PDE) with explicit finite differences, vectorised with
numpy per the HPC guides; :class:`ResultCollector` is the stateful
object the *consumer* deploys at runtime through WSPeer's lightweight
container; :func:`run_cactus_scenario` wires them: the remote resource
invokes the consumer's service once per timestep, streaming snapshots
back in real (virtual) time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.wspeer import WSPeer


class CactusSimulation:
    """Explicit finite-difference solver for u_tt = c² u_xx on [0, 1].

    Fixed (Dirichlet) boundaries; initial condition is a Gaussian pulse.
    The timestep respects the CFL condition (courant <= 1).
    """

    def __init__(
        self,
        grid_points: int = 128,
        courant: float = 0.9,
        wave_speed: float = 1.0,
        pulse_center: float = 0.5,
        pulse_width: float = 0.05,
    ):
        if grid_points < 8:
            raise ValueError("grid too small")
        if not 0 < courant <= 1.0:
            raise ValueError("courant number must be in (0, 1] for stability")
        self.n = grid_points
        self.c = wave_speed
        self.dx = 1.0 / (grid_points - 1)
        self.dt = courant * self.dx / wave_speed
        self.courant2 = courant**2
        x = np.linspace(0.0, 1.0, grid_points)
        self.u = np.exp(-((x - pulse_center) ** 2) / (2 * pulse_width**2))
        self.u[0] = self.u[-1] = 0.0
        self.u_prev = self.u.copy()  # zero initial velocity
        self.timestep = 0

    def step(self) -> np.ndarray:
        """Advance one timestep (vectorised update); returns the field."""
        u_next = np.empty_like(self.u)
        u_next[1:-1] = (
            2.0 * self.u[1:-1]
            - self.u_prev[1:-1]
            + self.courant2 * (self.u[2:] - 2.0 * self.u[1:-1] + self.u[:-2])
        )
        u_next[0] = u_next[-1] = 0.0
        self.u_prev = self.u
        self.u = u_next
        self.timestep += 1
        return self.u

    def energy(self) -> float:
        """Discrete energy (kinetic + strain); conserved up to O(dt²)."""
        velocity = (self.u - self.u_prev) / self.dt
        strain = np.diff(self.u) / self.dx
        return float(
            0.5 * np.sum(velocity**2) * self.dx + 0.5 * self.c**2 * np.sum(strain**2) * self.dx
        )

    def snapshot(self, sample_points: int = 16) -> dict:
        """A compact JPEG-analogue of the state: sampled field + stats."""
        idx = np.linspace(0, self.n - 1, sample_points).astype(int)
        return {
            "timestep": self.timestep,
            "samples": [float(v) for v in self.u[idx]],
            "max": float(np.abs(self.u).max()),
            "energy": self.energy(),
        }


class ResultCollector:
    """The stateful object the consumer exposes as a Web service.

    Each ``receive_snapshot`` call appends a timestep's output — "passed
    back to Triana via the WSPeer generated Web service in real-time".
    """

    def __init__(self):
        self.snapshots: list[dict] = []
        self.arrival_times: list[float] = []
        self._clock = lambda: 0.0

    def receive_snapshot(self, snapshot: dict) -> int:
        """Store one snapshot; returns the count so far (an ack)."""
        self.snapshots.append(snapshot)
        self.arrival_times.append(self._clock())
        return len(self.snapshots)

    def latest(self) -> dict:
        return self.snapshots[-1] if self.snapshots else {}

    @property
    def count(self) -> int:
        return len(self.snapshots)


@dataclass
class CactusRunResult:
    """What the scenario produced, for assertions and bench tables."""

    timesteps: int
    received: int
    energy_drift: float
    arrival_times: list[float] = field(default_factory=list)


def run_cactus_scenario(
    consumer: WSPeer,
    resource: WSPeer,
    timesteps: int = 50,
    steps_per_snapshot: int = 1,
    grid_points: int = 128,
    service_name: str = "CactusMonitor",
) -> tuple[CactusRunResult, ResultCollector]:
    """Run the SC2004 demo on the simulated network.

    1. *consumer* deploys :class:`ResultCollector` at runtime (the
       "WSPeer generated Web service") and hands its handle out;
    2. *resource* runs the Cactus simulation, invoking
       ``receive_snapshot`` after each (batch of) timestep(s);
    3. returns the run summary plus the live collector.
    """
    collector = ResultCollector()
    collector._clock = lambda: consumer.node.network.kernel.now
    consumer.deploy(collector, name=service_name)
    handle = consumer.local_handle(service_name)

    simulation = CactusSimulation(grid_points=grid_points)
    initial_energy = simulation.energy()
    for _ in range(timesteps):
        for _ in range(steps_per_snapshot):
            simulation.step()
        resource.invoke(handle, "receive_snapshot", snapshot=simulation.snapshot())
    final_energy = simulation.energy()
    drift = abs(final_energy - initial_energy) / max(initial_energy, 1e-12)

    result = CactusRunResult(
        timesteps=simulation.timestep,
        received=collector.count,
        energy_drift=drift,
        arrival_times=list(collector.arrival_times),
    )
    return result, collector
