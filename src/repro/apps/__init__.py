"""Application scenarios from §V of the paper.

``workflow``
    The Triana analogue: a toolbox of discovered services, wired into
    DAG workflows and choreographed through WSPeer.
``cactus``
    The SC2004 demo: a finite-difference PDE simulation on a remote
    resource streaming per-timestep output back through a Web service
    the consumer deployed *at runtime*.
``catnets``
    The Catnets evaluation platform: economy-driven services trading in
    a decentralised P2PS topology.
"""

from repro.apps.workflow import Tool, Toolbox, Workflow, WorkflowEngine, WorkflowError
from repro.apps.cactus import CactusSimulation, ResultCollector, run_cactus_scenario
from repro.apps.catnets import (
    ConsumerAgent,
    MarketStats,
    ProviderAgent,
    run_market_rounds,
)

__all__ = [
    "Tool",
    "Toolbox",
    "Workflow",
    "WorkflowEngine",
    "WorkflowError",
    "CactusSimulation",
    "ResultCollector",
    "run_cactus_scenario",
    "ProviderAgent",
    "ConsumerAgent",
    "MarketStats",
    "run_market_rounds",
]
