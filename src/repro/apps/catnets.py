"""The Catnets scenario (§V): economy-driven services in a
decentralised topology.

"The P2PS implementation of WSPeer is currently being evaluated by the
Catnets project as a potential application platform for exploring how
economy driven services interact in a decentralised topology."

Reproduction: provider peers sell a compute service whose price adapts
to utilisation (price rises when busy, decays when idle); consumer
peers discover providers through P2PS attribute queries, collect quotes,
and buy from the cheapest.  The market statistics show the canonical
catallactic behaviour — load spreads and prices converge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.binding import P2psBinding
from repro.core.query import P2PSServiceQuery
from repro.core.wspeer import WSPeer
from repro.p2ps.group import PeerGroup
from repro.simnet.network import Network

SERVICE_ATTR = {"market": "catnets"}


class ComputeService:
    """What a provider sells: quotable, priced units of work."""

    def __init__(self, provider_name: str, base_price: float = 10.0):
        self.provider_name = provider_name
        self.price = base_price
        self.jobs_done = 0
        self.busy_units = 0

    def quote(self) -> dict:
        """Current offer: price and provider identity."""
        return {"provider": self.provider_name, "price": self.price}

    def execute(self, units: int) -> dict:
        """Perform *units* of work at the quoted price; adjusts price up."""
        self.jobs_done += 1
        self.busy_units += units
        cost = self.price * units
        # demand pressure: each sale raises the ask
        self.price *= 1.10
        return {"provider": self.provider_name, "cost": cost, "units": units}

    def decay_price(self, factor: float = 0.97, floor: float = 1.0) -> None:
        """Idle decay applied between rounds."""
        self.price = max(floor, self.price * factor)


class ProviderAgent:
    """A P2PS peer selling a ComputeService."""

    def __init__(
        self,
        network: Network,
        group: PeerGroup,
        name: str,
        base_price: float = 10.0,
    ):
        self.name = name
        self.wspeer = WSPeer(network.add_node(f"prov-{name}"), P2psBinding(group), name=name)
        self.service = ComputeService(name, base_price)
        self.wspeer.deploy(self.service, name=f"Compute-{name}")
        advert = self.wspeer.server.deployer.advert_for(f"Compute-{name}")
        advert.attributes.update(SERVICE_ATTR)
        self.wspeer.publish(f"Compute-{name}")


class ConsumerAgent:
    """A P2PS peer buying compute from the cheapest discovered provider."""

    def __init__(self, network: Network, group: PeerGroup, name: str):
        self.name = name
        self.wspeer = WSPeer(network.add_node(f"cons-{name}"), P2psBinding(group), name=name)
        self.spent = 0.0
        self.purchases: list[dict] = []

    def buy(self, units: int = 1, timeout: float = 5.0) -> Optional[dict]:
        """Discover providers, collect quotes, buy from the cheapest."""
        handles = self.wspeer.locate(
            P2PSServiceQuery("Compute-%", attributes=SERVICE_ATTR),
            timeout=timeout,
            expect=2,
        )
        if not handles:
            return None
        quotes = []
        for handle in handles:
            try:
                quote = self.wspeer.invoke(handle, "quote", timeout=timeout)
            except Exception:  # noqa: BLE001 - provider may have died mid-market
                continue
            quotes.append((quote["price"], handle, quote))
        if not quotes:
            return None
        quotes.sort(key=lambda q: q[0])
        _, handle, _ = quotes[0]
        receipt = self.wspeer.invoke(handle, "execute", units=units, timeout=timeout)
        self.spent += receipt["cost"]
        self.purchases.append(receipt)
        return receipt


@dataclass
class MarketStats:
    """Aggregate outcome of a market run."""

    rounds: int
    purchases: int
    total_spend: float
    jobs_per_provider: dict[str, int] = field(default_factory=dict)
    final_prices: dict[str, float] = field(default_factory=dict)

    @property
    def load_imbalance(self) -> float:
        """max/mean jobs ratio; 1.0 = perfectly even allocation."""
        counts = np.array(list(self.jobs_per_provider.values()), dtype=float)
        if counts.size == 0 or counts.mean() == 0:
            return 0.0
        return float(counts.max() / counts.mean())

    @property
    def price_spread(self) -> float:
        """Relative spread of final asks (max-min over mean)."""
        prices = np.array(list(self.final_prices.values()), dtype=float)
        if prices.size == 0 or prices.mean() == 0:
            return 0.0
        return float((prices.max() - prices.min()) / prices.mean())


def run_market_rounds(
    providers: list[ProviderAgent],
    consumers: list[ConsumerAgent],
    rounds: int = 10,
    units_per_purchase: int = 1,
) -> MarketStats:
    """Run the market: each round every consumer buys once, then idle
    providers' prices decay.  Returns the aggregate statistics."""
    purchases = 0
    for _ in range(rounds):
        for consumer in consumers:
            receipt = consumer.buy(units=units_per_purchase)
            if receipt is not None:
                purchases += 1
        for provider in providers:
            provider.service.decay_price()
    return MarketStats(
        rounds=rounds,
        purchases=purchases,
        total_spend=sum(c.spent for c in consumers),
        jobs_per_provider={p.name: p.service.jobs_done for p in providers},
        final_prices={p.name: p.service.price for p in providers},
    )
