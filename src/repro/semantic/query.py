"""SemanticServiceQuery — the "more complex query" of §III."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import ServiceQuery
from repro.semantic.matching import MatchDegree
from repro.semantic.profile import ServiceProfile


@dataclass
class SemanticServiceQuery(ServiceQuery):
    """A capability query: find services that produce *outputs* given
    *inputs*, at or above *min_degree*.

    ``name_pattern`` (inherited) pre-filters candidates cheaply before
    semantic ranking; the default ``%`` considers everything.
    """

    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    min_degree: MatchDegree = MatchDegree.SUBSUMES

    def request_profile(self) -> ServiceProfile:
        return ServiceProfile("__request__", self.inputs, self.outputs)

    def describe(self) -> str:
        return (
            f"semantic {list(self.inputs)}->{list(self.outputs)} "
            f">={self.min_degree.name}"
        )
