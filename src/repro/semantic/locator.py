"""SemanticServiceLocator: semantic ranking over any base locator.

Demonstrates the tree's pluggability (§III): this locator wraps any
other :class:`~repro.core.locator.ServiceLocator` — UDDI or P2PS — and
adds capability matchmaking on top.  Providers attach their profile to
the service's advertisement attributes (P2PS) or publish it in their
WSDL-adjacent metadata; the locator reads it back from the
:class:`~repro.core.handle.ServiceHandle` attributes and ranks.

Matching happens at the *requester*, which is how the early DAML-S
matchmakers the paper cites worked when no semantically-aware registry
was available.
"""

from __future__ import annotations

from typing import Optional

from repro.core.handle import ServiceHandle
from repro.core.locator import ServiceLocator
from repro.core.query import ServiceQuery
from repro.semantic.matching import Matchmaker, MatchDegree
from repro.semantic.ontology import Ontology
from repro.semantic.profile import PROFILE_ATTRIBUTE, ServiceProfile
from repro.semantic.query import SemanticServiceQuery


def attach_profile(wspeer, service_name: str, profile: ServiceProfile) -> None:
    """Provider-side: embed *profile* in the service's P2PS advert.

    Call after :meth:`WSPeer.deploy` and before :meth:`WSPeer.publish`.
    """
    advert = wspeer.server.deployer.advert_for(service_name)
    advert.attributes[PROFILE_ATTRIBUTE] = profile.to_compact()


def profile_of(handle: ServiceHandle) -> Optional[ServiceProfile]:
    """Extract the embedded profile from a located handle, if any."""
    compact = handle.attributes.get(PROFILE_ATTRIBUTE)
    if not compact:
        return None
    try:
        return ServiceProfile.from_compact(handle.name, compact)
    except ValueError:
        return None


class SemanticServiceLocator(ServiceLocator):
    """Wraps a base locator and ranks its results by match degree."""

    def __init__(
        self,
        base: ServiceLocator,
        ontology: Ontology,
        parent=None,
    ):
        super().__init__(base._clock, parent)
        self.base = base
        self.matchmaker = Matchmaker(ontology)

    def locate(
        self, query: ServiceQuery, timeout: float = 10.0, expect: int = 1
    ) -> list[ServiceHandle]:
        if not isinstance(query, SemanticServiceQuery):
            return self.base.locate(query, timeout=timeout, expect=expect)

        self.fire_discovery("query-issued", query=query.describe(), via="semantic")
        # over-fetch: semantic filtering happens here, not in the network
        from repro.core.query import P2PSServiceQuery

        broad = P2PSServiceQuery(query.name_pattern)
        candidates = self.base.locate(broad, timeout=timeout, expect=max(expect, 4))

        profiled: list[tuple[ServiceProfile, ServiceHandle]] = []
        for handle in candidates:
            profile = profile_of(handle)
            if profile is not None:
                profiled.append((profile, handle))
            else:
                self.fire_discovery(
                    "service-skipped", service=handle.name, reason="no semantic profile"
                )

        ranked = self.matchmaker.rank(
            query.request_profile(),
            [profile for profile, _ in profiled],
            min_degree=query.min_degree,
        )
        # pair by object identity: several providers may share a service name
        by_profile = {id(profile): handle for profile, handle in profiled}
        results = []
        for match in ranked:
            handle = by_profile[id(match.profile)]
            handle.attributes["match-degree"] = match.degree.name
            results.append(handle)
            self.fire_discovery(
                "service-found", service=handle.name, via="semantic",
                degree=match.degree.name,
            )
        if not results:
            self.fire_discovery("query-empty", query=query.describe())
        return results
