"""Semantic service description and matchmaking — the paper's DAML hook.

§III: "A ServiceQuery is an abstraction used by WSPeer to allow for
varying kinds of query.  The simplest ServiceQuery queries on the name
of a service.  **More complex queries could be constructed from
languages such as DAML**."  The paper's related-work section points at
DAML-S capability matching (Paolucci et al., refs [19]–[21]).

This package implements that extension:

``ontology``
    A DAML-lite concept hierarchy (is-a DAG over named concepts) with
    subsumption queries, built on networkx.
``profile``
    DAML-S-style service profiles: the concepts a service consumes
    (inputs) and produces (outputs) plus a category concept; XML
    (de)serialisation and embedding into P2PS advert attributes.
``matching``
    Capability matchmaking with the classic four degrees —
    exact / plugin / subsumes / fail — and ranked matching of a
    requested profile against advertised ones.
``locator``
    :class:`SemanticServiceLocator`: wraps any base locator, filters
    and ranks its results by match degree, and plugs into the WSPeer
    client tree like any other locator (§III pluggability).
"""

from repro.semantic.ontology import Ontology, OntologyError
from repro.semantic.profile import ServiceProfile
from repro.semantic.matching import MatchDegree, Matchmaker, ProfileMatch
from repro.semantic.query import SemanticServiceQuery
from repro.semantic.locator import SemanticServiceLocator

__all__ = [
    "Ontology",
    "OntologyError",
    "ServiceProfile",
    "MatchDegree",
    "Matchmaker",
    "ProfileMatch",
    "SemanticServiceQuery",
    "SemanticServiceLocator",
]
