"""DAML-S-style service profiles.

A profile states, in ontology concepts, what a service consumes and
produces — the "capability" the matchmaker reasons over.  Profiles
serialise to XML for the wire and to a compact string for embedding in
P2PS ServiceAdvertisement attributes / UDDI category bags.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.xmlkit import Element, QName, ns, parse, serialize

SEM_NS = ns.WSPEER + "/semantic"
PROFILE_ATTRIBUTE = "semantic-profile"


def _q(local: str) -> QName:
    return QName(SEM_NS, local, "sem")


@dataclass(frozen=True)
class ServiceProfile:
    """What a service consumes/produces, as ontology concepts."""

    service_name: str
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    category: str = "Thing"

    # -- XML form ----------------------------------------------------------
    def to_element(self) -> Element:
        root = Element(_q("Profile"), nsdecls={"sem": SEM_NS})
        root.set("service", self.service_name)
        root.set("category", self.category)
        for concept in self.inputs:
            root.add(_q("Input"), text=concept)
        for concept in self.outputs:
            root.add(_q("Output"), text=concept)
        return root

    def to_wire(self) -> str:
        return serialize(self.to_element())

    @classmethod
    def from_element(cls, elem: Element) -> "ServiceProfile":
        return cls(
            elem.get("service", ""),
            tuple(i.text for i in elem.find_all(_q("Input"))),
            tuple(o.text for o in elem.find_all(_q("Output"))),
            elem.get("category", "Thing"),
        )

    @classmethod
    def from_wire(cls, text: str) -> "ServiceProfile":
        return cls.from_element(parse(text))

    # -- compact form (advert attributes / category bags) ---------------------
    def to_compact(self) -> str:
        """``category|in1,in2|out1,out2`` — safe for attribute values."""
        for concept in (*self.inputs, *self.outputs, self.category):
            if "|" in concept or "," in concept:
                raise ValueError(f"concept name unusable in compact form: {concept!r}")
        return "|".join(
            [self.category, ",".join(self.inputs), ",".join(self.outputs)]
        )

    @classmethod
    def from_compact(cls, service_name: str, text: str) -> "ServiceProfile":
        parts = text.split("|")
        if len(parts) != 3:
            raise ValueError(f"malformed compact profile: {text!r}")
        category, inputs, outputs = parts
        return cls(
            service_name,
            tuple(c for c in inputs.split(",") if c),
            tuple(c for c in outputs.split(",") if c),
            category or "Thing",
        )

    def __repr__(self) -> str:
        return (
            f"<ServiceProfile {self.service_name} "
            f"{list(self.inputs)}->{list(self.outputs)} cat={self.category}>"
        )
