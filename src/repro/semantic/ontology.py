"""A DAML-lite ontology: an is-a DAG over named concepts."""

from __future__ import annotations

from typing import Iterable, Optional

import networkx as nx


class OntologyError(ValueError):
    """Unknown concept, duplicate definition, or a cycle in is-a."""


class Ontology:
    """Concept hierarchy with multiple inheritance (a DAG).

    Edges point child → parent ("is-a"), so subsumption is graph
    reachability.  ``Thing`` is the implicit root every concept
    ultimately specialises.
    """

    ROOT = "Thing"

    def __init__(self, name: str = "ontology"):
        self.name = name
        self._graph = nx.DiGraph()
        self._graph.add_node(self.ROOT)

    # ------------------------------------------------------------------
    def add_concept(self, concept: str, parents: Optional[Iterable[str]] = None) -> str:
        """Define *concept* specialising *parents* (default: the root)."""
        if not concept or not concept.strip():
            raise OntologyError("concept name cannot be empty")
        if concept in self._graph:
            raise OntologyError(f"concept {concept!r} already defined")
        parent_list = list(parents) if parents else [self.ROOT]
        for parent in parent_list:
            if parent not in self._graph:
                raise OntologyError(f"unknown parent concept {parent!r}")
        self._graph.add_node(concept)
        for parent in parent_list:
            self._graph.add_edge(concept, parent)
        return concept

    def has(self, concept: str) -> bool:
        return concept in self._graph

    def _require(self, concept: str) -> None:
        if concept not in self._graph:
            raise OntologyError(f"unknown concept {concept!r}")

    # ------------------------------------------------------------------
    def parents(self, concept: str) -> set[str]:
        self._require(concept)
        return set(self._graph.successors(concept))

    def ancestors(self, concept: str) -> set[str]:
        """All concepts *concept* specialises (transitively), incl. root."""
        self._require(concept)
        return set(nx.descendants(self._graph, concept))

    def descendants(self, concept: str) -> set[str]:
        """All specialisations of *concept* (transitively)."""
        self._require(concept)
        return set(nx.ancestors(self._graph, concept))

    def is_subconcept(self, specific: str, general: str) -> bool:
        """True if *specific* is-a *general* (reflexive)."""
        self._require(specific)
        self._require(general)
        if specific == general:
            return True
        return general in self.ancestors(specific)

    def distance(self, specific: str, general: str) -> Optional[int]:
        """Shortest is-a path length from *specific* up to *general*
        (0 for equal concepts); None when not subsumed."""
        if not self.is_subconcept(specific, general):
            return None
        return nx.shortest_path_length(self._graph, specific, general)

    @property
    def concepts(self) -> list[str]:
        return sorted(self._graph.nodes)

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __repr__(self) -> str:
        return f"<Ontology {self.name} concepts={len(self)}>"
