"""Capability matchmaking: the classic four degrees.

Following the Paolucci et al. line the paper cites (refs [20]/[21]),
each requested output is compared against the advertised outputs:

``EXACT``
    advertised concept == requested concept;
``PLUGIN``
    advertised is a *subconcept* of requested — the service delivers
    something more specific, which plugs in wherever the requested
    concept is expected;
``SUBSUMES``
    advertised is a *superconcept* of requested — the service delivers
    something more general, a partial satisfaction;
``FAIL``
    no subsumption relation either way.

A profile's overall output degree is the weakest of its per-output best
degrees (every requested output must be served).  Inputs match in the
opposite direction: the requester's provided input must be usable where
the service expects its input, i.e. provided ⊑ expected scores PLUGIN.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

from repro.semantic.ontology import Ontology
from repro.semantic.profile import ServiceProfile


class MatchDegree(IntEnum):
    """Ordered so that greater is better."""

    FAIL = 0
    SUBSUMES = 1
    PLUGIN = 2
    EXACT = 3


@dataclass(frozen=True)
class ProfileMatch:
    """The outcome of matching one advertised profile."""

    profile: ServiceProfile
    degree: MatchDegree
    output_degree: MatchDegree
    input_degree: MatchDegree

    def __repr__(self) -> str:
        return f"<ProfileMatch {self.profile.service_name} {self.degree.name}>"


class Matchmaker:
    """Ranks advertised profiles against a request, over one ontology."""

    def __init__(self, ontology: Ontology):
        self.ontology = ontology

    # ------------------------------------------------------------------
    def concept_degree(self, requested: str, advertised: str) -> MatchDegree:
        """Degree of one advertised concept serving one requested concept."""
        if not self.ontology.has(requested) or not self.ontology.has(advertised):
            return MatchDegree.FAIL
        if requested == advertised:
            return MatchDegree.EXACT
        if self.ontology.is_subconcept(advertised, requested):
            return MatchDegree.PLUGIN
        if self.ontology.is_subconcept(requested, advertised):
            return MatchDegree.SUBSUMES
        return MatchDegree.FAIL

    def _outputs_degree(
        self, requested_outputs: tuple[str, ...], advertised_outputs: tuple[str, ...]
    ) -> MatchDegree:
        if not requested_outputs:
            return MatchDegree.EXACT  # nothing demanded
        if not advertised_outputs:
            return MatchDegree.FAIL
        weakest = MatchDegree.EXACT
        for requested in requested_outputs:
            best = max(
                (self.concept_degree(requested, adv) for adv in advertised_outputs),
                default=MatchDegree.FAIL,
            )
            weakest = min(weakest, best)
        return weakest

    def _inputs_degree(
        self, provided_inputs: tuple[str, ...], expected_inputs: tuple[str, ...]
    ) -> MatchDegree:
        """Every input the service expects must be constructible from
        what the requester provides.  A request that declares *no*
        inputs leaves them unconstrained (the conventional matchmaker
        reading of an absent input specification)."""
        if not expected_inputs or not provided_inputs:
            return MatchDegree.EXACT
        weakest = MatchDegree.EXACT
        for expected in expected_inputs:
            # direction flipped: provided must fit where expected goes
            best = max(
                (self.concept_degree(expected, prov) for prov in provided_inputs),
                default=MatchDegree.FAIL,
            )
            weakest = min(weakest, best)
        return weakest

    # ------------------------------------------------------------------
    def match(self, request: ServiceProfile, advertised: ServiceProfile) -> ProfileMatch:
        output_degree = self._outputs_degree(request.outputs, advertised.outputs)
        input_degree = self._inputs_degree(request.inputs, advertised.inputs)
        overall = min(output_degree, input_degree)
        return ProfileMatch(advertised, overall, output_degree, input_degree)

    def rank(
        self,
        request: ServiceProfile,
        candidates: list[ServiceProfile],
        min_degree: MatchDegree = MatchDegree.SUBSUMES,
    ) -> list[ProfileMatch]:
        """All candidates at or above *min_degree*, best first.

        Ties break toward smaller ontology distance on outputs, so a
        closer specialisation outranks a distant one.
        """
        matches = [
            m for m in (self.match(request, c) for c in candidates)
            if m.degree >= min_degree and m.degree > MatchDegree.FAIL
        ]

        def tie_key(match: ProfileMatch) -> tuple:
            distances = []
            for requested in request.outputs:
                best: Optional[int] = None
                for advertised in match.profile.outputs:
                    if not (self.ontology.has(requested) and self.ontology.has(advertised)):
                        continue
                    d = self.ontology.distance(advertised, requested)
                    if d is None:
                        d = self.ontology.distance(requested, advertised)
                    if d is not None and (best is None or d < best):
                        best = d
                distances.append(best if best is not None else 99)
            return (-int(match.degree), sum(distances))

        return sorted(matches, key=tie_key)
